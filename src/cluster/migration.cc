#include "src/cluster/migration.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/kv/ttl.h"
#include "src/net/client.h"
#include "src/util/endian.h"
#include "src/util/tempfile.h"
#include "src/wal/crc32c.h"

namespace hashkit {
namespace cluster {

namespace {

// Map+marker file framing: magic | format version | payload length |
// payload | CRC-32C(payload).  The payload is the serialized map followed
// by the pending-migration marker.
constexpr char kMapFileMagic[4] = {'H', 'K', 'C', 'M'};
constexpr uint32_t kMapFileVersion = 1;

constexpr int kTransferAttempts = 100;
constexpr int kRetrySleepMs = 100;
constexpr int kJoinAttempts = 20;

void AppendU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void AppendU32(std::string* out, uint32_t v) {
  uint8_t b[4];
  EncodeU32(b, v);
  out->append(reinterpret_cast<const char*>(b), 4);
}

uint32_t ReadU32(std::string_view in, size_t pos) {
  return DecodeU32(reinterpret_cast<const uint8_t*>(in.data() + pos));
}

net::ClientOptions PeerClientOptions() {
  net::ClientOptions o;
  o.connect_timeout_ms = 5'000;
  o.recv_timeout_ms = 30'000;
  o.send_timeout_ms = 30'000;
  return o;
}

bool ParseHostPort(const std::string& addr, std::string* host, uint16_t* port) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= addr.size()) {
    return false;
  }
  const int p = std::atoi(addr.c_str() + colon + 1);
  if (p <= 0 || p > 65535) {
    return false;
  }
  *host = addr.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

ClusterNode::ClusterNode(kv::KvStore* store, ClusterNodeOptions options)
    : store_(store), options_(std::move(options)) {}

ClusterNode::~ClusterNode() { Stop(); }

// ---------------------------------------------------------------------------
// Persistence

Status ClusterNode::PersistLocked() {
  if (options_.map_path.empty()) {
    return Status::Ok();
  }
  std::string payload;
  map_.Serialize(&payload);
  AppendU8(&payload, static_cast<uint8_t>(marker_.role));
  AppendU32(&payload, marker_.bucket);
  AppendU32(&payload, marker_.target);
  // The inbound dirty-key set rides with the marker: without it a target
  // restart forgets which keys clients wrote after cutover, and the
  // resumed copy stream would roll those writes back to pre-migration
  // values.  u32 count, then (u32 len | bytes) per key.
  AppendU32(&payload, static_cast<uint32_t>(inbound_dirty_.size()));
  for (const std::string& key : inbound_dirty_) {
    AppendU32(&payload, static_cast<uint32_t>(key.size()));
    payload += key;
  }

  std::string file;
  file.append(kMapFileMagic, 4);
  AppendU32(&file, kMapFileVersion);
  AppendU32(&file, static_cast<uint32_t>(payload.size()));
  file += payload;
  AppendU32(&file, wal::Crc32c(payload.data(), payload.size()));

  // tmp + fsync + rename through the shared helper, so the temp name is
  // exactly what db_tool's stale-artifact audit knows to look for.
  return WriteFileAtomic(options_.map_path, file);
}

Status ClusterNode::LoadPersisted() {
  if (options_.map_path.empty()) {
    return Status::NotFound();
  }
  const int fd = ::open(options_.map_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return errno == ENOENT
               ? Status::NotFound()
               : Status::IoError("cluster map open: " + std::string(std::strerror(errno)));
  }
  std::string file;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return Status::IoError("cluster map read: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      break;
    }
    file.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  if (file.size() < 12 || std::memcmp(file.data(), kMapFileMagic, 4) != 0) {
    return Status::Corruption("cluster map file: bad magic");
  }
  if (ReadU32(file, 4) != kMapFileVersion) {
    return Status::Corruption("cluster map file: unknown format version");
  }
  const uint32_t payload_len = ReadU32(file, 8);
  if (file.size() != 12u + payload_len + 4u) {
    return Status::Corruption("cluster map file: truncated");
  }
  const std::string_view payload(file.data() + 12, payload_len);
  if (wal::Crc32c(payload.data(), payload.size()) != ReadU32(file, 12 + payload_len)) {
    return Status::Corruption("cluster map file: checksum mismatch");
  }

  ClusterMap m;
  size_t consumed = 0;
  HASHKIT_RETURN_IF_ERROR(m.Deserialize(payload, &consumed));
  if (payload.size() - consumed < 9) {
    return Status::Corruption("cluster map file: bad marker");
  }
  PendingMarker marker;
  const uint8_t role = static_cast<uint8_t>(payload[consumed]);
  if (role > 2) {
    return Status::Corruption("cluster map file: bad marker role");
  }
  marker.role = static_cast<PendingMarker::Role>(role);
  marker.bucket = ReadU32(payload, consumed + 1);
  marker.target = ReadU32(payload, consumed + 5);
  if (marker.role != PendingMarker::Role::kNone && marker.bucket >= m.bucket_count()) {
    return Status::Corruption("cluster map file: marker bucket out of range");
  }

  // The dirty-key set (absent in files written before it existed — a bare
  // 9-byte marker tail is the legacy layout and means an empty set).
  std::unordered_set<std::string> dirty;
  size_t pos = consumed + 9;
  if (pos < payload.size()) {
    if (payload.size() - pos < 4) {
      return Status::Corruption("cluster map file: bad dirty set header");
    }
    const uint32_t count = ReadU32(payload, pos);
    pos += 4;
    for (uint32_t i = 0; i < count; ++i) {
      if (payload.size() - pos < 4) {
        return Status::Corruption("cluster map file: bad dirty set entry");
      }
      const uint32_t len = ReadU32(payload, pos);
      pos += 4;
      if (payload.size() - pos < len) {
        return Status::Corruption("cluster map file: dirty set entry truncated");
      }
      dirty.insert(std::string(payload.substr(pos, len)));
      pos += len;
    }
    if (pos != payload.size()) {
      return Status::Corruption("cluster map file: trailing bytes after dirty set");
    }
  }

  map_ = std::move(m);
  marker_ = marker;
  inbound_dirty_ = std::move(dirty);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Lifecycle

Status ClusterNode::Start(const std::vector<NodeInfo>& peers, const std::string& join_seed) {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("cluster node already started");
  }

  Job resume;
  bool have_resume = false;
  uint32_t version_after_load = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Status loaded = LoadPersisted();
    if (!loaded.ok() && !loaded.IsNotFound()) {
      return loaded;  // a corrupt map file needs an operator, not a guess
    }
    if (map_.version == 0 && join_seed.empty()) {
      // Static bootstrap: every peer derives the identical version-1 map.
      HASHKIT_ASSIGN_OR_RETURN(map_, ClusterMap::Bootstrap(peers));
      if (!map_.HasNode(options_.node_id)) {
        return Status::InvalidArgument("cluster bootstrap: own node id not in peer list");
      }
      HASHKIT_RETURN_IF_ERROR(PersistLocked());
    }
    if (marker_.role == PendingMarker::Role::kOutbound) {
      resume = Job{Job::Kind::kTransfer, marker_.bucket, marker_.target, /*installed=*/true};
      have_resume = true;
    }
    // An inbound marker needs no action here: the source re-drives the
    // stream when it comes back; we just keep refusing to drop the state.
    version_after_load = map_.version;
  }

  if (version_after_load == 0) {
    // Join path: ask the seed to add us (no buckets yet; load arrives via
    // split/move).  Retried because the seed may still be starting.
    std::string host;
    uint16_t port = 0;
    if (!ParseHostPort(join_seed, &host, &port)) {
      return Status::InvalidArgument("bad join seed address: " + join_seed);
    }
    std::string payload;
    AppendU32(&payload, options_.node_id);
    {
      uint8_t b[2];
      EncodeU16(b, options_.advertise_port);
      payload.append(reinterpret_cast<const char*>(b), 2);
      EncodeU16(b, static_cast<uint16_t>(options_.advertise_host.size()));
      payload.append(reinterpret_cast<const char*>(b), 2);
    }
    payload += options_.advertise_host;

    Status last = Status::IoError("join never attempted");
    for (int attempt = 0; attempt < kJoinAttempts; ++attempt) {
      auto cres = net::Client::Connect(host, port, PeerClientOptions());
      if (cres.ok()) {
        net::Request req;
        req.op = net::Opcode::kMigrate;
        req.flags = net::kMigrateJoin;
        req.value = payload;
        std::vector<net::Response> resps;
        last = (*cres)->Pipeline({req}, &resps);
        if (last.ok() && resps[0].status == StatusCode::kOk) {
          ClusterMap m;
          size_t consumed = 0;
          HASHKIT_RETURN_IF_ERROR(m.Deserialize(resps[0].value, &consumed));
          std::lock_guard<std::mutex> lock(mu_);
          map_ = std::move(m);
          HASHKIT_RETURN_IF_ERROR(PersistLocked());
          last = Status::Ok();
          break;
        }
        if (last.ok()) {
          last = Status(resps[0].status, resps[0].value);
          if (resps[0].status == StatusCode::kExists) {
            break;  // id taken by a different address — operator error
          }
        }
      } else {
        last = cres.status();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(kRetrySleepMs));
    }
    if (!last.ok()) {
      return Status(last.code(), "cluster join via " + join_seed + " failed: " + last.message());
    }
  }

  engine_ = std::thread([this] { EngineMain(); });
  if (have_resume) {
    Enqueue(resume);
  }
  return Status::Ok();
}

void ClusterNode::Stop() {
  if (!started_.load()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (engine_stop_) {
      return;
    }
    engine_stop_ = true;
  }
  queue_cv_.notify_all();
  if (engine_.joinable()) {
    engine_.join();
  }
}

void ClusterNode::Enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(job);
  }
  queue_cv_.notify_all();
}

void ClusterNode::EngineMain() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (options_.gossip_interval_ms > 0) {
        // Gossip tick: an idle interval with no queued work pushes the
        // current map to every peer, so a node that missed a migration's
        // push (partition, restart) converges without client traffic.
        if (!queue_cv_.wait_for(
                lock, std::chrono::milliseconds(options_.gossip_interval_ms),
                [this] { return engine_stop_ || !queue_.empty(); })) {
          lock.unlock();
          PushMapToPeers();
          continue;
        }
      } else {
        queue_cv_.wait(lock, [this] { return engine_stop_ || !queue_.empty(); });
      }
      if (engine_stop_) {
        return;  // pending work stays persisted; the next Start resumes it
      }
      job = queue_.front();
      queue_.pop_front();
      engine_busy_ = true;
    }
    switch (job.kind) {
      case Job::Kind::kTransfer:
        RunTransfer(job);
        break;
      case Job::Kind::kSplit:
        RunSplit();
        break;
      case Job::Kind::kPushMap:
        PushMapToPeers();
        break;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      engine_busy_ = false;
    }
  }
}

// ---------------------------------------------------------------------------
// Request path

bool ClusterNode::HandleRequest(const net::Request& req, net::Response* resp) {
  switch (req.op) {
    case net::Opcode::kPut:
    case net::Opcode::kGet:
    case net::Opcode::kDel:
      return HandleData(req, resp);
    case net::Opcode::kScan: {
      // Scans stay node-local (the cursor is per-store); they hold the data
      // latch so migration collection cannot interleave with them.
      std::shared_lock<std::shared_mutex> data(data_mu_);
      const Status st =
          store_->Scan(&resp->key, &resp->value, (req.flags & net::kFlagScanFirst) != 0);
      resp->status = st.code();
      if (!st.ok() && resp->value.empty()) {
        resp->value = st.message();
      }
      return true;
    }
    case net::Opcode::kMapGet: {
      std::lock_guard<std::mutex> lock(mu_);
      if (map_.version == 0) {
        resp->status = StatusCode::kNotFound;
        resp->value = "no cluster map yet";
      } else {
        resp->status = StatusCode::kOk;
        map_.Serialize(&resp->value);
      }
      return true;
    }
    case net::Opcode::kMigrate:
      return HandleMigrate(req, resp);
    default:
      return false;  // PING/STATS/SYNC and anything unknown: server handles
  }
}

void ClusterNode::FillMovedLocked(net::Response* resp) {
  resp->op = net::Opcode::kMoved;
  resp->status = StatusCode::kMoved;
  resp->value.clear();
  map_.Serialize(&resp->value);
  counters_.moved_replies.fetch_add(1, std::memory_order_relaxed);
}

bool ClusterNode::HandleData(const net::Request& req, net::Response* resp) {
  // Lock discipline: the shared data latch is taken for the whole
  // check-then-act — an op that passed the ownership check under map v is
  // guaranteed to finish its store call before the migration collector
  // (which installs v+1 first, then takes the latch exclusive) can scan.
  std::shared_lock<std::shared_mutex> data(data_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  if (map_.version == 0) {
    resp->status = StatusCode::kUnsupported;
    resp->value = "cluster node has no map yet";
    return true;
  }
  const uint32_t bucket = map_.BucketOfKey(req.key);
  if (map_.OwnerOf(bucket) != options_.node_id) {
    FillMovedLocked(resp);
    return true;
  }

  const bool inbound =
      marker_.role == PendingMarker::Role::kInbound && marker_.bucket == bucket;
  if (inbound && req.op != net::Opcode::kGet) {
    // The copy stream for this bucket is (or may soon be) running; record
    // that the client now owns this key's latest state so a streamed copy
    // cannot resurrect an older value or a deleted key.  The record must
    // be durable BEFORE the write is acknowledged: if this node crashes
    // and the stream resumes, an in-memory-only entry is forgotten and
    // the copy would roll the acknowledged write back.
    if (inbound_dirty_.insert(req.key).second) {
      const Status ps = PersistLocked();
      if (!ps.ok()) {
        inbound_dirty_.erase(req.key);
        resp->status = ps.code();
        resp->value = ps.message();
        return true;
      }
    }
  }
  if (!inbound) {
    // Fast path: the store call runs outside mu_ (the data latch alone
    // orders it against migration).  Inbound-bucket ops stay under mu_ so
    // the dirty check in the MIGRATE data handler is atomic with them.
    lock.unlock();
  }

  Status st;
  switch (req.op) {
    case net::Opcode::kPut: {
      const bool overwrite = (req.flags & net::kFlagNoOverwrite) == 0;
      if ((req.flags & net::kFlagPutTtl) == 0) {
        st = store_->Put(req.key, req.value, overwrite);
      } else if (!store_->Caps().ttl) {
        st = Status::Unsupported("store opened without TTL support");
      } else if (req.value.size() < net::kPutTtlPrefixBytes) {
        st = Status::InvalidArgument("PUT+ttl wants a u32 ttl_ms value prefix");
      } else {
        const uint32_t ttl_ms = ReadU32(req.value, 0);
        st = store_->PutWithTtl(
            req.key, std::string_view(req.value).substr(net::kPutTtlPrefixBytes),
            overwrite, ttl_ms == 0 ? 0 : kv::TtlNowMs() + ttl_ms);
      }
      break;
    }
    case net::Opcode::kGet:
      st = store_->Get(req.key, &resp->value);
      break;
    case net::Opcode::kDel:
      st = store_->Delete(req.key);
      break;
    default:
      st = Status::InvalidArgument("not a data op");
      break;
  }
  resp->status = st.code();
  if (!st.ok() && resp->value.empty()) {
    resp->value = st.message();
  }

  if (req.op == net::Opcode::kPut && st.ok() && options_.split_threshold > 0 &&
      puts_since_split_check_.fetch_add(1, std::memory_order_relaxed) % 64 == 63) {
    if (!lock.owns_lock()) {
      lock.lock();
    }
    // The LH* load trigger: split when this node's average pairs-per-bucket
    // exceeds the threshold and bucket `next` is ours to split.
    if (marker_.role == PendingMarker::Role::kNone &&
        map_.bucket_owner[map_.next] == options_.node_id) {
      const uint32_t owned = map_.BucketsOwnedBy(options_.node_id);
      if (owned > 0 && store_->Size() > options_.split_threshold * owned &&
          !split_pending_.exchange(true)) {
        Enqueue(Job{Job::Kind::kSplit, 0, 0, false});
      }
    }
  }
  return true;
}

bool ClusterNode::HandleMigrate(const net::Request& req, net::Response* resp) {
  const auto fail = [resp](Status st) {
    resp->status = st.code();
    resp->value = st.message();
    return true;
  };

  switch (req.flags) {
    case net::kMigrateStart: {
      if (req.value.size() < 4) {
        return fail(Status::InvalidArgument("migrate start: short payload"));
      }
      const uint32_t bucket = ReadU32(req.value, 0);
      ClusterMap proposed;
      size_t consumed = 0;
      const Status ps =
          proposed.Deserialize(std::string_view(req.value).substr(4), &consumed);
      if (!ps.ok()) {
        return fail(ps);
      }
      if (bucket >= proposed.bucket_count() ||
          proposed.OwnerOf(bucket) != options_.node_id) {
        return fail(Status::InvalidArgument("migrate start: bucket not addressed to me"));
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (marker_.role == PendingMarker::Role::kInbound && marker_.bucket == bucket) {
        // Resume after a source (or our own) restart.  The dirty set is
        // kept: client writes since cutover are still newer than anything
        // the restarted stream will send.
        if (proposed.version > map_.version) {
          map_ = std::move(proposed);
        }
        const Status st = PersistLocked();
        if (!st.ok()) {
          return fail(st);
        }
        resp->status = StatusCode::kOk;
        return true;
      }
      if (marker_.role != PendingMarker::Role::kNone) {
        return fail(Status::InvalidArgument("migrate start: node busy with another migration"));
      }
      if (map_.version >= proposed.version) {
        // We already completed this transfer (end frame landed, marker
        // cleared) and the source crashed before its own cleanup: tell it
        // to skip straight to deletion.
        resp->status = StatusCode::kExists;
        resp->value.clear();
        map_.Serialize(&resp->value);
        return true;
      }
      map_ = std::move(proposed);
      marker_ = PendingMarker{PendingMarker::Role::kInbound, bucket, 0};
      inbound_dirty_.clear();
      const Status st = PersistLocked();
      if (!st.ok()) {
        marker_ = PendingMarker{};
        return fail(st);
      }
      resp->status = StatusCode::kOk;
      return true;
    }

    case net::kMigrateData: {
      std::shared_lock<std::shared_mutex> data(data_mu_);
      std::lock_guard<std::mutex> lock(mu_);
      if (marker_.role != PendingMarker::Role::kInbound) {
        return fail(Status::InvalidArgument("migrate data: no inbound migration"));
      }
      if (map_.BucketOfKey(req.key) != marker_.bucket) {
        return fail(Status::InvalidArgument("migrate data: key not in migrating bucket"));
      }
      if (inbound_dirty_.count(req.key) != 0) {
        // A client wrote (or deleted) this key after cutover; its state is
        // newer than the copy — drop the copy.
        counters_.migrate_data_skipped.fetch_add(1, std::memory_order_relaxed);
        resp->status = StatusCode::kOk;
        return true;
      }
      // Raw apply: with TTL enabled on both ends the migrated value still
      // carries its expiry stamp, so a key never loses (or regains) its
      // TTL by moving between nodes.
      const Status st = store_->PutRaw(req.key, req.value);
      if (!st.ok()) {
        return fail(st);
      }
      counters_.keys_migrated_in.fetch_add(1, std::memory_order_relaxed);
      resp->status = StatusCode::kOk;
      return true;
    }

    case net::kMigrateEnd: {
      if (req.value.size() < 4) {
        return fail(Status::InvalidArgument("migrate end: short payload"));
      }
      const uint32_t bucket = ReadU32(req.value, 0);
      std::lock_guard<std::mutex> lock(mu_);
      if (marker_.role == PendingMarker::Role::kInbound && marker_.bucket == bucket) {
        marker_ = PendingMarker{};
        inbound_dirty_.clear();
        const Status st = PersistLocked();
        if (!st.ok()) {
          return fail(st);
        }
        counters_.migrations_in.fetch_add(1, std::memory_order_relaxed);
      }
      resp->status = StatusCode::kOk;  // idempotent: a re-sent end is fine
      return true;
    }

    case net::kMigrateMap: {
      ClusterMap pushed;
      size_t consumed = 0;
      const Status ps = pushed.Deserialize(req.value, &consumed);
      if (!ps.ok()) {
        return fail(ps);
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (pushed.version > map_.version) {
        map_ = std::move(pushed);
        const Status st = PersistLocked();
        if (!st.ok()) {
          return fail(st);
        }
        counters_.map_pushes_in.fetch_add(1, std::memory_order_relaxed);
      }
      resp->status = StatusCode::kOk;
      return true;
    }

    case net::kMigrateJoin: {
      if (req.value.size() < 8) {
        return fail(Status::InvalidArgument("migrate join: short payload"));
      }
      NodeInfo joiner;
      joiner.id = ReadU32(req.value, 0);
      joiner.port = DecodeU16(reinterpret_cast<const uint8_t*>(req.value.data() + 4));
      const uint16_t host_len =
          DecodeU16(reinterpret_cast<const uint8_t*>(req.value.data() + 6));
      if (req.value.size() != 8u + host_len || host_len == 0) {
        return fail(Status::InvalidArgument("migrate join: bad host"));
      }
      joiner.host = req.value.substr(8, host_len);
      bool push = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (map_.version == 0) {
          return fail(Status::Unsupported("seed has no cluster map yet"));
        }
        const NodeInfo* existing = map_.FindNode(joiner.id);
        if (existing != nullptr) {
          if (!(*existing == joiner)) {
            return fail(Status::Exists("node id " + std::to_string(joiner.id) +
                                       " already present at " + existing->Address()));
          }
          // Idempotent re-join: just hand back the current map.
        } else {
          map_.nodes.push_back(joiner);
          ++map_.version;
          const Status st = PersistLocked();
          if (!st.ok()) {
            map_.nodes.pop_back();
            --map_.version;
            return fail(st);
          }
          push = true;
        }
        resp->status = StatusCode::kOk;
        resp->value.clear();
        map_.Serialize(&resp->value);
      }
      if (push) {
        Enqueue(Job{Job::Kind::kPushMap, 0, 0, false});
      }
      return true;
    }

    case net::kMigrateMove: {
      if (req.value.size() < 8) {
        return fail(Status::InvalidArgument("migrate move: short payload"));
      }
      const Status st = ScheduleMove(ReadU32(req.value, 0), ReadU32(req.value, 4));
      if (!st.ok()) {
        return fail(st);
      }
      resp->status = StatusCode::kOk;
      resp->value = "move scheduled";
      return true;
    }

    case net::kMigrateSplit: {
      const Status st = ScheduleSplit();
      if (!st.ok()) {
        return fail(st);
      }
      resp->status = StatusCode::kOk;
      resp->value = "split scheduled";
      return true;
    }

    case net::kMigrateLeave: {
      if (req.value.size() < 4) {
        return fail(Status::InvalidArgument("migrate leave: short payload"));
      }
      const uint32_t node_id = ReadU32(req.value, 0);
      if (node_id != options_.node_id) {
        return fail(Status::InvalidArgument("leave must be sent to the leaving node"));
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (map_.version == 0) {
          return fail(Status::Unsupported("no cluster map"));
        }
        if (map_.BucketsOwnedBy(node_id) != 0) {
          return fail(Status::InvalidArgument(
              "node still owns " + std::to_string(map_.BucketsOwnedBy(node_id)) +
              " bucket(s); drain them first"));
        }
        if (marker_.role != PendingMarker::Role::kNone) {
          return fail(Status::InvalidArgument("migration in progress"));
        }
        auto it = std::find_if(map_.nodes.begin(), map_.nodes.end(),
                               [node_id](const NodeInfo& n) { return n.id == node_id; });
        if (it == map_.nodes.end()) {
          return fail(Status::NotFound("node not in map"));
        }
        map_.nodes.erase(it);
        ++map_.version;
        const Status st = PersistLocked();
        if (!st.ok()) {
          return fail(st);
        }
      }
      // The departing node pushes the final map itself — peers must learn
      // it even though this node is about to shut down.
      PushMapToPeers();
      resp->status = StatusCode::kOk;
      resp->value = "left cluster; safe to shut down";
      return true;
    }

    default:
      return fail(Status::InvalidArgument("migrate: unknown sub-op"));
  }
}

// ---------------------------------------------------------------------------
// Scheduling + engine jobs

Status ClusterNode::ScheduleMove(uint32_t bucket, uint32_t target_node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.version == 0) {
      return Status::Unsupported("no cluster map");
    }
    if (bucket >= map_.bucket_count()) {
      return Status::InvalidArgument("bucket out of range");
    }
    if (map_.OwnerOf(bucket) != options_.node_id) {
      return Status::InvalidArgument("bucket " + std::to_string(bucket) + " is owned by node " +
                                     std::to_string(map_.OwnerOf(bucket)) +
                                     "; send the move there");
    }
    if (map_.FindNode(target_node) == nullptr) {
      return Status::InvalidArgument("target node not in map");
    }
    if (target_node == options_.node_id) {
      return Status::InvalidArgument("bucket already lives here");
    }
    if (marker_.role != PendingMarker::Role::kNone) {
      return Status::InvalidArgument("migration already in progress");
    }
  }
  Enqueue(Job{Job::Kind::kTransfer, bucket, target_node, /*installed=*/false});
  return Status::Ok();
}

Status ClusterNode::ScheduleSplit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.version == 0) {
      return Status::Unsupported("no cluster map");
    }
    if (map_.bucket_owner[map_.next] != options_.node_id) {
      return Status::InvalidArgument(
          "bucket next=" + std::to_string(map_.next) + " is owned by node " +
          std::to_string(map_.bucket_owner[map_.next]) + "; send the split there");
    }
    if (marker_.role != PendingMarker::Role::kNone) {
      return Status::InvalidArgument("migration already in progress");
    }
  }
  Enqueue(Job{Job::Kind::kSplit, 0, 0, false});
  return Status::Ok();
}

void ClusterNode::RunTransfer(Job job) {
  if (!job.installed) {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-validate: the map may have changed between schedule and run.
    if (map_.version == 0 || job.bucket >= map_.bucket_count() ||
        map_.OwnerOf(job.bucket) != options_.node_id ||
        map_.FindNode(job.target) == nullptr ||
        marker_.role != PendingMarker::Role::kNone) {
      counters_.migration_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Cutover: from the moment this map is installed the bucket is the
    // target's, and every straggler here is answered MOVED.
    map_.bucket_owner[job.bucket] = job.target;
    ++map_.version;
    marker_ = PendingMarker{PendingMarker::Role::kOutbound, job.bucket, job.target};
    if (const Status st = PersistLocked(); !st.ok()) {
      // Roll back in memory; nothing was made visible.
      map_.bucket_owner[job.bucket] = options_.node_id;
      --map_.version;
      marker_ = PendingMarker{};
      counters_.migration_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  migrating_bucket_.store(job.bucket);
  migrate_keys_streamed_.store(0);
  migrate_keys_total_.store(0);
  for (int attempt = 0; attempt < kTransferAttempts; ++attempt) {
    const Status st = ExecuteTransfer(job.bucket, job.target);
    if (st.ok()) {
      counters_.migrations_out.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (aborted_at_failpoint_.load()) {
      return;  // testonly crash simulation: markers stay put
    }
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (queue_cv_.wait_for(lock, std::chrono::milliseconds(kRetrySleepMs),
                           [this] { return engine_stop_; })) {
      return;  // shutting down; persisted marker resumes next Start
    }
  }
  counters_.migration_failures.fetch_add(1, std::memory_order_relaxed);
}

void ClusterNode::RunSplit() {
  uint32_t bucket = 0;
  uint32_t target = 0;
  bool local = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    split_pending_.store(false);  // re-armed once this attempt is decided
    if (map_.version == 0 || marker_.role != PendingMarker::Role::kNone ||
        map_.bucket_owner[map_.next] != options_.node_id) {
      counters_.migration_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // The new bucket goes to the least-loaded node (fewest buckets, ties to
    // the lowest id) — that is what levels the cluster as it grows.
    target = options_.node_id;
    uint32_t best = ~0u;
    for (const NodeInfo& n : map_.nodes) {
      const uint32_t owned = map_.BucketsOwnedBy(n.id);
      if (owned < best || (owned == best && n.id < target)) {
        best = owned;
        target = n.id;
      }
    }
    bucket = map_.AdvanceSplit(target);  // bumps version
    local = target == options_.node_id;
    if (!local) {
      marker_ = PendingMarker{PendingMarker::Role::kOutbound, bucket, target};
    }
    if (const Status st = PersistLocked(); !st.ok()) {
      map_.bucket_owner.pop_back();
      --map_.version;
      if (map_.next == 0) {
        --map_.level;
        map_.next = (1u << map_.level);
      }
      --map_.next;
      marker_ = PendingMarker{};
      counters_.migration_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (local) {
    // The paper's free split: the new bucket lives on the splitting node,
    // so re-addressed keys are already in the right store.  Only the map
    // has to travel.
    counters_.splits_local.fetch_add(1, std::memory_order_relaxed);
    PushMapToPeers();
    return;
  }
  counters_.splits_remote.fetch_add(1, std::memory_order_relaxed);
  RunTransfer(Job{Job::Kind::kTransfer, bucket, target, /*installed=*/true});
}

Status ClusterNode::ExecuteTransfer(uint32_t bucket, uint32_t target_node) {
  NodeInfo target;
  ClusterMap snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const NodeInfo* t = map_.FindNode(target_node);
    if (t == nullptr) {
      return Status::InvalidArgument("transfer target left the map");
    }
    target = *t;
    snapshot = map_;
  }

  HASHKIT_ASSIGN_OR_RETURN(auto client,
                           net::Client::Connect(target.host, target.port, PeerClientOptions()));

  // Step 2: arm the target (adopt map, persist inbound marker, start the
  // dirty-key tracking).  kExists = the target already finished this one.
  bool already_complete = false;
  {
    net::Request start;
    start.op = net::Opcode::kMigrate;
    start.flags = net::kMigrateStart;
    AppendU32(&start.value, bucket);
    snapshot.Serialize(&start.value);
    std::vector<net::Response> resps;
    HASHKIT_RETURN_IF_ERROR(client->Pipeline({start}, &resps));
    if (resps[0].status == StatusCode::kExists) {
      already_complete = true;
    } else if (resps[0].status != StatusCode::kOk) {
      return Status(resps[0].status, "migrate start refused: " + resps[0].value);
    }
  }

  // Step 3: collect the bucket's pairs.  Exclusive data latch — the store's
  // scan cursor is shared mutable state, and a concurrent Put/Delete (or
  // client Scan) would silently skip or repeat pairs under the cursor.
  std::vector<std::pair<std::string, std::string>> pairs;
  {
    std::unique_lock<std::shared_mutex> data(data_mu_);
    std::string key;
    std::string value;
    bool first = true;
    for (;;) {
      // Raw scan: values keep their TTL stamps (applied with PutRaw on the
      // target), and expired-but-unswept keys still travel — the target's
      // reads and sweeper expire them there, so no resurrection either way.
      const Status st = store_->ScanRaw(&key, &value, first);
      first = false;
      if (st.IsNotFound()) {
        break;
      }
      HASHKIT_RETURN_IF_ERROR(st);
      if (snapshot.BucketOfKey(key) == bucket) {
        pairs.emplace_back(key, value);
      }
    }
  }
  migrate_keys_total_.store(pairs.size());
  migrate_keys_streamed_.store(0);

  // Step 4: stream, pipelined.  Idempotent — a retry after a transport
  // error re-runs from the start frame and overwrites.
  if (!already_complete) {
    size_t i = 0;
    uint32_t batches = 0;
    while (i < pairs.size()) {
      std::vector<net::Request> reqs;
      reqs.reserve(options_.migrate_batch);
      for (; i < pairs.size() && reqs.size() < options_.migrate_batch; ++i) {
        net::Request r;
        r.op = net::Opcode::kMigrate;
        r.flags = net::kMigrateData;
        r.key = pairs[i].first;
        r.value = pairs[i].second;
        reqs.push_back(std::move(r));
      }
      std::vector<net::Response> resps;
      HASHKIT_RETURN_IF_ERROR(client->Pipeline(reqs, &resps));
      for (const net::Response& r : resps) {
        if (r.status != StatusCode::kOk) {
          return Status(r.status, "migrate data refused: " + r.value);
        }
      }
      migrate_keys_streamed_.fetch_add(reqs.size());
      ++batches;
      if (options_.testonly_abort_after_batches > 0 &&
          batches >= options_.testonly_abort_after_batches) {
        aborted_at_failpoint_.store(true);
        return Status::IoError("testonly failpoint: aborting mid-migration");
      }
    }

    // Step 5: seal — the target drops its marker and dirty set.
    net::Request end;
    end.op = net::Opcode::kMigrate;
    end.flags = net::kMigrateEnd;
    AppendU32(&end.value, bucket);
    std::vector<net::Response> resps;
    HASHKIT_RETURN_IF_ERROR(client->Pipeline({end}, &resps));
    if (resps[0].status != StatusCode::kOk) {
      return Status(resps[0].status, "migrate end refused: " + resps[0].value);
    }
  }

  // Step 6: drop our copies (kNotFound is fine — a resumed transfer
  // re-deletes), clear the marker, spread the map.
  {
    std::shared_lock<std::shared_mutex> data(data_mu_);
    for (const auto& [key, value] : pairs) {
      const Status st = store_->Delete(key);
      if (!st.ok() && !st.IsNotFound()) {
        return st;
      }
    }
  }
  counters_.keys_migrated_out.fetch_add(pairs.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    marker_ = PendingMarker{};
    HASHKIT_RETURN_IF_ERROR(PersistLocked());
  }
  PushMapToPeers();
  return Status::Ok();
}

void ClusterNode::PushMapToPeers() {
  std::string map_bytes;
  std::vector<NodeInfo> peers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.version == 0) {
      return;
    }
    map_.Serialize(&map_bytes);
    peers = map_.nodes;
  }
  for (const NodeInfo& peer : peers) {
    if (peer.id == options_.node_id) {
      continue;
    }
    auto cres = net::Client::Connect(peer.host, peer.port, PeerClientOptions());
    if (!cres.ok()) {
      continue;  // best effort: MOVED replies correct anyone we miss
    }
    net::Request req;
    req.op = net::Opcode::kMigrate;
    req.flags = net::kMigrateMap;
    req.value = map_bytes;
    std::vector<net::Response> resps;
    if ((*cres)->Pipeline({req}, &resps).ok() && resps[0].status == StatusCode::kOk) {
      counters_.map_pushes_out.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Observers + stats

ClusterMap ClusterNode::MapSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

bool ClusterNode::MigrationActive() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (marker_.role != PendingMarker::Role::kNone) {
      return true;
    }
  }
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (engine_busy_) {
    return true;
  }
  for (const Job& job : queue_) {
    if (job.kind != Job::Kind::kPushMap) {
      return true;
    }
  }
  return false;
}

void ClusterNode::AppendStatsText(std::string* text) const {
  const auto line = [text](const std::string& key, uint64_t value) {
    *text += key;
    *text += '=';
    *text += std::to_string(value);
    *text += '\n';
  };
  ClusterMap map;
  uint8_t marker_role = 0;
  uint32_t marker_bucket = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    map = map_;
    marker_role = static_cast<uint8_t>(marker_.role);
    marker_bucket = marker_.bucket;
  }
  line("cluster.node_id", options_.node_id);
  line("cluster.map_version", map.version);
  line("cluster.level", map.level);
  line("cluster.next", map.next);
  line("cluster.buckets", map.bucket_count());
  line("cluster.nodes", map.nodes.size());
  line("cluster.owned_buckets", map.BucketsOwnedBy(options_.node_id));
  const auto c = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  line("cluster.moved_replies", c(counters_.moved_replies));
  line("cluster.map_pushes_in", c(counters_.map_pushes_in));
  line("cluster.map_pushes_out", c(counters_.map_pushes_out));
  line("cluster.migrations_in", c(counters_.migrations_in));
  line("cluster.migrations_out", c(counters_.migrations_out));
  line("cluster.keys_migrated_in", c(counters_.keys_migrated_in));
  line("cluster.keys_migrated_out", c(counters_.keys_migrated_out));
  line("cluster.migrate_data_skipped", c(counters_.migrate_data_skipped));
  line("cluster.splits_local", c(counters_.splits_local));
  line("cluster.splits_remote", c(counters_.splits_remote));
  line("cluster.migration_failures", c(counters_.migration_failures));
  line("cluster.migration_active", marker_role != 0 ? 1 : 0);
  line("cluster.migration_role", marker_role);
  line("cluster.migration_bucket", marker_role != 0 ? marker_bucket : 0);
  line("cluster.migration_keys_streamed", migrate_keys_streamed_.load());
  line("cluster.migration_keys_total", migrate_keys_total_.load());
  for (const NodeInfo& n : map.nodes) {
    const std::string prefix = "cluster.node." + std::to_string(n.id);
    *text += prefix + ".addr=" + n.Address() + "\n";
    line(prefix + ".buckets", map.BucketsOwnedBy(n.id));
  }
}

void ClusterNode::AppendMetricsText(std::string* text) const {
  const auto gauge = [text](const std::string& name, uint64_t value) {
    *text += name;
    *text += ' ';
    *text += std::to_string(value);
    *text += '\n';
  };
  ClusterMap map;
  uint8_t marker_role = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    map = map_;
    marker_role = static_cast<uint8_t>(marker_.role);
  }
  const auto c = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  gauge("hashkit_cluster_node_id", options_.node_id);
  gauge("hashkit_cluster_map_version", map.version);
  gauge("hashkit_cluster_level", map.level);
  gauge("hashkit_cluster_next", map.next);
  gauge("hashkit_cluster_buckets", map.bucket_count());
  gauge("hashkit_cluster_nodes", map.nodes.size());
  gauge("hashkit_cluster_owned_buckets", map.BucketsOwnedBy(options_.node_id));
  gauge("hashkit_cluster_moved_replies_total", c(counters_.moved_replies));
  gauge("hashkit_cluster_map_pushes_in_total", c(counters_.map_pushes_in));
  gauge("hashkit_cluster_map_pushes_out_total", c(counters_.map_pushes_out));
  gauge("hashkit_cluster_migrations_in_total", c(counters_.migrations_in));
  gauge("hashkit_cluster_migrations_out_total", c(counters_.migrations_out));
  gauge("hashkit_cluster_keys_migrated_in_total", c(counters_.keys_migrated_in));
  gauge("hashkit_cluster_keys_migrated_out_total", c(counters_.keys_migrated_out));
  gauge("hashkit_cluster_migrate_data_skipped_total", c(counters_.migrate_data_skipped));
  gauge("hashkit_cluster_splits_local_total", c(counters_.splits_local));
  gauge("hashkit_cluster_splits_remote_total", c(counters_.splits_remote));
  gauge("hashkit_cluster_migration_failures_total", c(counters_.migration_failures));
  gauge("hashkit_cluster_migration_active", marker_role != 0 ? 1 : 0);
  gauge("hashkit_cluster_migration_keys_streamed", migrate_keys_streamed_.load());
  gauge("hashkit_cluster_migration_keys_total", migrate_keys_total_.load());
}

}  // namespace cluster
}  // namespace hashkit
