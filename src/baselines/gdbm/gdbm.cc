#include "src/baselines/gdbm/gdbm.h"

#include <algorithm>
#include <cstring>

#include "src/util/endian.h"

namespace hashkit {
namespace baseline {

namespace {

constexpr uint32_t kGdbmMagic = 0x47444231;  // "GDB1"
constexpr size_t kHeaderFixed = 36;          // bytes before the free list

// The bucket's local depth rides in the page header's ovfl slot (gdbm
// buckets have no overflow chains, so the slot is otherwise unused).
uint16_t BucketDepth(const PageView& view) { return view.ovfl_addr(); }
void SetBucketDepth(PageView& view, uint16_t depth) { view.set_ovfl_addr(depth); }

uint32_t GdbmHash(std::string_view key) { return HashFnv1a(key.data(), key.size()); }

}  // namespace

GdbmClone::GdbmClone(std::unique_ptr<PageFile> file, uint32_t bsize)
    : file_(std::move(file)), bsize_(bsize), bucket_buf_(bsize) {}

GdbmClone::~GdbmClone() { (void)Sync(); }

Result<std::unique_ptr<GdbmClone>> GdbmClone::Open(const std::string& path, uint32_t block_size,
                                                   bool truncate) {
  if (block_size < 128 || (block_size & (block_size - 1)) != 0 || block_size > 32768) {
    return Status::InvalidArgument("block size must be a power of two in [128, 32768]");
  }
  HASHKIT_ASSIGN_OR_RETURN(auto file, OpenDiskPageFile(path, block_size, truncate));
  const bool fresh = file->PageCount() == 0;
  std::unique_ptr<GdbmClone> db(new GdbmClone(std::move(file), block_size));
  if (fresh) {
    HASHKIT_RETURN_IF_ERROR(db->InitNew());
  } else {
    HASHKIT_RETURN_IF_ERROR(db->LoadExisting());
  }
  return db;
}

// ---------------------------------------------------------------------------
// Header / directory persistence
// ---------------------------------------------------------------------------

Status GdbmClone::WriteHeader() {
  std::vector<uint8_t> buf(bsize_, 0);
  EncodeU32(buf.data() + 0, kGdbmMagic);
  EncodeU32(buf.data() + 4, bsize_);
  EncodeU32(buf.data() + 8, depth_);
  EncodeU32(buf.data() + 12, dir_start_);
  EncodeU32(buf.data() + 16, dir_pages_);
  EncodeU32(buf.data() + 20, next_new_page_);
  EncodeU64(buf.data() + 24, nkeys_);
  const size_t capacity = (bsize_ - kHeaderFixed) / 4;
  const auto count = static_cast<uint32_t>(std::min(free_list_.size(), capacity));
  EncodeU32(buf.data() + 32, count);
  for (uint32_t i = 0; i < count; ++i) {
    EncodeU32(buf.data() + kHeaderFixed + 4 * i, free_list_[i]);
  }
  // Entries past the header's capacity are dropped (leaked pages); GNU
  // gdbm's multi-block avail list avoids this, ours trades it for clarity.
  return file_->WritePage(0, std::span<const uint8_t>(buf));
}

Status GdbmClone::WriteDirectory() {
  const size_t bytes = directory_.size() * 4;
  const auto pages_needed = static_cast<uint32_t>((bytes + bsize_ - 1) / bsize_);
  if (pages_needed != dir_pages_) {
    // The directory needs a new (contiguous) region; recycle the old one.
    for (uint32_t p = 0; p < dir_pages_; ++p) {
      FreePage(dir_start_ + p);
    }
    dir_start_ = next_new_page_;
    next_new_page_ += pages_needed;
    dir_pages_ = pages_needed;
  }
  std::vector<uint8_t> buf(static_cast<size_t>(dir_pages_) * bsize_, 0);
  for (size_t i = 0; i < directory_.size(); ++i) {
    EncodeU32(buf.data() + 4 * i, directory_[i]);
  }
  for (uint32_t p = 0; p < dir_pages_; ++p) {
    HASHKIT_RETURN_IF_ERROR(file_->WritePage(
        dir_start_ + p,
        std::span<const uint8_t>(buf.data() + static_cast<size_t>(p) * bsize_, bsize_)));
  }
  return Status::Ok();
}

Status GdbmClone::InitNew() {
  next_new_page_ = 1;
  const uint32_t bucket0 = AllocPage();
  depth_ = 0;
  directory_ = {bucket0};
  std::vector<uint8_t> page(bsize_, 0);
  PageView::Init(page.data(), bsize_, PageType::kBucket);
  PageView view(page.data(), bsize_);
  SetBucketDepth(view, 0);
  HASHKIT_RETURN_IF_ERROR(file_->WritePage(bucket0, std::span<const uint8_t>(page)));
  dir_start_ = 0;
  dir_pages_ = 0;
  HASHKIT_RETURN_IF_ERROR(WriteDirectory());
  return WriteHeader();
}

Status GdbmClone::LoadExisting() {
  std::vector<uint8_t> buf(bsize_);
  HASHKIT_RETURN_IF_ERROR(file_->ReadPage(0, std::span<uint8_t>(buf)));
  if (DecodeU32(buf.data()) != kGdbmMagic) {
    return Status::Corruption("not a gdbm-clone file");
  }
  if (DecodeU32(buf.data() + 4) != bsize_) {
    return Status::Corruption("block size mismatch");
  }
  depth_ = DecodeU32(buf.data() + 8);
  dir_start_ = DecodeU32(buf.data() + 12);
  dir_pages_ = DecodeU32(buf.data() + 16);
  next_new_page_ = DecodeU32(buf.data() + 20);
  nkeys_ = DecodeU64(buf.data() + 24);
  const uint32_t free_count = DecodeU32(buf.data() + 32);
  if (depth_ > kGdbmMaxDepth || free_count > (bsize_ - kHeaderFixed) / 4) {
    return Status::Corruption("header fields out of range");
  }
  free_list_.clear();
  for (uint32_t i = 0; i < free_count; ++i) {
    free_list_.push_back(DecodeU32(buf.data() + kHeaderFixed + 4 * i));
  }
  directory_.assign(size_t{1} << depth_, 0);
  std::vector<uint8_t> dir_buf(static_cast<size_t>(dir_pages_) * bsize_);
  for (uint32_t p = 0; p < dir_pages_; ++p) {
    HASHKIT_RETURN_IF_ERROR(file_->ReadPage(
        dir_start_ + p,
        std::span<uint8_t>(dir_buf.data() + static_cast<size_t>(p) * bsize_, bsize_)));
  }
  for (size_t i = 0; i < directory_.size(); ++i) {
    directory_[i] = DecodeU32(dir_buf.data() + 4 * i);
  }
  return Status::Ok();
}

Status GdbmClone::Sync() {
  HASHKIT_RETURN_IF_ERROR(WriteDirectory());
  HASHKIT_RETURN_IF_ERROR(WriteHeader());
  return file_->Sync();
}

// ---------------------------------------------------------------------------
// Page plumbing
// ---------------------------------------------------------------------------

uint32_t GdbmClone::AllocPage() {
  if (!free_list_.empty()) {
    const uint32_t page = free_list_.back();
    free_list_.pop_back();
    ++stats_.pages_reused;
    return page;
  }
  return next_new_page_++;
}

void GdbmClone::FreePage(uint32_t page) {
  free_list_.push_back(page);
  if (cache_valid_ && cached_page_ == page) {
    cache_valid_ = false;
  }
}

Status GdbmClone::ReadPageTo(uint32_t page, std::vector<uint8_t>* buf) {
  buf->resize(bsize_);
  return file_->ReadPage(page, std::span<uint8_t>(*buf));
}

Status GdbmClone::WritePageFrom(uint32_t page, const std::vector<uint8_t>& buf) {
  return file_->WritePage(page, std::span<const uint8_t>(buf));
}

// ---------------------------------------------------------------------------
// Big pairs (gdbm's "arbitrary-length data")
// ---------------------------------------------------------------------------

Status GdbmClone::WriteBigChain(std::string_view key, std::string_view value,
                                uint16_t* first_page) {
  const size_t total = key.size() + value.size();
  const size_t cap = bsize_ - kPageHeaderSize;
  auto stream_copy = [&](size_t offset, uint8_t* dst, size_t len) {
    size_t copied = 0;
    if (offset < key.size()) {
      const size_t from_key = std::min(len, key.size() - offset);
      std::memcpy(dst, key.data() + offset, from_key);
      copied += from_key;
    }
    if (copied < len) {
      std::memcpy(dst + copied, value.data() + (offset + copied - key.size()), len - copied);
    }
  };

  // Lay out the chain front to back, then link it.
  const size_t nseg = (total + cap - 1) / cap;
  std::vector<uint32_t> pages(nseg);
  for (auto& p : pages) {
    p = AllocPage();
    if (p > 0xffff) {
      return Status::Full("big-pair chain page number exceeds 16 bits");
    }
  }
  std::vector<uint8_t> buf(bsize_);
  size_t offset = 0;
  for (size_t i = 0; i < nseg; ++i) {
    PageView::Init(buf.data(), bsize_, PageType::kBigSegment);
    PageView view(buf.data(), bsize_);
    const size_t chunk = std::min(cap, total - offset);
    stream_copy(offset, view.SegData(), chunk);
    view.SetSegUsed(static_cast<uint16_t>(chunk));
    view.set_ovfl_addr(i + 1 < nseg ? static_cast<uint16_t>(pages[i + 1]) : 0);
    HASHKIT_RETURN_IF_ERROR(WritePageFrom(pages[i], buf));
    offset += chunk;
  }
  *first_page = static_cast<uint16_t>(pages[0]);
  return Status::Ok();
}

Status GdbmClone::ReadBigChain(uint16_t first_page, uint32_t key_len, uint32_t data_len,
                               std::string* key_out, std::string* value_out) {
  const size_t total = static_cast<size_t>(key_len) + data_len;
  if (key_out != nullptr) {
    key_out->clear();
  }
  if (value_out != nullptr) {
    value_out->clear();
  }
  std::vector<uint8_t> buf;
  size_t offset = 0;
  uint16_t page = first_page;
  while (offset < total) {
    if (page == 0) {
      return Status::Corruption("big pair chain truncated");
    }
    HASHKIT_RETURN_IF_ERROR(ReadPageTo(page, &buf));
    PageView view(buf.data(), bsize_);
    if (view.type() != PageType::kBigSegment) {
      return Status::Corruption("big pair chain page has wrong type");
    }
    const size_t used = view.SegUsed();
    if (used == 0 || offset + used > total) {
      return Status::Corruption("big pair segment size invalid");
    }
    const auto* bytes = reinterpret_cast<const char*>(view.SegData());
    for (size_t i = 0; i < used; ++i) {
      const size_t pos = offset + i;
      if (pos < key_len) {
        if (key_out != nullptr) {
          key_out->push_back(bytes[i]);
        }
      } else if (value_out != nullptr) {
        value_out->push_back(bytes[i]);
      }
    }
    offset += used;
    if (value_out == nullptr && offset >= key_len) {
      return Status::Ok();
    }
    page = view.ovfl_addr();
  }
  return Status::Ok();
}

Status GdbmClone::FreeBigChain(uint16_t first_page) {
  std::vector<uint8_t> buf;
  uint16_t page = first_page;
  size_t guard = 0;
  while (page != 0) {
    HASHKIT_RETURN_IF_ERROR(ReadPageTo(page, &buf));
    PageView view(buf.data(), bsize_);
    const uint16_t next = view.ovfl_addr();
    FreePage(page);
    page = next;
    if (++guard > (1u << 20)) {
      return Status::Corruption("big pair chain cycle");
    }
  }
  return Status::Ok();
}

Status GdbmClone::EntryMatches(const EntryRef& entry, std::string_view key, uint32_t hash,
                               bool* equals) {
  *equals = false;
  if (!entry.big) {
    *equals = (entry.key == key);
    return Status::Ok();
  }
  if (entry.hash != hash || entry.key_len != key.size()) {
    return Status::Ok();
  }
  if (std::memcmp(entry.prefix.data(), key.data(), entry.prefix.size()) != 0) {
    return Status::Ok();
  }
  if (entry.key_len <= entry.prefix.size()) {
    *equals = true;
    return Status::Ok();
  }
  std::string full_key;
  HASHKIT_RETURN_IF_ERROR(
      ReadBigChain(entry.ovfl_addr, entry.key_len, entry.data_len, &full_key, nullptr));
  *equals = (full_key == key);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Core operations
// ---------------------------------------------------------------------------

Status GdbmClone::Fetch(std::string_view key, std::string* value) {
  const uint32_t h = GdbmHash(key);
  const uint32_t page = directory_[DirIndex(h)];
  if (!cache_valid_ || cached_page_ != page) {
    HASHKIT_RETURN_IF_ERROR(file_->ReadPage(page, std::span<uint8_t>(bucket_buf_)));
    cached_page_ = page;
    cache_valid_ = true;
  }
  PageView view(bucket_buf_.data(), bsize_);
  for (uint16_t i = 0; i < view.nentries(); ++i) {
    const EntryRef e = view.Entry(i);
    bool eq = false;
    HASHKIT_RETURN_IF_ERROR(EntryMatches(e, key, h, &eq));
    if (eq) {
      if (value != nullptr) {
        if (e.big) {
          HASHKIT_RETURN_IF_ERROR(ReadBigChain(e.ovfl_addr, e.key_len, e.data_len, nullptr,
                                               value));
        } else {
          value->assign(e.data);
        }
      }
      return Status::Ok();
    }
  }
  return Status::NotFound();
}

Status GdbmClone::Remove(std::string_view key) {
  const uint32_t h = GdbmHash(key);
  const uint32_t page = directory_[DirIndex(h)];
  HASHKIT_RETURN_IF_ERROR(file_->ReadPage(page, std::span<uint8_t>(bucket_buf_)));
  cached_page_ = page;
  cache_valid_ = true;
  PageView view(bucket_buf_.data(), bsize_);
  for (uint16_t i = 0; i < view.nentries(); ++i) {
    const EntryRef e = view.Entry(i);
    bool eq = false;
    HASHKIT_RETURN_IF_ERROR(EntryMatches(e, key, h, &eq));
    if (eq) {
      const uint16_t chain = e.big ? e.ovfl_addr : 0;
      view.RemoveEntry(i);
      HASHKIT_RETURN_IF_ERROR(file_->WritePage(page, std::span<const uint8_t>(bucket_buf_)));
      if (chain != 0) {
        HASHKIT_RETURN_IF_ERROR(FreeBigChain(chain));
      }
      --nkeys_;
      return Status::Ok();
    }
  }
  return Status::NotFound();
}

Status GdbmClone::SplitBucket(uint32_t index) {
  PageView view(bucket_buf_.data(), bsize_);
  const uint32_t old_page = directory_[index];
  const uint16_t nb = BucketDepth(view);

  if (nb == depth_) {
    if (depth_ >= kGdbmMaxDepth) {
      return Status::Full("directory depth limit reached");
    }
    // Double the directory: with low-bit indexing, the new half mirrors
    // the old (every bucket address is duplicated).
    directory_.reserve(directory_.size() * 2);
    directory_.insert(directory_.end(), directory_.begin(), directory_.end());
    ++depth_;
    ++stats_.directory_doublings;
  }

  // Copy the pairs out.
  struct Moved {
    bool big = false;
    std::string key;
    std::string data;
    uint16_t ovfl_addr = 0;
    uint32_t hash = 0;
    uint32_t key_len = 0;
    uint32_t data_len = 0;
    std::string prefix;
  };
  std::vector<Moved> pairs;
  for (uint16_t i = 0; i < view.nentries(); ++i) {
    const EntryRef e = view.Entry(i);
    Moved m;
    if (e.big) {
      m.big = true;
      m.ovfl_addr = e.ovfl_addr;
      m.hash = e.hash;
      m.key_len = e.key_len;
      m.data_len = e.data_len;
      m.prefix.assign(e.prefix);
    } else {
      m.key.assign(e.key);
      m.data.assign(e.data);
      m.hash = GdbmHash(m.key);
    }
    pairs.push_back(std::move(m));
  }

  const uint32_t new_page = AllocPage();
  const uint16_t new_depth = nb + 1;
  std::vector<uint8_t> sibling(bsize_);
  PageView::Init(bucket_buf_.data(), bsize_, PageType::kBucket);
  PageView::Init(sibling.data(), bsize_, PageType::kBucket);
  PageView old_view(bucket_buf_.data(), bsize_);
  PageView new_view(sibling.data(), bsize_);
  SetBucketDepth(old_view, new_depth);
  SetBucketDepth(new_view, new_depth);

  // Bit nb of the hash distinguishes the two halves.
  for (const Moved& m : pairs) {
    PageView& dest = ((m.hash >> nb) & 1) == 0 ? old_view : new_view;
    if (m.big) {
      dest.AddBigStub(m.ovfl_addr, m.hash, m.key_len, m.data_len, m.prefix);
    } else {
      dest.AddPair(m.key, m.data);
    }
  }

  // Redirect the directory entries whose index has bit nb set.
  for (size_t i = 0; i < directory_.size(); ++i) {
    if (directory_[i] == old_page && ((i >> nb) & 1) != 0) {
      directory_[i] = new_page;
    }
  }

  HASHKIT_RETURN_IF_ERROR(file_->WritePage(old_page, std::span<const uint8_t>(bucket_buf_)));
  HASHKIT_RETURN_IF_ERROR(file_->WritePage(new_page, std::span<const uint8_t>(sibling)));
  ++stats_.bucket_splits;
  return Status::Ok();
}

Status GdbmClone::Store(std::string_view key, std::string_view value, bool replace) {
  const uint32_t h = GdbmHash(key);

  {
    // Duplicate handling up front.
    std::string existing;
    const Status found = Fetch(key, nullptr);
    if (found.ok()) {
      if (!replace) {
        return Status::Exists();
      }
      HASHKIT_RETURN_IF_ERROR(Remove(key));
    } else if (!found.IsNotFound()) {
      return found;
    }
  }

  const bool big = !PageView::PairFitsEmptyPage(key.size(), value.size(), bsize_);
  uint16_t chain = 0;
  if (big) {
    HASHKIT_RETURN_IF_ERROR(WriteBigChain(key, value, &chain));
  }
  const std::string_view prefix = key.substr(0, std::min(key.size(), kBigKeyPrefixMax));

  for (;;) {
    const uint32_t index = DirIndex(h);
    const uint32_t page = directory_[index];
    HASHKIT_RETURN_IF_ERROR(file_->ReadPage(page, std::span<uint8_t>(bucket_buf_)));
    cached_page_ = page;
    cache_valid_ = true;
    PageView view(bucket_buf_.data(), bsize_);
    const bool fits = big ? view.FitsBigStub(prefix.size())
                          : view.FitsPair(key.size(), value.size());
    if (fits) {
      if (big) {
        view.AddBigStub(chain, h, static_cast<uint32_t>(key.size()),
                        static_cast<uint32_t>(value.size()), prefix);
      } else {
        view.AddPair(key, value);
      }
      ++nkeys_;
      return file_->WritePage(page, std::span<const uint8_t>(bucket_buf_));
    }
    HASHKIT_RETURN_IF_ERROR(SplitBucket(index));
  }
}

Status GdbmClone::Seq(std::string* key, std::string* value, bool first) {
  if (first) {
    seq_index_ = 0;
    seq_entry_ = 0;
  }
  std::vector<uint8_t> buf;
  while (seq_index_ < directory_.size()) {
    const uint32_t page = directory_[seq_index_];
    HASHKIT_RETURN_IF_ERROR(ReadPageTo(page, &buf));
    PageView view(buf.data(), bsize_);
    const uint16_t nb = BucketDepth(view);
    // Visit each bucket once: at its canonical (lowest) directory index.
    if ((seq_index_ & ((1u << nb) - 1)) != seq_index_ ||
        seq_entry_ >= view.nentries()) {
      ++seq_index_;
      seq_entry_ = 0;
      continue;
    }
    const EntryRef e = view.Entry(seq_entry_);
    ++seq_entry_;
    if (e.big) {
      HASHKIT_RETURN_IF_ERROR(ReadBigChain(e.ovfl_addr, e.key_len, e.data_len, key, value));
    } else {
      if (key != nullptr) {
        key->assign(e.key);
      }
      if (value != nullptr) {
        value->assign(e.data);
      }
    }
    return Status::Ok();
  }
  return Status::NotFound("end of database");
}

Status GdbmClone::CheckIntegrity() {
  if (directory_.size() != (size_t{1} << depth_)) {
    return Status::Corruption("directory size != 2^depth");
  }
  uint64_t count = 0;
  std::vector<uint8_t> buf;
  for (size_t i = 0; i < directory_.size(); ++i) {
    HASHKIT_RETURN_IF_ERROR(ReadPageTo(directory_[i], &buf));
    PageView view(buf.data(), bsize_);
    if (!view.Validate()) {
      return Status::Corruption("bucket page failed validation");
    }
    const uint16_t nb = BucketDepth(view);
    if (nb > depth_) {
      return Status::Corruption("bucket depth exceeds directory depth");
    }
    const size_t canonical = i & ((size_t{1} << nb) - 1);
    if (directory_[canonical] != directory_[i]) {
      return Status::Corruption("directory aliases inconsistent");
    }
    if (canonical != i) {
      continue;  // counted at its canonical index
    }
    for (uint16_t e = 0; e < view.nentries(); ++e) {
      const EntryRef entry = view.Entry(e);
      uint32_t h;
      if (entry.big) {
        std::string big_key;
        HASHKIT_RETURN_IF_ERROR(ReadBigChain(entry.ovfl_addr, entry.key_len, entry.data_len,
                                             &big_key, nullptr));
        h = GdbmHash(big_key);
        if (h != entry.hash) {
          return Status::Corruption("big stub hash mismatch");
        }
      } else {
        h = GdbmHash(entry.key);
      }
      if (directory_[DirIndex(h)] != directory_[i]) {
        return Status::Corruption("key not reachable from its directory slot");
      }
      if ((DirIndex(h) & ((1u << nb) - 1)) != canonical) {
        return Status::Corruption("key hash inconsistent with bucket depth");
      }
      ++count;
    }
  }
  if (count != nkeys_) {
    return Status::Corruption("key count mismatch");
  }
  return Status::Ok();
}

}  // namespace baseline
}  // namespace hashkit
