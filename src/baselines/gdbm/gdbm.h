// hashkit baseline: gdbm clone — extendible hashing (Fagin et al. 1979) as
// the paper describes it.
//
// A directory of 2^depth bucket addresses is a collapsed representation of
// sdbm's radix trie: n bits of the hash index straight into the directory.
// Each bucket carries a local depth nb and appears 2^(depth-nb) times; a
// bucket split needs a directory doubling only when nb == depth.  The
// database is a single non-sparse file (no holes), freed pages go on a
// free list, and arbitrary-length data is supported via chained big-pair
// segments — all properties the paper credits to gdbm.
//
// Simplifications vs GNU gdbm (documented in DESIGN.md): directory depth
// is capped at 20, big-pair chains must start in the first 65535 pages,
// the free list lives on the header page with fixed capacity, and there is
// no bucket cache beyond a single-block buffer.

#ifndef HASHKIT_SRC_BASELINES_GDBM_GDBM_H_
#define HASHKIT_SRC_BASELINES_GDBM_GDBM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/page.h"
#include "src/pagefile/page_file.h"
#include "src/util/hash_funcs.h"
#include "src/util/status.h"

namespace hashkit {
namespace baseline {

inline constexpr uint32_t kGdbmBlockSize = 1024;
inline constexpr uint32_t kGdbmMaxDepth = 20;

struct GdbmStats {
  uint64_t bucket_splits = 0;
  uint64_t directory_doublings = 0;
  uint64_t pages_reused = 0;
};

class GdbmClone {
 public:
  static Result<std::unique_ptr<GdbmClone>> Open(const std::string& path,
                                                 uint32_t block_size = kGdbmBlockSize,
                                                 bool truncate = false);
  ~GdbmClone();

  GdbmClone(const GdbmClone&) = delete;
  GdbmClone& operator=(const GdbmClone&) = delete;

  Status Store(std::string_view key, std::string_view value, bool replace);
  Status Fetch(std::string_view key, std::string* value);
  Status Remove(std::string_view key);
  Status Seq(std::string* key, std::string* value, bool first);
  Status Sync();

  uint64_t size() const { return nkeys_; }
  uint32_t directory_depth() const { return depth_; }
  size_t directory_entries() const { return directory_.size(); }
  const GdbmStats& stats() const { return stats_; }
  PageFileStats file_stats() const { return file_->stats(); }

  // Structural validation for tests: directory entries consistent with
  // local depths, every key reachable at its hashed index, counts correct.
  Status CheckIntegrity();

 private:
  GdbmClone(std::unique_ptr<PageFile> file, uint32_t bsize);

  Status InitNew();
  Status LoadExisting();
  Status WriteHeader();
  Status WriteDirectory();

  uint32_t DirIndex(uint32_t hash) const { return hash & ((1u << depth_) - 1); }
  uint32_t AllocPage();
  void FreePage(uint32_t page);

  Status ReadPageTo(uint32_t page, std::vector<uint8_t>* buf);
  Status WritePageFrom(uint32_t page, const std::vector<uint8_t>& buf);

  // Splits the bucket at directory index `index` (its page already in
  // `bucket_buf_`); doubles the directory when required.
  Status SplitBucket(uint32_t index);

  // Big-pair plumbing (chains of kBigSegment pages).
  Status WriteBigChain(std::string_view key, std::string_view value, uint16_t* first_page);
  Status ReadBigChain(uint16_t first_page, uint32_t key_len, uint32_t data_len,
                      std::string* key_out, std::string* value_out);
  Status FreeBigChain(uint16_t first_page);
  Status EntryMatches(const EntryRef& entry, std::string_view key, uint32_t hash, bool* equals);

  std::unique_ptr<PageFile> file_;
  uint32_t bsize_;
  uint32_t depth_ = 0;
  uint32_t dir_start_ = 0;
  uint32_t dir_pages_ = 0;
  uint32_t next_new_page_ = 1;
  uint64_t nkeys_ = 0;
  std::vector<uint32_t> directory_;
  std::vector<uint32_t> free_list_;
  std::vector<uint8_t> bucket_buf_;
  uint32_t cached_page_ = 0;
  bool cache_valid_ = false;

  // Sequential-scan state.
  uint32_t seq_index_ = 0;
  uint16_t seq_entry_ = 0;

  GdbmStats stats_;
};

}  // namespace baseline
}  // namespace hashkit

#endif  // HASHKIT_SRC_BASELINES_GDBM_GDBM_H_
