#include "src/baselines/sdbm/sdbm.h"

#include <cstdio>

namespace hashkit {
namespace baseline {

Result<std::unique_ptr<SdbmClone>> SdbmClone::Open(const std::string& path, uint32_t block_size,
                                                   bool truncate) {
  if (block_size < 64 || (block_size & (block_size - 1)) != 0 || block_size > 32768) {
    return Status::InvalidArgument("block size must be a power of two in [64, 32768]");
  }
  HASHKIT_ASSIGN_OR_RETURN(auto pag, OpenDiskPageFile(path + ".pag", block_size, truncate));
  if (truncate) {
    std::remove((path + ".dir").c_str());
  }
  std::unique_ptr<SdbmClone> db(
      new SdbmClone(std::move(pag), path + ".dir", &HashSdbm, block_size));
  HASHKIT_RETURN_IF_ERROR(db->LoadDir());
  return db;
}

DbmBase::Probe SdbmClone::Locate(uint32_t hash) const {
  uint64_t tbit = 0;  // linearized radix-trie node index
  uint32_t hbit = 0;  // next hash bit to consume
  uint32_t mask = 0;
  while (dir_.Test(tbit)) {
    if (hash & (1u << hbit)) {
      tbit = 2 * tbit + 2;  // right son
    } else {
      tbit = 2 * tbit + 1;  // left son
    }
    ++hbit;
    mask = (mask << 1) + 1;
  }
  Probe probe;
  probe.mask = mask;
  probe.bucket = hash & mask;
  probe.split_bit = tbit;
  return probe;
}

}  // namespace baseline
}  // namespace hashkit
