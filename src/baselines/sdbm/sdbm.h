// hashkit baseline: sdbm clone — Ozan Yigit's public-domain ndbm
// replacement, built on a simplified implementation of Larson's 1978
// dynamic hashing.
//
// The access function walks a linearized radix trie stored as a bit
// vector: node i's children live at 2i+1 and 2i+2, an internal (split)
// node has its bit set, and the hash bits choose left/right at each level
// (the paper's second code fragment).  Incompatible with ndbm at the
// database level: different access function, different hash function.

#ifndef HASHKIT_SRC_BASELINES_SDBM_SDBM_H_
#define HASHKIT_SRC_BASELINES_SDBM_SDBM_H_

#include <memory>
#include <string>

#include "src/baselines/ndbm/dbm_base.h"

namespace hashkit {
namespace baseline {

inline constexpr uint32_t kSdbmBlockSize = 1024;

class SdbmClone final : public DbmBase {
 public:
  static Result<std::unique_ptr<SdbmClone>> Open(const std::string& path,
                                                 uint32_t block_size = kSdbmBlockSize,
                                                 bool truncate = false);

 protected:
  Probe Locate(uint32_t hash) const override;

  // A linearized trie's node index grows as 2^depth, so the .dir bitmap
  // would explode past this depth; real sdbm had the same practical bound.
  uint32_t MaxDepth() const override { return 28; }

 private:
  using DbmBase::DbmBase;
};

}  // namespace baseline
}  // namespace hashkit

#endif  // HASHKIT_SRC_BASELINES_SDBM_SDBM_H_
