#include "src/baselines/ndbm/ndbm.h"

#include <cstdio>

namespace hashkit {
namespace baseline {

Result<std::unique_ptr<NdbmClone>> NdbmClone::Open(const std::string& path, uint32_t block_size,
                                                   bool truncate) {
  if (block_size < 64 || (block_size & (block_size - 1)) != 0 || block_size > 32768) {
    return Status::InvalidArgument("block size must be a power of two in [64, 32768]");
  }
  HASHKIT_ASSIGN_OR_RETURN(auto pag, OpenDiskPageFile(path + ".pag", block_size, truncate));
  if (truncate) {
    std::remove((path + ".dir").c_str());
  }
  std::unique_ptr<NdbmClone> db(
      new NdbmClone(std::move(pag), path + ".dir", &HashThompson, block_size));
  HASHKIT_RETURN_IF_ERROR(db->LoadDir());
  return db;
}

DbmBase::Probe NdbmClone::Locate(uint32_t hash) const {
  uint32_t mask = 0;
  // Bit (hash & mask) + mask says whether the bucket reached with `mask`
  // revealed bits has split; keep revealing bits until it has not.
  while (dir_.Test((hash & mask) + static_cast<uint64_t>(mask))) {
    mask = (mask << 1) + 1;
  }
  Probe probe;
  probe.mask = mask;
  probe.bucket = hash & mask;
  probe.split_bit = probe.bucket + static_cast<uint64_t>(mask);
  return probe;
}

}  // namespace baseline
}  // namespace hashkit
