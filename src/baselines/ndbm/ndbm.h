// hashkit baseline: ndbm clone — Ken Thompson's dbm algorithm with the
// ndbm programmatic interface (multiple concurrently open databases).
//
// The access function reveals just enough hash bits to find a block in a
// single access, consulting an in-memory bitmap of the split history:
//
//     hash = calchash(key);
//     mask = 0;
//     while (isbitset((hash & mask) + mask))
//         mask = (mask << 1) + 1;
//     bucket = hash & mask;
//
// (the paper's "simplification of the algorithm due to Ken Thompson").

#ifndef HASHKIT_SRC_BASELINES_NDBM_NDBM_H_
#define HASHKIT_SRC_BASELINES_NDBM_NDBM_H_

#include <memory>
#include <string>

#include "src/baselines/ndbm/dbm_base.h"

namespace hashkit {
namespace baseline {

inline constexpr uint32_t kNdbmBlockSize = 1024;  // the classic PBLKSIZ

class NdbmClone final : public DbmBase {
 public:
  // Creates/opens `path`.pag and `path`.dir.
  static Result<std::unique_ptr<NdbmClone>> Open(const std::string& path,
                                                 uint32_t block_size = kNdbmBlockSize,
                                                 bool truncate = false);

 protected:
  Probe Locate(uint32_t hash) const override;

 private:
  using DbmBase::DbmBase;
};

}  // namespace baseline
}  // namespace hashkit

#endif  // HASHKIT_SRC_BASELINES_NDBM_NDBM_H_
