// hashkit baseline: shared machinery for the dbm-family stores (ndbm and
// sdbm clones).
//
// Both packages share Ken Thompson's storage model: a sparse .pag file of
// fixed-size blocks addressed directly by revealed hash bits, a .dir file
// recording the split history, split-on-overflow with no overflow pages,
// and a single-block buffer (so nearly every operation is a real file
// access — the paper's central criticism).  They differ only in the access
// function that maps a hash value to a bucket:
//
//   * ndbm walks Thompson's split-history bitmap:
//         while (isbitset((hash & mask) + mask)) mask = (mask << 1) + 1;
//   * sdbm walks a linearized radix trie (Larson 1978, simplified):
//         while (isbitset(tbit)) tbit = 2*tbit + 1 + next hash bit;
//
// Subclasses provide Locate()/MarkSplit(); everything else lives here.
//
// Faithful shortcomings (deliberately preserved): a pair larger than a
// block is rejected; colliding keys whose total exceeds a block make the
// store fail once the hash bits are exhausted; no page caching beyond the
// single block buffer.

#ifndef HASHKIT_SRC_BASELINES_NDBM_DBM_BASE_H_
#define HASHKIT_SRC_BASELINES_NDBM_DBM_BASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/pagefile/page_file.h"
#include "src/util/bitmap.h"
#include "src/util/hash_funcs.h"
#include "src/util/status.h"

namespace hashkit {
namespace baseline {

struct DbmStats {
  uint64_t splits = 0;
};

class DbmBase {
 public:
  virtual ~DbmBase();

  DbmBase(const DbmBase&) = delete;
  DbmBase& operator=(const DbmBase&) = delete;

  // dbm_store(3): replace=false mirrors DBM_INSERT (kExists on duplicate).
  Status Store(std::string_view key, std::string_view value, bool replace);
  Status Fetch(std::string_view key, std::string* value);
  Status Remove(std::string_view key);

  // firstkey/nextkey-style iteration over every pair (physical block
  // order).  Mutating the store invalidates the scan.
  Status Seq(std::string* key, std::string* value, bool first);

  // Writes the .dir split history and flushes the .pag file.
  Status Sync();

  uint64_t size() const { return nkeys_; }
  const DbmStats& stats() const { return stats_; }
  PageFileStats file_stats() const { return pag_->stats(); }
  uint32_t block_size() const { return bsize_; }

 protected:
  DbmBase(std::unique_ptr<PageFile> pag, std::string dir_path, HashFn hash, uint32_t bsize);

  // Loads the .dir bitmap; call from subclass factory after construction.
  Status LoadDir();

  // Where a hash value lands given the current split history.
  struct Probe {
    uint32_t bucket = 0;
    uint32_t mask = 0;       // bits of the hash revealed to reach the bucket
    uint64_t split_bit = 0;  // the .dir bit to set if this bucket splits
  };
  virtual Probe Locate(uint32_t hash) const = 0;

  // Split-depth cap (sdbm's linearized trie index grows exponentially with
  // depth, so it caps lower).
  virtual uint32_t MaxDepth() const { return 32; }

  Bitmap dir_;

 private:
  Status ReadBucket(uint32_t bucket);
  Status WriteBucket(uint32_t bucket);
  // Splits the (full) bucket described by `probe`; page contents divide
  // between bucket and bucket + (mask + 1) by the next hash bit.
  Status SplitBucket(const Probe& probe);

  std::unique_ptr<PageFile> pag_;
  std::string dir_path_;
  HashFn hash_;
  uint32_t bsize_;
  uint64_t nkeys_ = 0;

  // The classic one-block buffer.
  std::vector<uint8_t> pagbuf_;
  uint32_t cached_bucket_ = 0;
  bool cache_valid_ = false;

  // Sequential-scan state.
  uint64_t seq_page_ = 0;
  uint16_t seq_entry_ = 0;

  DbmStats stats_;
};

}  // namespace baseline
}  // namespace hashkit

#endif  // HASHKIT_SRC_BASELINES_NDBM_DBM_BASE_H_
