#include "src/baselines/ndbm/dbm_base.h"

#include <bit>
#include <fstream>

#include "src/core/page.h"

namespace hashkit {
namespace baseline {

DbmBase::DbmBase(std::unique_ptr<PageFile> pag, std::string dir_path, HashFn hash, uint32_t bsize)
    : pag_(std::move(pag)),
      dir_path_(std::move(dir_path)),
      hash_(hash),
      bsize_(bsize),
      pagbuf_(bsize) {}

DbmBase::~DbmBase() { (void)Sync(); }

Status DbmBase::LoadDir() {
  std::ifstream in(dir_path_, std::ios::binary);
  if (in.good()) {
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    dir_ = Bitmap::FromBytes(bytes);
  }
  // dbm keeps no key count; recompute it from the blocks.
  nkeys_ = 0;
  const uint64_t npages = pag_->PageCount();
  for (uint64_t p = 0; p < npages; ++p) {
    HASHKIT_RETURN_IF_ERROR(pag_->ReadPage(p, std::span<uint8_t>(pagbuf_)));
    PageView view(pagbuf_.data(), bsize_);
    if (view.data_begin() != 0) {
      nkeys_ += view.nentries();
    }
  }
  cache_valid_ = false;
  return Status::Ok();
}

Status DbmBase::Sync() {
  std::ofstream out(dir_path_, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::IoError("cannot write " + dir_path_);
  }
  const std::vector<uint8_t> bytes = dir_.ToBytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  return pag_->Sync();
}

Status DbmBase::ReadBucket(uint32_t bucket) {
  if (cache_valid_ && cached_bucket_ == bucket) {
    return Status::Ok();
  }
  HASHKIT_RETURN_IF_ERROR(pag_->ReadPage(bucket, std::span<uint8_t>(pagbuf_)));
  PageView view(pagbuf_.data(), bsize_);
  if (view.data_begin() == 0) {
    PageView::Init(pagbuf_.data(), bsize_, PageType::kBucket);
  }
  cached_bucket_ = bucket;
  cache_valid_ = true;
  return Status::Ok();
}

Status DbmBase::WriteBucket(uint32_t bucket) {
  // Write-through, as in dbm: every mutation is a real file write.
  return pag_->WritePage(bucket, std::span<const uint8_t>(pagbuf_));
}

Status DbmBase::Fetch(std::string_view key, std::string* value) {
  const uint32_t h = hash_(key.data(), key.size());
  const Probe probe = Locate(h);
  HASHKIT_RETURN_IF_ERROR(ReadBucket(probe.bucket));
  PageView view(pagbuf_.data(), bsize_);
  for (uint16_t i = 0; i < view.nentries(); ++i) {
    const EntryRef e = view.Entry(i);
    if (e.key == key) {
      if (value != nullptr) {
        value->assign(e.data);
      }
      return Status::Ok();
    }
  }
  return Status::NotFound();
}

Status DbmBase::Remove(std::string_view key) {
  const uint32_t h = hash_(key.data(), key.size());
  const Probe probe = Locate(h);
  HASHKIT_RETURN_IF_ERROR(ReadBucket(probe.bucket));
  PageView view(pagbuf_.data(), bsize_);
  for (uint16_t i = 0; i < view.nentries(); ++i) {
    if (view.Entry(i).key == key) {
      view.RemoveEntry(i);
      --nkeys_;
      return WriteBucket(probe.bucket);
    }
  }
  return Status::NotFound();
}

Status DbmBase::SplitBucket(const Probe& probe) {
  // Copy the pairs out, then rewrite both halves.
  struct Pair {
    std::string key;
    std::string data;
  };
  std::vector<Pair> pairs;
  {
    PageView view(pagbuf_.data(), bsize_);
    pairs.reserve(view.nentries());
    for (uint16_t i = 0; i < view.nentries(); ++i) {
      const EntryRef e = view.Entry(i);
      pairs.push_back({std::string(e.key), std::string(e.data)});
    }
  }
  dir_.Set(probe.split_bit);
  const uint32_t new_mask = (probe.mask << 1) + 1;
  const uint32_t sibling = probe.bucket + (probe.mask + 1);

  std::vector<uint8_t> new_page(bsize_);
  PageView::Init(pagbuf_.data(), bsize_, PageType::kBucket);
  PageView::Init(new_page.data(), bsize_, PageType::kBucket);
  PageView old_view(pagbuf_.data(), bsize_);
  PageView new_view(new_page.data(), bsize_);
  for (const Pair& pair : pairs) {
    const uint32_t h = hash_(pair.key.data(), pair.key.size());
    PageView& dest = (h & new_mask) == probe.bucket ? old_view : new_view;
    dest.AddPair(pair.key, pair.data);
  }
  HASHKIT_RETURN_IF_ERROR(WriteBucket(probe.bucket));
  HASHKIT_RETURN_IF_ERROR(
      pag_->WritePage(sibling, std::span<const uint8_t>(new_page)));
  ++stats_.splits;
  return Status::Ok();
}

Status DbmBase::Store(std::string_view key, std::string_view value, bool replace) {
  if (!PageView::PairFitsEmptyPage(key.size(), value.size(), bsize_)) {
    // dbm "cannot store data items whose total key and data size exceed
    // the page size" — the shortcoming the new package fixes.
    return Status::Full("pair larger than a dbm block");
  }
  const uint32_t h = hash_(key.data(), key.size());
  for (;;) {
    const Probe probe = Locate(h);
    HASHKIT_RETURN_IF_ERROR(ReadBucket(probe.bucket));
    PageView view(pagbuf_.data(), bsize_);
    for (uint16_t i = 0; i < view.nentries(); ++i) {
      if (view.Entry(i).key == key) {
        if (!replace) {
          return Status::Exists();
        }
        view.RemoveEntry(i);
        --nkeys_;
        break;
      }
    }
    if (view.FitsPair(key.size(), value.size())) {
      view.AddPair(key, value);
      ++nkeys_;
      return WriteBucket(probe.bucket);
    }
    // Full block: split and retry with one more hash bit revealed.
    if (static_cast<uint32_t>(std::popcount(probe.mask)) >= MaxDepth()) {
      // Colliding keys whose total exceeds a block: dbm "cannot store all
      // the colliding keys".
      return Status::Full("hash bits exhausted; colliding keys exceed a block");
    }
    HASHKIT_RETURN_IF_ERROR(SplitBucket(probe));
  }
}

Status DbmBase::Seq(std::string* key, std::string* value, bool first) {
  if (first) {
    seq_page_ = 0;
    seq_entry_ = 0;
  }
  const uint64_t npages = pag_->PageCount();
  while (seq_page_ < npages) {
    HASHKIT_RETURN_IF_ERROR(ReadBucket(static_cast<uint32_t>(seq_page_)));
    PageView view(pagbuf_.data(), bsize_);
    if (seq_entry_ < view.nentries()) {
      const EntryRef e = view.Entry(seq_entry_);
      if (key != nullptr) {
        key->assign(e.key);
      }
      if (value != nullptr) {
        value->assign(e.data);
      }
      ++seq_entry_;
      return Status::Ok();
    }
    ++seq_page_;
    seq_entry_ = 0;
  }
  return Status::NotFound("end of database");
}

}  // namespace baseline
}  // namespace hashkit
