// hashkit baseline: System V hsearch(3), reimplemented from the paper's
// description.
//
// A fixed-capacity, memory-resident hash table sized at creation (nelem is
// rounded up to a prime).  The default configuration computes a primary
// bucket with a Knuth multiplicative hash and resolves collisions by
// double hashing (a secondary multiplicative hash gives the probe
// interval).  The paper's compile-time options are runtime options here:
//
//   * kDivision ("DIV")  — modulo hashing with linear probing;
//   * kBrent   ("BRENT") — Brent's insertion-time rearrangement, which
//     shortens long probe chains by lengthening short ones once a chain
//     exceeds a threshold (Brent suggests 2);
//   * kChained ("CHAINED") — collision chains from the primary bucket,
//     optionally kept sorted ("SORTUP"/"SORTDOWN").
//
// Faithful shortcomings (the ones the paper criticizes): the table cannot
// grow, inserts fail with "table full", and there is no disk story.

#ifndef HASHKIT_SRC_BASELINES_HSEARCH_HSEARCH_H_
#define HASHKIT_SRC_BASELINES_HSEARCH_HSEARCH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace hashkit {
namespace baseline {

enum class HsearchHash : uint8_t {
  kMultiplicative = 0,  // default: Knuth 6.4 multiplicative
  kDivision,            // "DIV": modulo + linear probing
};

enum class HsearchCollision : uint8_t {
  kDoubleHash = 0,  // default probe-interval scheme
  kBrent,           // "BRENT" rearrangement
  kChained,         // "CHAINED" linked lists
};

enum class HsearchChainOrder : uint8_t {
  kFront = 0,  // new entries at the head of the chain (default)
  kSortUp,     // "SORTUP"
  kSortDown,   // "SORTDOWN"
};

struct HsearchConfig {
  HsearchHash hash = HsearchHash::kMultiplicative;
  HsearchCollision collision = HsearchCollision::kDoubleHash;
  HsearchChainOrder order = HsearchChainOrder::kFront;
  uint32_t brent_threshold = 2;
};

struct HsearchStats {
  uint64_t probes = 0;       // slots examined across all operations
  uint64_t rearranges = 0;   // Brent moves performed
};

class SysvHsearch {
 public:
  // As in hcreate(3): capacity fixed at the next prime >= nelem.
  static Result<std::unique_ptr<SysvHsearch>> Create(size_t nelem,
                                                     const HsearchConfig& config = {});

  // kFind semantics: *data receives the stored pointer.
  Status Find(const std::string& key, void** data);

  // kEnter semantics: inserts if absent; if present, returns Ok and leaves
  // the existing data untouched (hsearch's contract).  kFull when the
  // table cannot accept another entry.
  Status Enter(const std::string& key, void* data);

  size_t size() const { return count_; }
  size_t capacity() const { return capacity_; }
  const HsearchStats& stats() const { return stats_; }

 private:
  struct Slot {
    std::string key;
    void* data = nullptr;
    bool used = false;
  };
  struct ChainNode {
    std::string key;
    void* data = nullptr;
    std::unique_ptr<ChainNode> next;
  };

  SysvHsearch(size_t capacity, const HsearchConfig& config);

  uint32_t PrimaryIndex(uint32_t hash) const;
  uint32_t ProbeStep(uint32_t hash) const;

  Status FindOpen(const std::string& key, uint32_t hash, void** data);
  Status EnterOpen(const std::string& key, uint32_t hash, void* data);
  Status EnterBrent(const std::string& key, uint32_t hash, void* data);
  Status FindChained(const std::string& key, uint32_t hash, void** data);
  Status EnterChained(const std::string& key, uint32_t hash, void* data);

  HsearchConfig config_;
  size_t capacity_;
  size_t count_ = 0;
  std::vector<Slot> slots_;                         // open addressing
  std::vector<std::unique_ptr<ChainNode>> chains_;  // kChained
  HsearchStats stats_;
};

}  // namespace baseline
}  // namespace hashkit

#endif  // HASHKIT_SRC_BASELINES_HSEARCH_HSEARCH_H_
