#include "src/baselines/hsearch/hsearch.h"

#include "src/util/hash_funcs.h"

namespace hashkit {
namespace baseline {

namespace {

bool IsPrime(size_t n) {
  if (n < 2) {
    return false;
  }
  for (size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      return false;
    }
  }
  return true;
}

size_t NextPrime(size_t n) {
  while (!IsPrime(n)) {
    ++n;
  }
  return n;
}

uint32_t FoldKey(const std::string& key) { return HashKnuthMul(key.data(), key.size()); }

// A second, independent fold for the probe interval.
uint32_t FoldKey2(const std::string& key) { return HashDjb2(key.data(), key.size()); }

}  // namespace

SysvHsearch::SysvHsearch(size_t capacity, const HsearchConfig& config)
    : config_(config), capacity_(capacity) {
  if (config_.collision == HsearchCollision::kChained) {
    chains_.resize(capacity_);
  } else {
    slots_.resize(capacity_);
  }
}

Result<std::unique_ptr<SysvHsearch>> SysvHsearch::Create(size_t nelem,
                                                         const HsearchConfig& config) {
  if (nelem == 0) {
    return Status::InvalidArgument("nelem must be positive");
  }
  const size_t capacity = NextPrime(std::max<size_t>(nelem, 3));
  return std::unique_ptr<SysvHsearch>(new SysvHsearch(capacity, config));
}

uint32_t SysvHsearch::PrimaryIndex(uint32_t hash) const {
  if (config_.hash == HsearchHash::kDivision) {
    return hash % static_cast<uint32_t>(capacity_);
  }
  // Knuth multiplicative: take the high bits of hash * A.
  const uint64_t product = static_cast<uint64_t>(hash) * 2654435761u;
  return static_cast<uint32_t>((product >> 16) % capacity_);
}

uint32_t SysvHsearch::ProbeStep(uint32_t hash) const {
  if (config_.hash == HsearchHash::kDivision) {
    return 1;  // "DIV": linear probing
  }
  // Secondary multiplicative hash; interval in [1, capacity-1] so that with
  // a prime table size every slot is eventually probed.
  return 1 + (hash % static_cast<uint32_t>(capacity_ - 1));
}

Status SysvHsearch::Find(const std::string& key, void** data) {
  const uint32_t primary = FoldKey(key);
  if (config_.collision == HsearchCollision::kChained) {
    return FindChained(key, primary, data);
  }
  return FindOpen(key, primary, data);
}

Status SysvHsearch::Enter(const std::string& key, void* data) {
  const uint32_t primary = FoldKey(key);
  switch (config_.collision) {
    case HsearchCollision::kChained:
      return EnterChained(key, primary, data);
    case HsearchCollision::kBrent:
      return EnterBrent(key, primary, data);
    case HsearchCollision::kDoubleHash:
      return EnterOpen(key, primary, data);
  }
  return Status::InvalidArgument("bad collision policy");
}

Status SysvHsearch::FindOpen(const std::string& key, uint32_t hash, void** data) {
  uint32_t index = PrimaryIndex(hash);
  const uint32_t step = ProbeStep(FoldKey2(key));
  for (size_t attempt = 0; attempt < capacity_; ++attempt) {
    ++stats_.probes;
    const Slot& slot = slots_[index];
    if (!slot.used) {
      return Status::NotFound();
    }
    if (slot.key == key) {
      if (data != nullptr) {
        *data = slot.data;
      }
      return Status::Ok();
    }
    index = static_cast<uint32_t>((index + step) % capacity_);
  }
  return Status::NotFound();
}

Status SysvHsearch::EnterOpen(const std::string& key, uint32_t hash, void* data) {
  uint32_t index = PrimaryIndex(hash);
  const uint32_t step = ProbeStep(FoldKey2(key));
  for (size_t attempt = 0; attempt < capacity_; ++attempt) {
    ++stats_.probes;
    Slot& slot = slots_[index];
    if (!slot.used) {
      slot.key = key;
      slot.data = data;
      slot.used = true;
      ++count_;
      return Status::Ok();
    }
    if (slot.key == key) {
      return Status::Ok();  // hsearch ENTER keeps the existing entry
    }
    index = static_cast<uint32_t>((index + step) % capacity_);
  }
  return Status::Full("table full");
}

Status SysvHsearch::EnterBrent(const std::string& key, uint32_t hash, void* data) {
  // Walk the probe sequence recording it; on a long chain, try to shuffle a
  // colliding key one step along *its own* sequence to make room earlier.
  uint32_t index = PrimaryIndex(hash);
  const uint32_t step = ProbeStep(FoldKey2(key));
  std::vector<uint32_t> sequence;
  for (size_t attempt = 0; attempt < capacity_; ++attempt) {
    ++stats_.probes;
    Slot& slot = slots_[index];
    if (!slot.used) {
      break;
    }
    if (slot.key == key) {
      return Status::Ok();
    }
    sequence.push_back(index);
    index = static_cast<uint32_t>((index + step) % capacity_);
  }
  if (sequence.size() >= capacity_) {
    return Status::Full("table full");
  }

  if (sequence.size() > config_.brent_threshold) {
    // Try to move a key from early in the new key's probe sequence one step
    // along its own sequence; a successful move shortens the new key's
    // chain by (sequence length - position - 1) at a cost of 1.
    for (size_t pos = 0; pos + 1 < sequence.size(); ++pos) {
      Slot& victim = slots_[sequence[pos]];
      const uint32_t vstep = ProbeStep(FoldKey2(victim.key));
      const auto vnext = static_cast<uint32_t>((sequence[pos] + vstep) % capacity_);
      ++stats_.probes;
      if (!slots_[vnext].used) {
        slots_[vnext] = victim;
        victim.key = key;
        victim.data = data;
        ++count_;
        ++stats_.rearranges;
        return Status::Ok();
      }
    }
  }
  // No rearrangement: take the empty slot at the end of the sequence.
  Slot& slot = slots_[index];
  slot.key = key;
  slot.data = data;
  slot.used = true;
  ++count_;
  return Status::Ok();
}

Status SysvHsearch::FindChained(const std::string& key, uint32_t hash, void** data) {
  const uint32_t index = PrimaryIndex(hash);
  for (const ChainNode* node = chains_[index].get(); node != nullptr; node = node->next.get()) {
    ++stats_.probes;
    if (node->key == key) {
      if (data != nullptr) {
        *data = node->data;
      }
      return Status::Ok();
    }
    // Sorted chains allow early termination.
    if (config_.order == HsearchChainOrder::kSortUp && node->key > key) {
      break;
    }
    if (config_.order == HsearchChainOrder::kSortDown && node->key < key) {
      break;
    }
  }
  return Status::NotFound();
}

Status SysvHsearch::EnterChained(const std::string& key, uint32_t hash, void* data) {
  const uint32_t index = PrimaryIndex(hash);
  // CHAINED tables are still bounded by nelem in System V.
  if (count_ >= capacity_) {
    void* existing = nullptr;
    if (FindChained(key, hash, &existing).ok()) {
      return Status::Ok();
    }
    return Status::Full("table full");
  }

  void* existing = nullptr;
  if (FindChained(key, hash, &existing).ok()) {
    return Status::Ok();  // keep the existing entry
  }
  // Find the insertion point: the head for kFront, the sorted position
  // otherwise.
  std::unique_ptr<ChainNode>* link = &chains_[index];
  if (config_.order != HsearchChainOrder::kFront) {
    while (*link != nullptr) {
      const bool stop_up = config_.order == HsearchChainOrder::kSortUp && (*link)->key > key;
      const bool stop_down = config_.order == HsearchChainOrder::kSortDown && (*link)->key < key;
      if (stop_up || stop_down) {
        break;
      }
      link = &(*link)->next;
    }
  }
  auto node = std::make_unique<ChainNode>();
  node->key = key;
  node->data = data;
  node->next = std::move(*link);
  *link = std::move(node);
  ++count_;
  return Status::Ok();
}

}  // namespace baseline
}  // namespace hashkit
