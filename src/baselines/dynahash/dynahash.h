// hashkit baseline: dynahash — Esmond Pitt's hsearch-compatible library
// implementing Larson's 1988 in-memory linear hashing, reimplemented from
// the paper's description.
//
// The table grows in generations: during each generation every bucket that
// existed at its start is split, in order (controlled splitting only — a
// split happens whenever the fill factor is exceeded).  Buckets are linked
// lists reached through a directory of fixed-size segments, so growing
// never relocates existing entries' nodes.
//
// This is the design the paper's package descends from; the package adds
// pages, overflow handling, and buffering on top of exactly this split
// schedule.

#ifndef HASHKIT_SRC_BASELINES_DYNAHASH_DYNAHASH_H_
#define HASHKIT_SRC_BASELINES_DYNAHASH_DYNAHASH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/hash_funcs.h"
#include "src/util/status.h"

namespace hashkit {
namespace baseline {

struct DynahashStats {
  uint64_t splits = 0;
  uint64_t directory_growths = 0;
};

class Dynahash {
 public:
  // nelem is the hcreate-style size estimate; the initial bucket count is
  // nelem/ffactor rounded up to a power of two (one bucket when nelem==0).
  static Result<std::unique_ptr<Dynahash>> Create(size_t nelem, uint32_t ffactor = 5,
                                                  HashFuncId hash = HashFuncId::kLarson);

  // hsearch-style operations storing an opaque pointer.
  Status Find(const std::string& key, void** data);
  Status Enter(const std::string& key, void* data);  // keeps existing entry if present
  Status Remove(const std::string& key);

  size_t size() const { return count_; }
  uint32_t bucket_count() const { return max_bucket_ + 1; }
  const DynahashStats& stats() const { return stats_; }

  // Average chain length over non-empty buckets, for load diagnostics.
  double AverageChainLength() const;

 private:
  struct Node {
    std::string key;
    void* data = nullptr;
    std::unique_ptr<Node> next;
  };
  // Segments of 256 bucket heads; the directory grows by whole segments so
  // existing buckets never move.
  static constexpr uint32_t kSegmentShift = 8;
  static constexpr uint32_t kSegmentSize = 1u << kSegmentShift;
  using Segment = std::vector<std::unique_ptr<Node>>;

  Dynahash(uint32_t nbuckets, uint32_t ffactor, HashFn hash);

  uint32_t BucketOf(uint32_t hash) const;
  std::unique_ptr<Node>& Head(uint32_t bucket);
  void EnsureBucketExists(uint32_t bucket);
  void Split();

  HashFn hash_;
  uint32_t ffactor_;
  uint32_t max_bucket_;
  uint32_t high_mask_;
  uint32_t low_mask_;
  size_t count_ = 0;
  std::vector<std::unique_ptr<Segment>> directory_;
  DynahashStats stats_;
};

}  // namespace baseline
}  // namespace hashkit

#endif  // HASHKIT_SRC_BASELINES_DYNAHASH_DYNAHASH_H_
