#include "src/baselines/dynahash/dynahash.h"

#include <algorithm>

#include "src/util/math.h"

namespace hashkit {
namespace baseline {

Dynahash::Dynahash(uint32_t nbuckets, uint32_t ffactor, HashFn hash)
    : hash_(hash),
      ffactor_(ffactor),
      max_bucket_(nbuckets - 1),
      high_mask_(nbuckets * 2 - 1),
      low_mask_(nbuckets - 1) {
  for (uint32_t b = 0; b <= max_bucket_; ++b) {
    EnsureBucketExists(b);
  }
}

Result<std::unique_ptr<Dynahash>> Dynahash::Create(size_t nelem, uint32_t ffactor,
                                                   HashFuncId hash) {
  if (ffactor == 0) {
    return Status::InvalidArgument("ffactor must be >= 1");
  }
  HashFn fn = GetHashFunc(hash);
  if (fn == nullptr) {
    return Status::InvalidArgument("unknown hash function");
  }
  uint32_t nbuckets = 1;
  if (nelem > 1) {
    const auto needed = static_cast<uint32_t>((nelem - 1) / ffactor + 1);
    nbuckets = static_cast<uint32_t>(NextPowerOfTwo(needed));
  }
  return std::unique_ptr<Dynahash>(new Dynahash(nbuckets, ffactor, fn));
}

uint32_t Dynahash::BucketOf(uint32_t hash) const {
  uint32_t bucket = hash & high_mask_;
  if (bucket > max_bucket_) {
    bucket = hash & low_mask_;
  }
  return bucket;
}

std::unique_ptr<Dynahash::Node>& Dynahash::Head(uint32_t bucket) {
  return (*directory_[bucket >> kSegmentShift])[bucket & (kSegmentSize - 1)];
}

void Dynahash::EnsureBucketExists(uint32_t bucket) {
  const uint32_t segment = bucket >> kSegmentShift;
  while (directory_.size() <= segment) {
    directory_.push_back(std::make_unique<Segment>(kSegmentSize));
    ++stats_.directory_growths;
  }
}

Status Dynahash::Find(const std::string& key, void** data) {
  const uint32_t h = hash_(key.data(), key.size());
  for (const Node* node = Head(BucketOf(h)).get(); node != nullptr; node = node->next.get()) {
    if (node->key == key) {
      if (data != nullptr) {
        *data = node->data;
      }
      return Status::Ok();
    }
  }
  return Status::NotFound();
}

Status Dynahash::Enter(const std::string& key, void* data) {
  const uint32_t h = hash_(key.data(), key.size());
  std::unique_ptr<Node>& head = Head(BucketOf(h));
  for (const Node* node = head.get(); node != nullptr; node = node->next.get()) {
    if (node->key == key) {
      return Status::Ok();  // hsearch ENTER keeps the existing entry
    }
  }
  auto node = std::make_unique<Node>();
  node->key = key;
  node->data = data;
  node->next = std::move(head);
  head = std::move(node);
  ++count_;

  // Controlled splitting: grow whenever the fill factor is exceeded.
  if (count_ > static_cast<size_t>(ffactor_) * (max_bucket_ + 1)) {
    Split();
  }
  return Status::Ok();
}

Status Dynahash::Remove(const std::string& key) {
  const uint32_t h = hash_(key.data(), key.size());
  std::unique_ptr<Node>* link = &Head(BucketOf(h));
  while (*link != nullptr) {
    if ((*link)->key == key) {
      *link = std::move((*link)->next);
      --count_;
      return Status::Ok();
    }
    link = &(*link)->next;
  }
  return Status::NotFound();
}

void Dynahash::Split() {
  const uint32_t new_bucket = max_bucket_ + 1;
  if (new_bucket & 0x80000000u) {
    return;  // table at maximum size; chains simply grow from here
  }
  EnsureBucketExists(new_bucket);
  max_bucket_ = new_bucket;
  if (new_bucket > high_mask_) {
    low_mask_ = high_mask_;
    high_mask_ = (new_bucket << 1) - 1;
  }
  const uint32_t old_bucket = new_bucket & low_mask_;

  // Relink every node of the old bucket in place: no copies, no
  // allocation — the property that makes Larson's scheme cheap in memory.
  std::unique_ptr<Node> chain = std::move(Head(old_bucket));
  std::unique_ptr<Node>* old_tail = &Head(old_bucket);
  std::unique_ptr<Node>* new_tail = &Head(new_bucket);
  while (chain != nullptr) {
    std::unique_ptr<Node> node = std::move(chain);
    chain = std::move(node->next);
    const uint32_t h = hash_(node->key.data(), node->key.size());
    std::unique_ptr<Node>*& tail = BucketOf(h) == old_bucket ? old_tail : new_tail;
    *tail = std::move(node);
    tail = &(*tail)->next;
  }
  ++stats_.splits;
}

double Dynahash::AverageChainLength() const {
  size_t nonempty = 0;
  size_t total = 0;
  for (uint32_t b = 0; b <= max_bucket_; ++b) {
    const Node* node = (*directory_[b >> kSegmentShift])[b & (kSegmentSize - 1)].get();
    if (node == nullptr) {
      continue;
    }
    ++nonempty;
    for (; node != nullptr; node = node->next.get()) {
      ++total;
    }
  }
  return nonempty == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(nonempty);
}

}  // namespace baseline
}  // namespace hashkit
