#include "src/btree/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

#include "src/util/endian.h"
#include "src/util/math.h"

namespace hashkit {
namespace btree {

namespace {

constexpr uint32_t kBtMagic = 0x48534231;  // "HSB1"
constexpr uint32_t kBtVersion = 1;

// Descend rule: entry i's child holds keys >= key_i; keys below key_0 go
// to the leftmost child stored in the page link.
uint32_t ChildFor(const BtPageView& page, std::string_view key) {
  bool found = false;
  const uint16_t lb = page.LowerBound(key, &found);
  if (found) {
    return DecodeChild(page.Entry(lb).payload);
  }
  if (lb == 0) {
    return page.link();
  }
  return DecodeChild(page.Entry(static_cast<uint16_t>(lb - 1)).payload);
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / persistence
// ---------------------------------------------------------------------------

BTree::BTree(std::unique_ptr<PageFile> file, const BtOptions& options, bool persistent)
    : file_(std::move(file)),
      pool_(std::make_unique<BufferPool>(file_.get(), options.cachesize)),
      page_size_(options.page_size),
      persistent_(persistent) {}

BTree::~BTree() {
  if (persistent_) {
    (void)Sync();
  }
}

Result<std::unique_ptr<BTree>> BTree::Open(const std::string& path, const BtOptions& options,
                                           bool truncate) {
  if (options.page_size < 512 || options.page_size > 32768 ||
      !IsPowerOfTwo(options.page_size)) {
    return Status::InvalidArgument("btree page size must be a power of two in [512, 32768]");
  }
  HASHKIT_ASSIGN_OR_RETURN(auto file, OpenDiskPageFile(path, options.page_size, truncate));
  const bool fresh = file->PageCount() == 0;
  std::unique_ptr<BTree> tree(new BTree(std::move(file), options, /*persistent=*/true));
  if (fresh) {
    HASHKIT_RETURN_IF_ERROR(tree->InitNew());
  } else {
    HASHKIT_RETURN_IF_ERROR(tree->LoadExisting());
  }
  return tree;
}

Result<std::unique_ptr<BTree>> BTree::OpenInMemory(const BtOptions& options) {
  if (options.page_size < 512 || options.page_size > 32768 ||
      !IsPowerOfTwo(options.page_size)) {
    return Status::InvalidArgument("btree page size must be a power of two in [512, 32768]");
  }
  HASHKIT_ASSIGN_OR_RETURN(auto file, OpenTempPageFile(options.page_size));
  std::unique_ptr<BTree> tree(new BTree(std::move(file), options, /*persistent=*/false));
  HASHKIT_RETURN_IF_ERROR(tree->InitNew());
  return tree;
}

Status BTree::InitNew() {
  next_new_page_ = 1;
  HASHKIT_ASSIGN_OR_RETURN(root_, AllocPage(BtPageType::kLeaf, 0));
  height_ = 1;
  nkeys_ = 0;
  free_head_ = 0;
  if (persistent_) {
    HASHKIT_RETURN_IF_ERROR(WriteMeta());
  }
  return Status::Ok();
}

Status BTree::WriteMeta() {
  std::vector<uint8_t> buf(page_size_, 0);
  EncodeU32(buf.data() + 0, kBtMagic);
  EncodeU32(buf.data() + 4, kBtVersion);
  EncodeU32(buf.data() + 8, page_size_);
  EncodeU32(buf.data() + 12, root_);
  EncodeU32(buf.data() + 16, height_);
  EncodeU64(buf.data() + 20, nkeys_);
  EncodeU32(buf.data() + 28, next_new_page_);
  EncodeU32(buf.data() + 32, free_head_);
  return file_->WritePage(0, std::span<const uint8_t>(buf));
}

Status BTree::LoadExisting() {
  std::vector<uint8_t> buf(page_size_);
  HASHKIT_RETURN_IF_ERROR(file_->ReadPage(0, std::span<uint8_t>(buf)));
  if (DecodeU32(buf.data()) != kBtMagic) {
    return Status::Corruption("not a hashkit btree file");
  }
  if (DecodeU32(buf.data() + 4) != kBtVersion) {
    return Status::Corruption("unsupported btree version");
  }
  if (DecodeU32(buf.data() + 8) != page_size_) {
    return Status::Corruption("btree page size mismatch");
  }
  root_ = DecodeU32(buf.data() + 12);
  height_ = DecodeU32(buf.data() + 16);
  nkeys_ = DecodeU64(buf.data() + 20);
  next_new_page_ = DecodeU32(buf.data() + 28);
  free_head_ = DecodeU32(buf.data() + 32);
  if (root_ == 0 || root_ >= next_new_page_ || height_ == 0 || height_ > 64) {
    return Status::Corruption("btree meta fields out of range");
  }
  return Status::Ok();
}

Status BTree::Sync() {
  if (!persistent_) {
    return Status::Ok();
  }
  HASHKIT_RETURN_IF_ERROR(WriteMeta());
  HASHKIT_RETURN_IF_ERROR(pool_->FlushAll());
  return file_->Sync();
}

// ---------------------------------------------------------------------------
// Page allocation
// ---------------------------------------------------------------------------

Result<uint32_t> BTree::AllocPage(BtPageType type, uint16_t level) {
  uint32_t pageno = 0;
  if (free_head_ != 0) {
    pageno = free_head_;
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno));
    BtPageView view(page.data(), page_size_);
    if (view.type() != BtPageType::kFree) {
      return Status::Corruption("free-list page has wrong type");
    }
    free_head_ = view.link();
    ++stats_.pages_recycled;
  } else {
    pageno = next_new_page_++;
  }
  HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno, /*create_new=*/true));
  BtPageView::Init(page.data(), page_size_, type, level);
  page.MarkDirty();
  return pageno;
}

Status BTree::FreePage(uint32_t pageno) {
  HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno));
  BtPageView view(page.data(), page_size_);
  BtPageView::Init(page.data(), page_size_, BtPageType::kFree, 0);
  view.set_link(free_head_);
  page.MarkDirty();
  free_head_ = pageno;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Big values
// ---------------------------------------------------------------------------

Status BTree::WriteBigChain(std::string_view value, uint32_t* first_page) {
  const size_t cap = page_size_ - kBtHeaderSize;
  *first_page = 0;
  uint32_t prev = 0;
  size_t offset = 0;
  do {
    auto alloc = AllocPage(BtPageType::kOverflow, 0);
    if (!alloc.ok()) {
      if (*first_page != 0) {
        (void)FreeBigChain(*first_page);
        *first_page = 0;
      }
      return alloc.status();
    }
    const uint32_t pageno = alloc.value();
    if (*first_page == 0) {
      *first_page = pageno;
    } else {
      HASHKIT_ASSIGN_OR_RETURN(PageRef prev_page, pool_->Get(prev));
      BtPageView prev_view(prev_page.data(), page_size_);
      prev_view.set_link(pageno);
      prev_page.MarkDirty();
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno));
    BtPageView view(page.data(), page_size_);
    const size_t chunk = std::min(cap, value.size() - offset);
    std::memcpy(view.SegData(), value.data() + offset, chunk);
    view.set_seg_used(static_cast<uint16_t>(chunk));
    page.MarkDirty();
    offset += chunk;
    prev = pageno;
  } while (offset < value.size());
  return Status::Ok();
}

Status BTree::ReadBigChain(uint32_t first_page, uint32_t total_len, std::string* value) {
  value->clear();
  value->reserve(total_len);
  uint32_t pageno = first_page;
  while (value->size() < total_len) {
    if (pageno == 0) {
      return Status::Corruption("big value chain truncated");
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno));
    BtPageView view(page.data(), page_size_);
    if (view.type() != BtPageType::kOverflow) {
      return Status::Corruption("big value chain page has wrong type");
    }
    const size_t used = view.seg_used();
    if (used == 0 || value->size() + used > total_len) {
      return Status::Corruption("big value segment size invalid");
    }
    value->append(reinterpret_cast<const char*>(view.SegData()), used);
    pageno = view.link();
  }
  return Status::Ok();
}

Status BTree::FreeBigChain(uint32_t first_page) {
  std::vector<uint32_t> chain;
  uint32_t pageno = first_page;
  while (pageno != 0) {
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno));
    BtPageView view(page.data(), page_size_);
    if (view.type() != BtPageType::kOverflow) {
      return Status::Corruption("big value chain page has wrong type");
    }
    chain.push_back(pageno);
    pageno = view.link();
    if (chain.size() > (1u << 24)) {
      return Status::Corruption("big value chain cycle");
    }
  }
  for (const uint32_t p : chain) {
    HASHKIT_RETURN_IF_ERROR(FreePage(p));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

Status BTree::SearchPath(std::string_view key, std::vector<uint32_t>* path) {
  path->clear();
  uint32_t pageno = root_;
  for (uint32_t level = 0; level < height_; ++level) {
    path->push_back(pageno);
    if (level + 1 == height_) {
      break;  // reached the leaf
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno));
    BtPageView view(page.data(), page_size_);
    if (view.type() != BtPageType::kInternal) {
      return Status::Corruption("expected internal page on search path");
    }
    pageno = ChildFor(view, key);
    if (pageno == 0) {
      return Status::Corruption("null child pointer");
    }
  }
  return Status::Ok();
}

Status BTree::Get(std::string_view key, std::string* value) {
  std::vector<uint32_t> path;
  HASHKIT_RETURN_IF_ERROR(SearchPath(key, &path));
  HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(path.back()));
  BtPageView view(page.data(), page_size_);
  bool found = false;
  const uint16_t index = view.LowerBound(key, &found);
  if (!found) {
    return Status::NotFound();
  }
  if (value != nullptr) {
    const BtEntry entry = view.Entry(index);
    if (entry.big) {
      HASHKIT_RETURN_IF_ERROR(ReadBigChain(entry.chain_page, entry.total_len, value));
    } else {
      value->assign(entry.payload);
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status BTree::SplitPage(uint32_t pageno, std::string* separator, uint32_t* right_page) {
  HASHKIT_ASSIGN_OR_RETURN(PageRef left_ref, pool_->Get(pageno));
  BtPageView left(left_ref.data(), page_size_);
  const uint16_t n = left.nentries();
  if (n < 2) {
    return Status::Corruption("cannot split a page with fewer than two entries");
  }
  const bool is_leaf = left.type() == BtPageType::kLeaf;

  // Split by bytes: find the first index where the left half reaches half
  // of the used bytes, clamped so both sides stay nonempty.
  const size_t total_bytes = left.BytesInRange(0, n);
  uint16_t split = 1;
  size_t acc = 0;
  for (uint16_t i = 0; i < n - 1; ++i) {
    acc += left.BytesInRange(i, static_cast<uint16_t>(i + 1));
    if (acc >= total_bytes / 2) {
      split = static_cast<uint16_t>(i + 1);
      break;
    }
    split = static_cast<uint16_t>(i + 1);
  }

  HASHKIT_ASSIGN_OR_RETURN(*right_page, AllocPage(left.type(), left.level()));
  HASHKIT_ASSIGN_OR_RETURN(PageRef right_ref, pool_->Get(*right_page));
  BtPageView right(right_ref.data(), page_size_);

  if (is_leaf) {
    // Right leaf gets entries [split, n); separator is its first key.
    for (uint16_t i = split; i < n; ++i) {
      const BtEntry entry = left.Entry(i);
      const uint16_t at = static_cast<uint16_t>(i - split);
      if (entry.big) {
        right.InsertBigStubAt(at, entry.key, entry.chain_page, entry.total_len);
      } else {
        right.InsertAt(at, entry.key, entry.payload);
      }
    }
    separator->assign(right.Entry(0).key);
    right.set_link(left.link());
    left.set_link(*right_page);
    ++stats_.leaf_splits;
  } else {
    // Internal: the split entry's key moves UP; its child becomes the
    // right page's leftmost child.
    const uint16_t mid = split;
    const BtEntry mid_entry = left.Entry(mid);
    separator->assign(mid_entry.key);
    right.set_link(DecodeChild(mid_entry.payload));
    for (uint16_t i = static_cast<uint16_t>(mid + 1); i < n; ++i) {
      const BtEntry entry = left.Entry(i);
      right.InsertAt(static_cast<uint16_t>(i - mid - 1), entry.key, entry.payload);
    }
    ++stats_.internal_splits;
  }
  // Truncate the left page (remove from the end so nothing shifts).
  for (uint16_t i = n; i-- > split;) {
    left.RemoveAt(i);
  }
  left_ref.MarkDirty();
  right_ref.MarkDirty();
  return Status::Ok();
}

Status BTree::InsertIntoParents(std::vector<uint32_t>& path, size_t child_pos,
                                std::string separator, uint32_t right_page) {
  // child_pos is the index in `path` of the page that just split.
  while (true) {
    if (child_pos == 0) {
      // The root split: grow the tree by one level.
      HASHKIT_ASSIGN_OR_RETURN(const uint32_t new_root,
                               AllocPage(BtPageType::kInternal,
                                         static_cast<uint16_t>(height_)));
      HASHKIT_ASSIGN_OR_RETURN(PageRef root_ref, pool_->Get(new_root));
      BtPageView view(root_ref.data(), page_size_);
      view.set_link(path[0]);  // old root becomes the leftmost child
      uint8_t child_bytes[4];
      EncodeChildInto(right_page, child_bytes);
      view.InsertAt(0, separator,
                    std::string_view(reinterpret_cast<const char*>(child_bytes), 4));
      root_ref.MarkDirty();
      root_ = new_root;
      ++height_;
      ++stats_.root_splits;
      return Status::Ok();
    }

    const uint32_t parent = path[child_pos - 1];
    HASHKIT_ASSIGN_OR_RETURN(PageRef parent_ref, pool_->Get(parent));
    BtPageView view(parent_ref.data(), page_size_);
    bool found = false;
    const uint16_t pos = view.LowerBound(separator, &found);
    if (found) {
      return Status::Corruption("separator already present in parent");
    }
    if (view.FitsAfterCompact(separator.size(), 4)) {
      uint8_t child_bytes[4];
      EncodeChildInto(right_page, child_bytes);
      view.InsertAt(pos, separator,
                    std::string_view(reinterpret_cast<const char*>(child_bytes), 4));
      parent_ref.MarkDirty();
      return Status::Ok();
    }
    parent_ref.Release();

    // The parent is full: split it, insert into whichever half now covers
    // the separator, and propagate the parent's own separator upward.
    std::string parent_sep;
    uint32_t parent_right = 0;
    HASHKIT_RETURN_IF_ERROR(SplitPage(parent, &parent_sep, &parent_right));
    const uint32_t target = separator < parent_sep ? parent : parent_right;
    {
      HASHKIT_ASSIGN_OR_RETURN(PageRef target_ref, pool_->Get(target));
      BtPageView target_view(target_ref.data(), page_size_);
      bool f2 = false;
      const uint16_t pos2 = target_view.LowerBound(separator, &f2);
      if (!target_view.FitsAfterCompact(separator.size(), 4)) {
        return Status::Corruption("separator does not fit after split");
      }
      uint8_t child_bytes[4];
      EncodeChildInto(right_page, child_bytes);
      target_view.InsertAt(pos2, separator,
                           std::string_view(reinterpret_cast<const char*>(child_bytes), 4));
      target_ref.MarkDirty();
    }
    separator = std::move(parent_sep);
    right_page = parent_right;
    --child_pos;
  }
}

Status BTree::Put(std::string_view key, std::string_view value, bool overwrite) {
  if (key.size() > MaxKeyLen()) {
    return Status::InvalidArgument("key exceeds page_size/8");
  }

  std::vector<uint32_t> path;
  HASHKIT_RETURN_IF_ERROR(SearchPath(key, &path));

  // Duplicate handling first (so a replace frees the old big chain).
  {
    HASHKIT_ASSIGN_OR_RETURN(PageRef leaf_ref, pool_->Get(path.back()));
    BtPageView leaf(leaf_ref.data(), page_size_);
    bool found = false;
    const uint16_t index = leaf.LowerBound(key, &found);
    if (found) {
      if (!overwrite) {
        return Status::Exists();
      }
      const BtEntry entry = leaf.Entry(index);
      const uint32_t chain = entry.big ? entry.chain_page : 0;
      leaf.RemoveAt(index);
      leaf_ref.MarkDirty();
      leaf_ref.Release();
      if (chain != 0) {
        HASHKIT_RETURN_IF_ERROR(FreeBigChain(chain));
      }
      --nkeys_;
    }
  }

  const bool big = value.size() > BigValueThreshold();
  uint32_t chain = 0;
  if (big) {
    HASHKIT_RETURN_IF_ERROR(WriteBigChain(value, &chain));
    ++stats_.big_values;
  }
  const size_t payload_len = big ? kBigValueStubSize : value.size();

  for (int attempt = 0; attempt < 64; ++attempt) {
    HASHKIT_ASSIGN_OR_RETURN(PageRef leaf_ref, pool_->Get(path.back()));
    BtPageView leaf(leaf_ref.data(), page_size_);
    bool found = false;
    const uint16_t index = leaf.LowerBound(key, &found);
    if (leaf.FitsAfterCompact(key.size(), payload_len)) {
      if (big) {
        leaf.InsertBigStubAt(index, key, chain, static_cast<uint32_t>(value.size()));
      } else {
        leaf.InsertAt(index, key, value);
      }
      leaf_ref.MarkDirty();
      ++nkeys_;
      return Status::Ok();
    }
    leaf_ref.Release();

    // Full leaf: split and re-descend (the path may deepen on root split).
    std::string separator;
    uint32_t right_page = 0;
    HASHKIT_RETURN_IF_ERROR(SplitPage(path.back(), &separator, &right_page));
    HASHKIT_RETURN_IF_ERROR(
        InsertIntoParents(path, path.size() - 1, std::move(separator), right_page));
    HASHKIT_RETURN_IF_ERROR(SearchPath(key, &path));
  }
  return Status::Corruption("insert did not converge after splits");
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

Status BTree::Delete(std::string_view key) {
  std::vector<uint32_t> path;
  HASHKIT_RETURN_IF_ERROR(SearchPath(key, &path));
  uint32_t chain = 0;
  {
    HASHKIT_ASSIGN_OR_RETURN(PageRef leaf_ref, pool_->Get(path.back()));
    BtPageView leaf(leaf_ref.data(), page_size_);
    bool found = false;
    const uint16_t index = leaf.LowerBound(key, &found);
    if (!found) {
      return Status::NotFound();
    }
    const BtEntry entry = leaf.Entry(index);
    if (entry.big) {
      chain = entry.chain_page;
    }
    leaf.RemoveAt(index);
    leaf_ref.MarkDirty();
  }
  if (chain != 0) {
    HASHKIT_RETURN_IF_ERROR(FreeBigChain(chain));
  }
  --nkeys_;
  // Underfull/empty leaves are not merged (1.x-era behaviour); their space
  // is reused by future inserts into the same key range.
  return Status::Ok();
}

Status BTree::LastKey(std::string* key) {
  // Descend the rightmost spine; skip trailing empty leaves via the chain
  // being absent (rightmost leaf may be empty after deletions — walk left
  // is not possible, so scan back using the rightmost nonempty entry on
  // the way down, falling back to a full cursor scan only when needed).
  uint32_t pageno = root_;
  for (uint32_t level = 0; level + 1 < height_; ++level) {
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno));
    BtPageView view(page.data(), page_size_);
    const uint16_t n = view.nentries();
    pageno = n == 0 ? view.link()
                    : DecodeChild(view.Entry(static_cast<uint16_t>(n - 1)).payload);
  }
  {
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(pageno));
    BtPageView view(page.data(), page_size_);
    if (view.nentries() > 0) {
      key->assign(view.Entry(static_cast<uint16_t>(view.nentries() - 1)).key);
      return Status::Ok();
    }
  }
  if (nkeys_ == 0) {
    return Status::NotFound("tree is empty");
  }
  // Rightmost leaf empty (deletions): full scan fallback.
  BtCursor cursor(this);
  std::string k;
  Status st = cursor.Next(&k, nullptr);
  bool any = false;
  while (st.ok()) {
    key->assign(k);
    any = true;
    st = cursor.Next(&k, nullptr);
  }
  return any ? Status::Ok() : Status::NotFound("tree is empty");
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

Status BtCursor::SeekFirst() {
  uint32_t pageno = tree_->root_;
  for (uint32_t level = 0; level + 1 < tree_->height_; ++level) {
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, tree_->pool_->Get(pageno));
    BtPageView view(page.data(), tree_->page_size_);
    pageno = view.link();  // leftmost child
    if (pageno == 0) {
      return Status::Corruption("null leftmost child");
    }
  }
  page_ = pageno;
  index_ = 0;
  return Status::Ok();
}

Status BtCursor::Seek(std::string_view key) {
  std::vector<uint32_t> path;
  HASHKIT_RETURN_IF_ERROR(tree_->SearchPath(key, &path));
  page_ = path.back();
  HASHKIT_ASSIGN_OR_RETURN(PageRef page, tree_->pool_->Get(page_));
  BtPageView view(page.data(), tree_->page_size_);
  bool found = false;
  index_ = view.LowerBound(key, &found);
  return Status::Ok();
}

Status BtCursor::Next(std::string* key, std::string* value) {
  if (page_ == 0) {
    HASHKIT_RETURN_IF_ERROR(SeekFirst());
  }
  for (;;) {
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, tree_->pool_->Get(page_));
    BtPageView view(page.data(), tree_->page_size_);
    if (index_ < view.nentries()) {
      const BtEntry entry = view.Entry(index_);
      if (key != nullptr) {
        key->assign(entry.key);
      }
      if (value != nullptr) {
        if (entry.big) {
          HASHKIT_RETURN_IF_ERROR(
              tree_->ReadBigChain(entry.chain_page, entry.total_len, value));
        } else {
          value->assign(entry.payload);
        }
      }
      ++index_;
      return Status::Ok();
    }
    const uint32_t next = view.link();
    if (next == 0) {
      return Status::NotFound("end of tree");
    }
    page_ = next;
    index_ = 0;
  }
}

// ---------------------------------------------------------------------------
// Integrity
// ---------------------------------------------------------------------------

Status BTree::CheckIntegrity() {
  uint64_t leaf_keys = 0;
  std::vector<uint32_t> leaves_in_order;
  std::set<uint32_t> seen_pages;

  // Recursive range-checked walk.
  struct Frame {
    uint32_t pageno;
    uint32_t expected_level;
    std::string lo;  // inclusive bound ("" = unbounded)
    bool has_lo;
    std::string hi;  // exclusive bound
    bool has_hi;
  };
  std::vector<Frame> stack;
  stack.push_back({root_, height_ - 1, "", false, "", false});

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (!seen_pages.insert(frame.pageno).second) {
      return Status::Corruption("page referenced twice in the tree");
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(frame.pageno));
    BtPageView view(page.data(), page_size_);
    if (!view.Validate()) {
      return Status::Corruption("page failed validation");
    }
    if (view.level() != frame.expected_level) {
      return Status::Corruption("page level inconsistent with depth");
    }
    const uint16_t n = view.nentries();
    for (uint16_t i = 0; i < n; ++i) {
      const BtEntry entry = view.Entry(i);
      if (frame.has_lo && entry.key < frame.lo) {
        return Status::Corruption("key below subtree lower bound");
      }
      if (frame.has_hi && !(entry.key < frame.hi)) {
        return Status::Corruption("key at or above subtree upper bound");
      }
    }
    if (frame.expected_level == 0) {
      if (view.type() != BtPageType::kLeaf) {
        return Status::Corruption("leaf level page is not a leaf");
      }
      leaf_keys += n;
      leaves_in_order.push_back(frame.pageno);
      // Verify big chains.
      for (uint16_t i = 0; i < n; ++i) {
        const BtEntry entry = view.Entry(i);
        if (entry.big) {
          std::string value;
          HASHKIT_RETURN_IF_ERROR(ReadBigChain(entry.chain_page, entry.total_len, &value));
          if (value.size() != entry.total_len) {
            return Status::Corruption("big value length mismatch");
          }
        }
      }
      continue;
    }
    if (view.type() != BtPageType::kInternal) {
      return Status::Corruption("interior level page is not internal");
    }
    if (view.link() == 0) {
      return Status::Corruption("internal page missing leftmost child");
    }
    // Push children with their bounds; pushing rightmost first keeps the
    // leaves_in_order list left-to-right (stack pops reversed).
    for (uint16_t i = n; i-- > 0;) {
      const BtEntry entry = view.Entry(i);
      Frame child;
      child.pageno = DecodeChild(entry.payload);
      child.expected_level = frame.expected_level - 1;
      child.lo.assign(entry.key);
      child.has_lo = true;
      if (i + 1 < n) {
        child.hi.assign(view.Entry(static_cast<uint16_t>(i + 1)).key);
        child.has_hi = true;
      } else {
        child.hi = frame.hi;
        child.has_hi = frame.has_hi;
      }
      stack.push_back(std::move(child));
    }
    Frame leftmost;
    leftmost.pageno = view.link();
    leftmost.expected_level = frame.expected_level - 1;
    leftmost.lo = frame.lo;
    leftmost.has_lo = frame.has_lo;
    if (n > 0) {
      leftmost.hi.assign(view.Entry(0).key);
      leftmost.has_hi = true;
    } else {
      leftmost.hi = frame.hi;
      leftmost.has_hi = frame.has_hi;
    }
    stack.push_back(std::move(leftmost));
  }

  if (leaf_keys != nkeys_) {
    return Status::Corruption("leaf key count does not match meta");
  }

  // The leaf sibling chain must visit exactly the in-order leaves (the
  // DFS pushes rightmost children first, so pops — and therefore
  // leaves_in_order — run left to right already).
  uint32_t chain_page = leaves_in_order.empty() ? 0 : leaves_in_order.front();
  for (const uint32_t expected : leaves_in_order) {
    if (chain_page != expected) {
      return Status::Corruption("leaf chain order mismatch");
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(chain_page));
    BtPageView view(page.data(), page_size_);
    chain_page = view.link();
  }
  if (chain_page != 0) {
    return Status::Corruption("leaf chain extends past the last leaf");
  }

  // Free list sanity.
  uint32_t free_page = free_head_;
  size_t guard = 0;
  while (free_page != 0) {
    if (seen_pages.count(free_page)) {
      return Status::Corruption("free page also referenced by the tree");
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(free_page));
    BtPageView view(page.data(), page_size_);
    if (view.type() != BtPageType::kFree) {
      return Status::Corruption("free-list page has wrong type");
    }
    free_page = view.link();
    if (++guard > (1u << 24)) {
      return Status::Corruption("free list cycle");
    }
  }
  return Status::Ok();
}

}  // namespace btree
}  // namespace hashkit
