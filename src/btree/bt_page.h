// hashkit btree: slotted-page layout for the B+-tree access method.
//
// The paper's conclusion places the hash package inside a generic database
// access library that "will include a btree access method as well as fixed
// and variable length record access methods".  src/btree implements that
// companion access method on the same pagefile/buffer-pool substrate.
//
// Unlike the hash package's pages (whose pair extents are implied by
// physical order), btree pages insert in *sorted* positions, so each slot
// carries explicit offsets and lengths:
//
//   +0   u16 nentries
//   +2   u16 data_begin   (low end of the pair-byte heap, grows down)
//   +4   u16 level        (0 = leaf)
//   +6   u16 type         (BtPageType)
//   +8   u32 link         (leaf: next sibling; internal: leftmost child;
//                          overflow: next chain page; free: next free page)
//   +12  u16 garbage      (bytes freed by removals, reclaimable by Compact)
//   +14  u16 seg_used     (overflow pages: payload bytes)
//   +16  slots: {u16 key_off, u16 key_len, u16 val_off, u16 val_len} ...
//   ...  pair bytes (heap, grows down from the page end)
//
// Leaf payloads are value bytes, or — when kBigValueFlag is set on val_len
// — an 8-byte stub {u32 first_overflow_page, u32 total_len}.  Internal
// payloads are always a 4-byte child page number; entry i's child holds
// keys >= key_i, and the header link holds the leftmost child.

#ifndef HASHKIT_SRC_BTREE_BT_PAGE_H_
#define HASHKIT_SRC_BTREE_BT_PAGE_H_

#include <cstdint>
#include <string_view>

namespace hashkit {
namespace btree {

enum class BtPageType : uint16_t {
  kLeaf = 1,
  kInternal = 2,
  kOverflow = 3,  // big-value chain segment
  kFree = 4,      // on the free list
};

inline constexpr size_t kBtHeaderSize = 16;
inline constexpr size_t kBtSlotSize = 8;
inline constexpr uint16_t kBigValueFlag = 0x8000;
inline constexpr size_t kBigValueStubSize = 8;  // u32 first page + u32 length

struct BtEntry {
  std::string_view key;
  std::string_view payload;  // leaf value bytes, internal child bytes, or stub
  bool big = false;
  uint32_t chain_page = 0;  // big values: first overflow page
  uint32_t total_len = 0;   // big values: full value length
};

class BtPageView {
 public:
  BtPageView(uint8_t* buf, size_t page_size) : buf_(buf), size_(page_size) {}

  static void Init(uint8_t* buf, size_t page_size, BtPageType type, uint16_t level);

  uint16_t nentries() const;
  uint16_t level() const;
  BtPageType type() const;
  void set_type(BtPageType type);
  uint32_t link() const;
  void set_link(uint32_t link);
  uint16_t garbage() const;
  uint16_t seg_used() const;
  void set_seg_used(uint16_t used);

  // Contiguous free bytes (slot included) available right now.
  size_t FreeSpace() const;
  // Free bytes after compaction.
  size_t FreeSpaceAfterCompact() const;
  bool Fits(size_t key_len, size_t payload_len) const {
    return kBtSlotSize + key_len + payload_len <= FreeSpace();
  }
  bool FitsAfterCompact(size_t key_len, size_t payload_len) const {
    return kBtSlotSize + key_len + payload_len <= FreeSpaceAfterCompact();
  }

  BtEntry Entry(uint16_t index) const;

  // Binary search: smallest index whose key is >= `key`; *found says if it
  // is an exact match.  Returns nentries() when all keys are smaller.
  uint16_t LowerBound(std::string_view key, bool* found) const;

  // Inserts at `index`, shifting later slots.  Caller checked Fits (the
  // page is compacted here if needed).
  void InsertAt(uint16_t index, std::string_view key, std::string_view payload);
  void InsertBigStubAt(uint16_t index, std::string_view key, uint32_t chain_page,
                       uint32_t total_len);

  // Removes entry `index` (slot shift; bytes become garbage).
  void RemoveAt(uint16_t index);

  // Rewrites the pair heap to reclaim garbage.
  void Compact();

  // Payload bytes used by entries [from, nentries), for split sizing.
  size_t BytesInRange(uint16_t from, uint16_t to) const;

  // Overflow-segment payload.
  uint8_t* SegData() { return buf_ + kBtHeaderSize; }
  const uint8_t* SegData() const { return buf_ + kBtHeaderSize; }
  size_t SegCapacity() const { return size_ - kBtHeaderSize; }

  // Structural self-check (offsets in range, keys strictly ascending).
  bool Validate() const;

  size_t page_size() const { return size_; }

 private:
  uint16_t SlotField(uint16_t index, size_t field) const;
  void SetSlotField(uint16_t index, size_t field, uint16_t value);
  void SetNEntries(uint16_t n);
  void SetDataBegin(uint16_t v);
  void SetGarbage(uint16_t v);
  uint16_t EffectiveEnd() const {
    return static_cast<uint16_t>(size_ == 32768 ? 32767 : size_);
  }
  // Reserves len bytes in the heap (compacting if necessary); returns the
  // offset.  Caller guaranteed FitsAfterCompact.
  uint16_t ReserveBytes(size_t len);

  uint8_t* buf_;
  size_t size_;
};

// Child page number helpers for internal-node payloads.
uint32_t DecodeChild(std::string_view payload);
void EncodeChildInto(uint32_t child, uint8_t out[4]);

}  // namespace btree
}  // namespace hashkit

#endif  // HASHKIT_SRC_BTREE_BT_PAGE_H_
