#include "src/btree/bt_page.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "src/util/endian.h"

namespace hashkit {
namespace btree {

namespace {
constexpr size_t kNEntriesOff = 0;
constexpr size_t kDataBeginOff = 2;
constexpr size_t kLevelOff = 4;
constexpr size_t kTypeOff = 6;
constexpr size_t kLinkOff = 8;
constexpr size_t kGarbageOff = 12;
constexpr size_t kSegUsedOff = 14;

// Slot field indices.
constexpr size_t kKeyOff = 0;
constexpr size_t kKeyLen = 1;
constexpr size_t kValOff = 2;
constexpr size_t kValLen = 3;
}  // namespace

void BtPageView::Init(uint8_t* buf, size_t page_size, BtPageType type, uint16_t level) {
  std::memset(buf, 0, page_size);
  EncodeU16(buf + kDataBeginOff,
            static_cast<uint16_t>(page_size == 32768 ? 32767 : page_size));
  EncodeU16(buf + kLevelOff, level);
  EncodeU16(buf + kTypeOff, static_cast<uint16_t>(type));
}

uint16_t BtPageView::nentries() const { return DecodeU16(buf_ + kNEntriesOff); }
void BtPageView::SetNEntries(uint16_t n) { EncodeU16(buf_ + kNEntriesOff, n); }
uint16_t BtPageView::level() const { return DecodeU16(buf_ + kLevelOff); }
BtPageType BtPageView::type() const {
  return static_cast<BtPageType>(DecodeU16(buf_ + kTypeOff));
}
void BtPageView::set_type(BtPageType type) {
  EncodeU16(buf_ + kTypeOff, static_cast<uint16_t>(type));
}
uint32_t BtPageView::link() const { return DecodeU32(buf_ + kLinkOff); }
void BtPageView::set_link(uint32_t link) { EncodeU32(buf_ + kLinkOff, link); }
uint16_t BtPageView::garbage() const { return DecodeU16(buf_ + kGarbageOff); }
void BtPageView::SetGarbage(uint16_t v) { EncodeU16(buf_ + kGarbageOff, v); }
uint16_t BtPageView::seg_used() const { return DecodeU16(buf_ + kSegUsedOff); }
void BtPageView::set_seg_used(uint16_t used) { EncodeU16(buf_ + kSegUsedOff, used); }

void BtPageView::SetDataBegin(uint16_t v) { EncodeU16(buf_ + kDataBeginOff, v); }

uint16_t BtPageView::SlotField(uint16_t index, size_t field) const {
  return DecodeU16(buf_ + kBtHeaderSize + index * kBtSlotSize + field * 2);
}
void BtPageView::SetSlotField(uint16_t index, size_t field, uint16_t value) {
  EncodeU16(buf_ + kBtHeaderSize + index * kBtSlotSize + field * 2, value);
}

size_t BtPageView::FreeSpace() const {
  const size_t slots_end = kBtHeaderSize + nentries() * kBtSlotSize;
  const size_t begin = DecodeU16(buf_ + kDataBeginOff);
  assert(begin >= slots_end);
  return begin - slots_end;
}

size_t BtPageView::FreeSpaceAfterCompact() const { return FreeSpace() + garbage(); }

BtEntry BtPageView::Entry(uint16_t index) const {
  assert(index < nentries());
  BtEntry entry;
  const auto* chars = reinterpret_cast<const char*>(buf_);
  entry.key = std::string_view(chars + SlotField(index, kKeyOff), SlotField(index, kKeyLen));
  const uint16_t raw_val_len = SlotField(index, kValLen);
  const uint16_t val_off = SlotField(index, kValOff);
  const auto val_len = static_cast<uint16_t>(raw_val_len & ~kBigValueFlag);
  entry.payload = std::string_view(chars + val_off, val_len);
  if ((raw_val_len & kBigValueFlag) != 0) {
    entry.big = true;
    entry.chain_page = DecodeU32(buf_ + val_off);
    entry.total_len = DecodeU32(buf_ + val_off + 4);
  }
  return entry;
}

uint16_t BtPageView::LowerBound(std::string_view key, bool* found) const {
  uint16_t lo = 0;
  uint16_t hi = nentries();
  *found = false;
  while (lo < hi) {
    const uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    const std::string_view mid_key = Entry(mid).key;
    const int cmp = mid_key.compare(key);
    if (cmp < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      if (cmp == 0) {
        *found = true;
      }
      hi = mid;
    }
  }
  return lo;
}

uint16_t BtPageView::ReserveBytes(size_t len) {
  // Room is needed for the bytes plus the slot about to be added.
  if (kBtHeaderSize + (nentries() + 1u) * kBtSlotSize + len >
      static_cast<size_t>(DecodeU16(buf_ + kDataBeginOff))) {
    Compact();
  }
  const uint16_t begin = DecodeU16(buf_ + kDataBeginOff);
  assert(kBtHeaderSize + (nentries() + 1u) * kBtSlotSize + len <= begin);
  const auto offset = static_cast<uint16_t>(begin - len);
  SetDataBegin(offset);
  return offset;
}

void BtPageView::InsertAt(uint16_t index, std::string_view key, std::string_view payload) {
  assert(FitsAfterCompact(key.size(), payload.size()));
  const uint16_t n = nentries();
  assert(index <= n);
  // ReserveBytes may compact, so do it before touching slots; compaction
  // preserves slot order.
  const uint16_t key_off = ReserveBytes(key.size() + payload.size());
  const auto val_off = static_cast<uint16_t>(key_off + key.size());
  std::memcpy(buf_ + key_off, key.data(), key.size());
  std::memcpy(buf_ + val_off, payload.data(), payload.size());
  // Shift later slots right by one.
  std::memmove(buf_ + kBtHeaderSize + (index + 1) * kBtSlotSize,
               buf_ + kBtHeaderSize + index * kBtSlotSize,
               static_cast<size_t>(n - index) * kBtSlotSize);
  SetSlotField(index, kKeyOff, key_off);
  SetSlotField(index, kKeyLen, static_cast<uint16_t>(key.size()));
  SetSlotField(index, kValOff, val_off);
  SetSlotField(index, kValLen, static_cast<uint16_t>(payload.size()));
  SetNEntries(static_cast<uint16_t>(n + 1));
}

void BtPageView::InsertBigStubAt(uint16_t index, std::string_view key, uint32_t chain_page,
                                 uint32_t total_len) {
  uint8_t stub[kBigValueStubSize];
  EncodeU32(stub, chain_page);
  EncodeU32(stub + 4, total_len);
  InsertAt(index, key,
           std::string_view(reinterpret_cast<const char*>(stub), kBigValueStubSize));
  SetSlotField(index, kValLen, static_cast<uint16_t>(kBigValueStubSize | kBigValueFlag));
}

void BtPageView::RemoveAt(uint16_t index) {
  const uint16_t n = nentries();
  assert(index < n);
  const auto freed = static_cast<uint16_t>(
      SlotField(index, kKeyLen) + (SlotField(index, kValLen) & ~kBigValueFlag));
  std::memmove(buf_ + kBtHeaderSize + index * kBtSlotSize,
               buf_ + kBtHeaderSize + (index + 1) * kBtSlotSize,
               static_cast<size_t>(n - index - 1) * kBtSlotSize);
  SetNEntries(static_cast<uint16_t>(n - 1));
  SetGarbage(static_cast<uint16_t>(garbage() + freed));
}

void BtPageView::Compact() {
  const uint16_t n = nentries();
  std::vector<uint8_t> scratch(size_);
  uint16_t cursor = EffectiveEnd();
  // Copy every entry's bytes to the top of the scratch heap, in slot order.
  struct NewSlot {
    uint16_t key_off, key_len, val_off, val_len;
  };
  std::vector<NewSlot> slots(n);
  for (uint16_t i = 0; i < n; ++i) {
    const uint16_t key_off = SlotField(i, kKeyOff);
    const uint16_t key_len = SlotField(i, kKeyLen);
    const uint16_t val_off = SlotField(i, kValOff);
    const uint16_t raw_val_len = SlotField(i, kValLen);
    const auto val_len = static_cast<uint16_t>(raw_val_len & ~kBigValueFlag);
    cursor = static_cast<uint16_t>(cursor - key_len - val_len);
    std::memcpy(scratch.data() + cursor, buf_ + key_off, key_len);
    std::memcpy(scratch.data() + cursor + key_len, buf_ + val_off, val_len);
    slots[i] = {cursor, key_len, static_cast<uint16_t>(cursor + key_len), raw_val_len};
  }
  // Install the rewritten heap and slots.
  std::memcpy(buf_ + cursor, scratch.data() + cursor, EffectiveEnd() - cursor);
  for (uint16_t i = 0; i < n; ++i) {
    SetSlotField(i, kKeyOff, slots[i].key_off);
    SetSlotField(i, kKeyLen, slots[i].key_len);
    SetSlotField(i, kValOff, slots[i].val_off);
    SetSlotField(i, kValLen, slots[i].val_len);
  }
  SetDataBegin(cursor);
  SetGarbage(0);
}

size_t BtPageView::BytesInRange(uint16_t from, uint16_t to) const {
  size_t total = 0;
  for (uint16_t i = from; i < to; ++i) {
    total += kBtSlotSize + SlotField(i, kKeyLen) + (SlotField(i, kValLen) & ~kBigValueFlag);
  }
  return total;
}

bool BtPageView::Validate() const {
  const uint16_t n = nentries();
  const size_t slots_end = kBtHeaderSize + n * kBtSlotSize;
  const uint16_t begin = DecodeU16(buf_ + kDataBeginOff);
  if (slots_end > begin || begin > EffectiveEnd()) {
    return false;
  }
  std::string_view prev_key;
  for (uint16_t i = 0; i < n; ++i) {
    const uint16_t key_off = SlotField(i, kKeyOff);
    const uint16_t key_len = SlotField(i, kKeyLen);
    const uint16_t val_off = SlotField(i, kValOff);
    const auto val_len = static_cast<uint16_t>(SlotField(i, kValLen) & ~kBigValueFlag);
    if (key_off < begin || key_off + key_len > EffectiveEnd()) {
      return false;
    }
    if (val_off < begin || val_off + val_len > EffectiveEnd()) {
      return false;
    }
    const BtEntry entry = Entry(i);
    if (i > 0 && !(prev_key < entry.key)) {
      return false;  // keys must be strictly ascending
    }
    prev_key = entry.key;
    if (type() == BtPageType::kInternal && val_len != 4) {
      return false;
    }
  }
  return true;
}

uint32_t DecodeChild(std::string_view payload) {
  assert(payload.size() == 4);
  return DecodeU32(reinterpret_cast<const uint8_t*>(payload.data()));
}

void EncodeChildInto(uint32_t child, uint8_t out[4]) { EncodeU32(out, child); }

}  // namespace btree
}  // namespace hashkit
