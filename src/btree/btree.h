// hashkit btree: the B+-tree access method — the companion the paper
// promises ("It will include a btree access method ... All of the access
// methods are based on a key/data pair interface and appear identical to
// the application layer").
//
// A standard B+-tree over the same pagefile/buffer-pool substrate as the
// hash package: sorted slotted pages, leaf sibling links for range scans,
// big values on overflow-page chains, free-list page recycling, and the
// same Status-based key/data interface.  Deleted pages are recycled but
// underfull pages are not merged (as in the 1.x-era BSD btree); keys are
// compared bytewise.
//
// Limits: key length <= page_size/8 (guarantees internal fanout); values
// of any length (big values chain through overflow pages).

#ifndef HASHKIT_SRC_BTREE_BTREE_H_
#define HASHKIT_SRC_BTREE_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/btree/bt_page.h"
#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/page_file.h"
#include "src/util/status.h"

namespace hashkit {
namespace btree {

struct BtOptions {
  uint32_t page_size = 4096;  // power of two in [512, 32768]
  uint64_t cachesize = 256 * 1024;
};

struct BtStats {
  uint64_t leaf_splits = 0;
  uint64_t internal_splits = 0;
  uint64_t root_splits = 0;
  uint64_t pages_recycled = 0;
  uint64_t big_values = 0;
};

class BTree;

// Ordered iteration.  The tree must not be mutated while a cursor is live.
class BtCursor {
 public:
  // Positions at the smallest key.
  Status SeekFirst();
  // Positions at the first key >= `key`.
  Status Seek(std::string_view key);
  // Returns the pair at the current position and advances; kNotFound past
  // the end.
  Status Next(std::string* key, std::string* value);

 private:
  friend class BTree;
  explicit BtCursor(BTree* tree) : tree_(tree) {}

  BTree* tree_;
  uint32_t page_ = 0;  // 0 = unpositioned
  uint16_t index_ = 0;
};

class BTree {
 public:
  static Result<std::unique_ptr<BTree>> Open(const std::string& path, const BtOptions& options,
                                             bool truncate = false);
  static Result<std::unique_ptr<BTree>> OpenInMemory(const BtOptions& options);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  Status Put(std::string_view key, std::string_view value, bool overwrite = true);
  Status Get(std::string_view key, std::string* value);
  Status Delete(std::string_view key);
  Status Sync();

  // Largest key in the tree; kNotFound when empty.  (Used by the recno
  // access method to recover its append position.)
  Status LastKey(std::string* key);

  BtCursor NewCursor() { return BtCursor(this); }

  uint64_t size() const { return nkeys_; }
  uint32_t height() const { return height_; }
  const BtStats& stats() const { return stats_; }
  PageFileStats file_stats() const { return file_->stats(); }

  // Full structural validation: per-page invariants, key ordering across
  // the tree, separator/bound consistency, leaf-chain agreement, counts.
  Status CheckIntegrity();

 private:
  friend class BtCursor;

  BTree(std::unique_ptr<PageFile> file, const BtOptions& options, bool persistent);

  Status InitNew();
  Status LoadExisting();
  Status WriteMeta();

  Result<uint32_t> AllocPage(BtPageType type, uint16_t level);
  Status FreePage(uint32_t pageno);

  // Root-to-leaf page numbers for `key`.
  Status SearchPath(std::string_view key, std::vector<uint32_t>* path);

  // Splits `pageno` (any level); returns the separator key and the new
  // right page so the caller can insert it one level up.
  Status SplitPage(uint32_t pageno, std::string* separator, uint32_t* right_page);

  // Inserts (separator, child) into the parents along `path` starting at
  // `level_index`, splitting upward as needed.
  Status InsertIntoParents(std::vector<uint32_t>& path, size_t child_pos,
                           std::string separator, uint32_t right_page);

  Status WriteBigChain(std::string_view value, uint32_t* first_page);
  Status ReadBigChain(uint32_t first_page, uint32_t total_len, std::string* value);
  Status FreeBigChain(uint32_t first_page);

  size_t MaxKeyLen() const { return page_size_ / 8; }
  size_t BigValueThreshold() const { return page_size_ / 4; }

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  uint32_t page_size_;
  bool persistent_;

  uint32_t root_ = 1;
  uint32_t height_ = 1;
  uint64_t nkeys_ = 0;
  uint32_t next_new_page_ = 1;
  uint32_t free_head_ = 0;

  BtStats stats_;
};

}  // namespace btree
}  // namespace hashkit

#endif  // HASHKIT_SRC_BTREE_BTREE_H_
