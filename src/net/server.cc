#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "src/util/endian.h"

namespace hashkit {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

std::string LowerOpcodeName(Opcode op) {
  std::string name{OpcodeName(op)};
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name;
}

// STATS-text latency block: `<prefix>.{count,mean_ns,p50_ns,...,max_ns}`.
// Zeros when nothing has been recorded, so consumers can rely on the keys
// being present.
void AppendLatencyLines(std::string* text, const std::string& prefix,
                        const HistogramSnapshot& h) {
  const PercentileSummary s = Summarize(h);
  const auto line = [text, &prefix](const char* name, uint64_t value) {
    *text += prefix;
    *text += '.';
    *text += name;
    *text += '=';
    *text += std::to_string(value);
    *text += '\n';
  };
  line("count", s.count);
  line("mean_ns", static_cast<uint64_t>(std::llround(s.mean)));
  line("p50_ns", s.p50);
  line("p90_ns", s.p90);
  line("p95_ns", s.p95);
  line("p99_ns", s.p99);
  line("p999_ns", s.p999);
  line("max_ns", s.max);
}

// Prometheus-style summary block: `<name>{<labels>,quantile="q"} v` plus
// `<name>_count` and `<name>_sum`.  `labels` must be non-empty.
void AppendPromSummary(std::string* out, const std::string& name, const std::string& labels,
                       const HistogramSnapshot& h) {
  static constexpr struct {
    const char* label;
    double percentile;
  } kQuantiles[] = {{"0.5", 50.0}, {"0.9", 90.0}, {"0.95", 95.0},
                    {"0.99", 99.0}, {"0.999", 99.9}};
  for (const auto& q : kQuantiles) {
    *out += name + "{" + labels + ",quantile=\"" + q.label + "\"} " +
            std::to_string(h.ValueAt(q.percentile)) + "\n";
  }
  *out += name + "_count{" + labels + "} " + std::to_string(h.count) + "\n";
  *out += name + "_sum{" + labels + "} " + std::to_string(h.sum) + "\n";
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::string in;        // bytes read, not yet forming complete frames
  std::string out;       // encoded responses not yet written
  size_t out_offset = 0; // already-written prefix of `out`
  uint32_t epoll_mask = 0;
  bool close_after_flush = false;  // set on malformed input
  Clock::time_point last_active = Clock::now();

  // hashkit-mvcc per-connection protocol state (touched only on the owning
  // worker's thread, like the buffers above).
  //
  // SCAN cursor: when the store supports snapshots, each connection scans
  // its own snapshot cursor, so two pipelined SCAN streams — same or
  // different connections — no longer corrupt each other through the
  // store's single shared cursor, and a long scan no longer holds the
  // store's exclusive lock per step.
  std::unique_ptr<kv::KvCursor> scan_cursor;
  // BACKUP stream: the store-side snapshot is pinned between Begin and
  // End; dropped on close so an aborted backup cannot defer checkpoints
  // forever.
  bool backup_active = false;

  size_t pending_out() const { return out.size() - out_offset; }
};

struct Server::Worker {
  EventLoop loop;
  std::thread thread;
  // Owned connections, keyed by fd.  Touched only on the loop thread.
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
};

Server::Server(kv::KvStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("server needs at least one worker");
  }
  if (!accept_loop_.ok()) {
    return Status::IoError("epoll setup failed for acceptor");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Errno("socket");
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return Errno("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (options_.metrics_port >= 0) {
    if (options_.metrics_port > 65535) {
      return Status::InvalidArgument("metrics port out of range");
    }
    metrics_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (metrics_fd_ < 0) {
      return Errno("socket (metrics)");
    }
    (void)::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in maddr = {};
    maddr.sin_family = AF_INET;
    maddr.sin_port = htons(static_cast<uint16_t>(options_.metrics_port));
    (void)::inet_pton(AF_INET, options_.host.c_str(), &maddr.sin_addr);
    if (::bind(metrics_fd_, reinterpret_cast<struct sockaddr*>(&maddr), sizeof(maddr)) != 0) {
      return Errno("bind (metrics)");
    }
    if (::listen(metrics_fd_, 16) != 0) {
      return Errno("listen (metrics)");
    }
    socklen_t maddr_len = sizeof(maddr);
    if (::getsockname(metrics_fd_, reinterpret_cast<struct sockaddr*>(&maddr), &maddr_len) != 0) {
      return Errno("getsockname (metrics)");
    }
    metrics_port_ = ntohs(maddr.sin_port);
  }

  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    if (!worker->loop.ok()) {
      return Status::IoError("epoll setup failed for worker");
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    const bool sweep = options_.idle_timeout_ms > 0;
    worker->thread = std::thread([this, w, sweep] {
      w->loop.Run(sweep ? EventLoop::Task([this, w] { SweepIdle(w); }) : EventLoop::Task(),
                  1000);
    });
  }

  HASHKIT_RETURN_IF_ERROR(
      accept_loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); }));
  if (metrics_fd_ >= 0) {
    HASHKIT_RETURN_IF_ERROR(
        accept_loop_.Add(metrics_fd_, EPOLLIN, [this](uint32_t) { MetricsReady(); }));
  }
  accept_thread_ = std::thread([this] { accept_loop_.Run(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) {
    return;
  }
  accept_loop_.Stop();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (metrics_fd_ >= 0) {
    ::close(metrics_fd_);
    metrics_fd_ = -1;
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    // The close-all task runs on the loop thread: either before the next
    // poll or in the loop's final drain after Stop().
    w->loop.Post([this, w] {
      while (!w->conns.empty()) {
        CloseConnection(w, w->conns.begin()->first, /*from_idle_sweep=*/false);
      }
    });
    w->loop.Stop();
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

void Server::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN (drained) or a transient accept error
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
    Worker* w = workers_[next_worker_].get();
    next_worker_ = (next_worker_ + 1) % workers_.size();
    w->loop.Post([this, w, fd] { AdoptConnection(w, fd); });
  }
}

void Server::MetricsReady() {
  for (;;) {
    const int fd = ::accept4(metrics_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN (drained) or a transient accept error
    }
    // Blocking socket with short timeouts: a stalled scraper must not
    // wedge the acceptor thread.
    struct timeval tv = {};
    tv.tv_sec = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    // Read whatever request line arrives; contents are ignored — every
    // path serves the same exposition.
    char buf[4096];
    (void)::recv(fd, buf, sizeof(buf), 0);
    const std::string body = RenderMetricsText();
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n\r\n";
    resp += body;
    size_t off = 0;
    while (off < resp.size()) {
      const ssize_t n = ::send(fd, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        break;  // send timeout or dead scraper; drop this scrape
      }
      off += static_cast<size_t>(n);
    }
    ::close(fd);
  }
}

void Server::AdoptConnection(Worker* worker, int fd) {
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->epoll_mask = EPOLLIN;
  Connection* raw = conn.get();
  worker->conns[fd] = std::move(conn);
  const Status st = worker->loop.Add(
      fd, raw->epoll_mask, [this, worker, fd](uint32_t events) {
        ConnectionReady(worker, fd, events);
      });
  if (!st.ok()) {
    worker->conns.erase(fd);
    ::close(fd);
    stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::CloseConnection(Worker* worker, int fd, bool from_idle_sweep) {
  const auto it = worker->conns.find(fd);
  if (it == worker->conns.end()) {
    return;
  }
  if (it->second->backup_active) {
    (void)store_->BackupEnd();  // do not let a dead client pin the snapshot
  }
  (void)worker->loop.Remove(fd);
  ::close(fd);
  worker->conns.erase(it);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  if (from_idle_sweep) {
    stats_.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::SweepIdle(Worker* worker) {
  const auto deadline = Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : worker->conns) {
    if (conn->last_active < deadline) {
      idle.push_back(fd);
    }
  }
  for (const int fd : idle) {
    CloseConnection(worker, fd, /*from_idle_sweep=*/true);
  }
}

Response Server::Dispatch(Connection* conn, const Request& req) {
  stats_.CountRequest(req.op);
  const uint64_t t0 = MonotonicNanos();
  Response resp;
  resp.op = req.op;
  resp.seq = req.seq;

  // The cluster node gets first refusal: ownership checks and MOVED replies
  // for data ops, plus the MAP_GET/MIGRATE handling a standalone server
  // does not have.  It preserves op and fills status/payload; seq stays
  // whatever we stamped above.
  if (options_.cluster != nullptr && options_.cluster->HandleRequest(req, &resp)) {
    resp.seq = req.seq;
    stats_.RecordLatency(req.op, MonotonicNanos() - t0);
    return resp;
  }

  Status st;
  switch (req.op) {
    case Opcode::kPing:
      resp.value = req.value;  // echo
      break;
    case Opcode::kPut:
      st = options_.read_only
               ? Status::Unsupported("read-only replica")
               : store_->Put(req.key, req.value, (req.flags & kFlagNoOverwrite) == 0);
      break;
    case Opcode::kGet:
      st = store_->Get(req.key, &resp.value);
      break;
    case Opcode::kDel:
      st = options_.read_only ? Status::Unsupported("read-only replica")
                              : store_->Delete(req.key);
      break;
    case Opcode::kScan: {
      const bool first = (req.flags & kFlagScanFirst) != 0;
      // Per-connection snapshot cursor wherever the store supports one: a
      // restarted (or fresh) SCAN pins a point-in-time view private to
      // this connection, so pipelined scans on two connections no longer
      // interleave through the store's single shared cursor, and writers
      // only wait out one Next at a time.  Stores without snapshots keep
      // the legacy shared-cursor behaviour.
      if (store_->Caps().snapshots) {
        if (first || conn->scan_cursor == nullptr) {
          auto cursor = store_->NewSnapshotCursor();
          if (!cursor.ok()) {
            st = cursor.status();
            break;
          }
          conn->scan_cursor = std::move(cursor).value();
        }
        st = conn->scan_cursor->Next(&resp.key, &resp.value);
        if (st.IsNotFound()) {
          conn->scan_cursor.reset();  // release the snapshot promptly
        }
      } else {
        st = store_->Scan(&resp.key, &resp.value, first);
      }
      break;
    }
    case Opcode::kStats:
      resp.value = RenderStatsText();
      break;
    case Opcode::kSync:
      st = options_.read_only ? Status::Unsupported("read-only replica") : store_->Sync();
      break;
    case Opcode::kBackup:
      resp = DispatchBackup(conn, req);
      stats_.RecordLatency(req.op, MonotonicNanos() - t0);
      return resp;
    case Opcode::kReplicate:
      resp = DispatchReplicate(req);
      stats_.RecordLatency(req.op, MonotonicNanos() - t0);
      return resp;
    case Opcode::kMapGet:
    case Opcode::kMigrate:
      st = Status::Unsupported("not a cluster node");
      break;
    case Opcode::kMoved:
      st = Status::Unsupported("MOVED is response-only");
      break;
    default:
      // Well-framed but unknown to this build (newer peer): answer rather
      // than disconnect, so the sender can fall back per opcode.
      st = Status::Unsupported("unknown opcode " +
                               std::to_string(static_cast<unsigned>(req.op)));
      break;
  }
  resp.status = st.code();
  if (!st.ok() && resp.value.empty()) {
    resp.value = st.message();
  }
  stats_.RecordLatency(req.op, MonotonicNanos() - t0);
  return resp;
}

Response Server::DispatchBackup(Connection* conn, const Request& req) {
  Response resp;
  resp.op = req.op;
  resp.seq = req.seq;
  Status st;
  switch (req.flags) {
    case kBackupBegin: {
      if (conn->backup_active) {
        st = Status::Exists("backup already begun on this connection");
        break;
      }
      const Result<kv::BackupInfo> begun = store_->BackupBegin();
      if (!begun.ok()) {
        st = begun.status();
        break;
      }
      conn->backup_active = true;
      uint8_t manifest[20];
      EncodeU32(manifest, begun.value().page_size);
      EncodeU64(manifest + 4, begun.value().page_count);
      EncodeU64(manifest + 12, begun.value().lsn);
      resp.value.assign(reinterpret_cast<const char*>(manifest), sizeof(manifest));
      break;
    }
    case kBackupPages: {
      if (req.value.size() != 12) {
        st = Status::InvalidArgument("BACKUP pages wants value = u64 first_page | u32 count");
        break;
      }
      const auto* v = reinterpret_cast<const uint8_t*>(req.value.data());
      const uint64_t first_page = DecodeU64(v);
      // Bound one response below the frame limit whatever the client asks.
      const uint32_t count = std::min(DecodeU32(v + 8), 4096u);
      st = store_->BackupReadPages(first_page, count, &resp.value);
      break;
    }
    case kBackupWal: {
      if (req.value.size() != 12) {
        st = Status::InvalidArgument("BACKUP wal wants value = u64 offset | u32 max_bytes");
        break;
      }
      const auto* v = reinterpret_cast<const uint8_t*>(req.value.data());
      const uint64_t offset = DecodeU64(v);
      const uint32_t max_bytes = std::min(DecodeU32(v + 8), kMaxValueLen - 1);
      uint64_t total = 0;
      st = store_->BackupReadWal(offset, max_bytes, &resp.value, &total);
      if (st.ok()) {
        uint8_t buf[8];
        EncodeU64(buf, total);
        resp.key.assign(reinterpret_cast<const char*>(buf), sizeof(buf));
      }
      break;
    }
    case kBackupEnd:
      st = store_->BackupEnd();
      conn->backup_active = false;
      break;
    default:
      st = Status::InvalidArgument("BACKUP wants exactly one sub-op flag");
      break;
  }
  resp.status = st.code();
  if (!st.ok() && resp.value.empty()) {
    resp.value = st.message();
  }
  return resp;
}

Response Server::DispatchReplicate(const Request& req) {
  Response resp;
  resp.op = req.op;
  resp.seq = req.seq;
  Status st;
  if (req.flags == kReplicateRead) {
    if (req.value.size() != 8) {
      st = Status::InvalidArgument("REPLICATE read wants value = u64 from_lsn");
    } else {
      const uint64_t from_lsn =
          DecodeU64(reinterpret_cast<const uint8_t*>(req.value.data()));
      uint64_t last_lsn = 0;
      st = store_->ReplicationRead(from_lsn, &resp.value, &last_lsn);
      if (st.ok()) {
        uint8_t buf[8];
        EncodeU64(buf, last_lsn);
        resp.key.assign(reinterpret_cast<const char*>(buf), sizeof(buf));
      }
    }
  } else {
    st = Status::InvalidArgument("REPLICATE wants exactly one sub-op flag");
  }
  resp.status = st.code();
  if (!st.ok() && resp.value.empty()) {
    resp.value = st.message();
  }
  return resp;
}

bool Server::ServeBufferedFrames(Connection* conn) {
  for (;;) {
    Request req;
    size_t consumed = 0;
    std::string error;
    switch (DecodeRequest(&conn->in, &req, &consumed, &error)) {
      case DecodeResult::kFrame: {
        const Response resp = Dispatch(conn, req);
        EncodeResponse(resp, &conn->out);
        continue;
      }
      case DecodeResult::kNeedMore:
        return true;
      case DecodeResult::kMalformed: {
        stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.op = Opcode::kPing;
        resp.status = StatusCode::kInvalidArgument;
        resp.value = "malformed frame: " + error;
        EncodeResponse(resp, &conn->out);
        conn->close_after_flush = true;
        return true;
      }
    }
  }
}

bool Server::FlushWrites(Worker* worker, Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    // MSG_NOSIGNAL: a peer that already closed must surface as EPIPE, not
    // a process-wide SIGPIPE.
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_offset,
                             conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    CloseConnection(worker, conn->fd, /*from_idle_sweep=*/false);
    return false;
  }
  if (conn->out_offset == conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush) {
      CloseConnection(worker, conn->fd, /*from_idle_sweep=*/false);
      return false;
    }
  } else if (conn->out_offset > (1u << 20)) {
    // Reclaim the written prefix so a long-lived slow reader cannot hold
    // the whole history of its responses in memory.
    conn->out.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  return true;
}

void Server::ConnectionReady(Worker* worker, int fd, uint32_t events) {
  const auto it = worker->conns.find(fd);
  if (it == worker->conns.end()) {
    return;
  }
  Connection* conn = it->second.get();
  conn->last_active = Clock::now();

  // Drain readable bytes before honoring a hangup: a peer that wrote and
  // closed in one breath still gets its frames served (and its malformed
  // input counted).
  bool peer_closed = false;
  if ((events & EPOLLIN) != 0) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        stats_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      peer_closed = true;  // 0 = orderly shutdown; <0 = connection error
      break;
    }
    if (!ServeBufferedFrames(conn)) {
      CloseConnection(worker, fd, /*from_idle_sweep=*/false);
      return;
    }
  } else if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    peer_closed = true;
  }

  if (!FlushWrites(worker, conn)) {
    return;  // connection closed
  }
  if (peer_closed) {
    CloseConnection(worker, fd, /*from_idle_sweep=*/false);
    return;
  }

  // Keep the epoll interest mask in sync with buffer state: EPOLLOUT only
  // while a flush is pending; EPOLLIN only while below the write-backlog
  // cap (backpressure) and not draining toward a close.
  uint32_t want = 0;
  if (!conn->close_after_flush && conn->pending_out() <= options_.max_buffered_bytes) {
    want |= EPOLLIN;
  }
  if (conn->pending_out() > 0) {
    want |= EPOLLOUT;
  }
  if (want != conn->epoll_mask) {
    conn->epoll_mask = want;
    (void)worker->loop.Modify(fd, want);
  }
}

std::string Server::RenderStatsText() const {
  std::string text;
  const auto line = [&text](const std::string& key, uint64_t value) {
    text += key;
    text += '=';
    text += std::to_string(value);
    text += '\n';
  };
  line("server.connections_accepted", stats_.connections_accepted.load(std::memory_order_relaxed));
  line("server.connections_active", stats_.connections_active.load(std::memory_order_relaxed));
  line("server.bytes_in", stats_.bytes_in.load(std::memory_order_relaxed));
  line("server.bytes_out", stats_.bytes_out.load(std::memory_order_relaxed));
  line("server.malformed_frames", stats_.malformed_frames.load(std::memory_order_relaxed));
  line("server.idle_timeouts", stats_.idle_timeouts.load(std::memory_order_relaxed));
  line("server.unknown_opcodes", stats_.unknown_opcodes.load(std::memory_order_relaxed));
  for (size_t op = 0; op < kOpcodeCount; ++op) {
    text += "server.requests.";
    text += OpcodeName(static_cast<Opcode>(op));
    text += '=';
    text += std::to_string(stats_.requests_by_opcode[op].load(std::memory_order_relaxed));
    text += '\n';
  }
  line("server.requests.total", stats_.TotalRequests());

  for (size_t op = 0; op < kOpcodeCount; ++op) {
    std::string prefix = "server.latency.";
    prefix += OpcodeName(static_cast<Opcode>(op));
    AppendLatencyLines(&text, prefix, stats_.op_latency_ns[op].Snapshot());
  }

  text += "store.name=" + store_->Name() + "\n";
  line("store.size", store_->Size());
  kv::StoreStats store_stats;
  if (store_->Stats(&store_stats)) {
    line("store.shards", store_stats.shards);
    line("store.table.puts", store_stats.table.puts);
    line("store.table.gets", store_stats.table.gets);
    line("store.table.deletes", store_stats.table.deletes);
    line("store.table.splits", store_stats.table.splits);
    line("store.table.contractions", store_stats.table.contractions);
    line("store.table.tag_filter_skips", store_stats.table.tag_filter_skips);
    line("store.table.tag_filter_candidates", store_stats.table.tag_filter_candidates);
    line("store.table.tag_filter_false_hits", store_stats.table.tag_filter_false_hits);
    line("store.pool.hits", store_stats.pool.hits);
    line("store.pool.misses", store_stats.pool.misses);
    line("store.pool.evictions", store_stats.pool.evictions);
    line("store.pool.dirty_writebacks", store_stats.pool.dirty_writebacks);
    line("store.wal.records", store_stats.wal.records);
    line("store.wal.commits", store_stats.wal.commits);
    line("store.wal.syncs", store_stats.wal.syncs);
    line("store.wal.checkpoints", store_stats.wal.checkpoints);
    line("store.wal.bytes", store_stats.wal.bytes);
    line("store.wal.recovered_batches", store_stats.wal.recovered_batches);
    line("store.wal.recovered_pages", store_stats.wal.recovered_pages);
    AppendLatencyLines(&text, "store.latency.put", store_stats.latency.put);
    AppendLatencyLines(&text, "store.latency.get", store_stats.latency.get);
    AppendLatencyLines(&text, "store.latency.del", store_stats.latency.del);
    AppendLatencyLines(&text, "store.latency.sync", store_stats.latency.sync);
    AppendLatencyLines(&text, "store.pool.latency.get_hit", store_stats.pool.get_hit_ns);
    AppendLatencyLines(&text, "store.pool.latency.get_miss", store_stats.pool.get_miss_ns);
    AppendLatencyLines(&text, "store.pool.latency.writeback", store_stats.pool.writeback_ns);
    AppendLatencyLines(&text, "store.pool.latency.evict", store_stats.pool.evict_ns);
    AppendLatencyLines(&text, "store.wal.latency.commit", store_stats.wal.commit_ns);
    AppendLatencyLines(&text, "store.wal.latency.sync", store_stats.wal.sync_ns);
  }
  if (options_.cluster != nullptr) {
    options_.cluster->AppendStatsText(&text);
  }
  return text;
}

std::string Server::RenderMetricsText() const {
  std::string out;
  const auto gauge = [&out](const char* name, uint64_t value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  gauge("hashkit_connections_accepted_total",
        stats_.connections_accepted.load(std::memory_order_relaxed));
  gauge("hashkit_connections_active", stats_.connections_active.load(std::memory_order_relaxed));
  gauge("hashkit_bytes_in_total", stats_.bytes_in.load(std::memory_order_relaxed));
  gauge("hashkit_bytes_out_total", stats_.bytes_out.load(std::memory_order_relaxed));
  gauge("hashkit_malformed_frames_total",
        stats_.malformed_frames.load(std::memory_order_relaxed));
  gauge("hashkit_idle_timeouts_total", stats_.idle_timeouts.load(std::memory_order_relaxed));
  gauge("hashkit_unknown_opcodes_total",
        stats_.unknown_opcodes.load(std::memory_order_relaxed));
  for (size_t op = 0; op < kOpcodeCount; ++op) {
    const std::string label = "op=\"" + LowerOpcodeName(static_cast<Opcode>(op)) + "\"";
    out += "hashkit_requests_total{" + label + "} " +
           std::to_string(stats_.requests_by_opcode[op].load(std::memory_order_relaxed)) + "\n";
    AppendPromSummary(&out, "hashkit_request_latency_ns", label,
                      stats_.op_latency_ns[op].Snapshot());
  }

  gauge("hashkit_store_size", store_->Size());
  kv::StoreStats store_stats;
  if (store_->Stats(&store_stats)) {
    gauge("hashkit_store_shards", store_stats.shards);
    gauge("hashkit_table_puts_total", store_stats.table.puts);
    gauge("hashkit_table_gets_total", store_stats.table.gets);
    gauge("hashkit_table_deletes_total", store_stats.table.deletes);
    gauge("hashkit_table_splits_total", store_stats.table.splits);
    gauge("hashkit_table_contractions_total", store_stats.table.contractions);
    gauge("hashkit_table_tag_filter_skips_total", store_stats.table.tag_filter_skips);
    gauge("hashkit_table_tag_filter_candidates_total", store_stats.table.tag_filter_candidates);
    gauge("hashkit_table_tag_filter_false_hits_total", store_stats.table.tag_filter_false_hits);
    gauge("hashkit_pool_hits_total", store_stats.pool.hits);
    gauge("hashkit_pool_misses_total", store_stats.pool.misses);
    gauge("hashkit_pool_evictions_total", store_stats.pool.evictions);
    gauge("hashkit_pool_dirty_writebacks_total", store_stats.pool.dirty_writebacks);
    gauge("hashkit_wal_records_total", store_stats.wal.records);
    gauge("hashkit_wal_commits_total", store_stats.wal.commits);
    gauge("hashkit_wal_syncs_total", store_stats.wal.syncs);
    gauge("hashkit_wal_checkpoints_total", store_stats.wal.checkpoints);
    gauge("hashkit_wal_bytes_total", store_stats.wal.bytes);
    gauge("hashkit_wal_recovered_batches_total", store_stats.wal.recovered_batches);
    gauge("hashkit_wal_recovered_pages_total", store_stats.wal.recovered_pages);
    AppendPromSummary(&out, "hashkit_store_latency_ns", "op=\"put\"", store_stats.latency.put);
    AppendPromSummary(&out, "hashkit_store_latency_ns", "op=\"get\"", store_stats.latency.get);
    AppendPromSummary(&out, "hashkit_store_latency_ns", "op=\"del\"", store_stats.latency.del);
    AppendPromSummary(&out, "hashkit_store_latency_ns", "op=\"sync\"", store_stats.latency.sync);
    AppendPromSummary(&out, "hashkit_pool_latency_ns", "event=\"get_hit\"",
                      store_stats.pool.get_hit_ns);
    AppendPromSummary(&out, "hashkit_pool_latency_ns", "event=\"get_miss\"",
                      store_stats.pool.get_miss_ns);
    AppendPromSummary(&out, "hashkit_pool_latency_ns", "event=\"writeback\"",
                      store_stats.pool.writeback_ns);
    AppendPromSummary(&out, "hashkit_pool_latency_ns", "event=\"evict\"",
                      store_stats.pool.evict_ns);
    AppendPromSummary(&out, "hashkit_wal_latency_ns", "op=\"commit\"",
                      store_stats.wal.commit_ns);
    AppendPromSummary(&out, "hashkit_wal_latency_ns", "op=\"sync\"", store_stats.wal.sync_ns);
  }
  if (options_.cluster != nullptr) {
    options_.cluster->AppendMetricsText(&out);
  }
  return out;
}

}  // namespace net
}  // namespace hashkit
