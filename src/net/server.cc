#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace hashkit {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::string in;        // bytes read, not yet forming complete frames
  std::string out;       // encoded responses not yet written
  size_t out_offset = 0; // already-written prefix of `out`
  uint32_t epoll_mask = 0;
  bool close_after_flush = false;  // set on malformed input
  Clock::time_point last_active = Clock::now();

  size_t pending_out() const { return out.size() - out_offset; }
};

struct Server::Worker {
  EventLoop loop;
  std::thread thread;
  // Owned connections, keyed by fd.  Touched only on the loop thread.
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
};

Server::Server(kv::KvStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("server needs at least one worker");
  }
  if (!accept_loop_.ok()) {
    return Status::IoError("epoll setup failed for acceptor");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Errno("socket");
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return Errno("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    if (!worker->loop.ok()) {
      return Status::IoError("epoll setup failed for worker");
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    const bool sweep = options_.idle_timeout_ms > 0;
    worker->thread = std::thread([this, w, sweep] {
      w->loop.Run(sweep ? EventLoop::Task([this, w] { SweepIdle(w); }) : EventLoop::Task(),
                  1000);
    });
  }

  HASHKIT_RETURN_IF_ERROR(
      accept_loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); }));
  accept_thread_ = std::thread([this] { accept_loop_.Run(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) {
    return;
  }
  accept_loop_.Stop();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    // The close-all task runs on the loop thread: either before the next
    // poll or in the loop's final drain after Stop().
    w->loop.Post([this, w] {
      while (!w->conns.empty()) {
        CloseConnection(w, w->conns.begin()->first, /*from_idle_sweep=*/false);
      }
    });
    w->loop.Stop();
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

void Server::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN (drained) or a transient accept error
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
    Worker* w = workers_[next_worker_].get();
    next_worker_ = (next_worker_ + 1) % workers_.size();
    w->loop.Post([this, w, fd] { AdoptConnection(w, fd); });
  }
}

void Server::AdoptConnection(Worker* worker, int fd) {
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->epoll_mask = EPOLLIN;
  Connection* raw = conn.get();
  worker->conns[fd] = std::move(conn);
  const Status st = worker->loop.Add(
      fd, raw->epoll_mask, [this, worker, fd](uint32_t events) {
        ConnectionReady(worker, fd, events);
      });
  if (!st.ok()) {
    worker->conns.erase(fd);
    ::close(fd);
    stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::CloseConnection(Worker* worker, int fd, bool from_idle_sweep) {
  const auto it = worker->conns.find(fd);
  if (it == worker->conns.end()) {
    return;
  }
  (void)worker->loop.Remove(fd);
  ::close(fd);
  worker->conns.erase(it);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  if (from_idle_sweep) {
    stats_.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::SweepIdle(Worker* worker) {
  const auto deadline = Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : worker->conns) {
    if (conn->last_active < deadline) {
      idle.push_back(fd);
    }
  }
  for (const int fd : idle) {
    CloseConnection(worker, fd, /*from_idle_sweep=*/true);
  }
}

Response Server::Dispatch(const Request& req) {
  stats_.CountRequest(req.op);
  Response resp;
  resp.op = req.op;
  resp.seq = req.seq;
  Status st;
  switch (req.op) {
    case Opcode::kPing:
      resp.value = req.value;  // echo
      break;
    case Opcode::kPut:
      st = store_->Put(req.key, req.value, (req.flags & kFlagNoOverwrite) == 0);
      break;
    case Opcode::kGet:
      st = store_->Get(req.key, &resp.value);
      break;
    case Opcode::kDel:
      st = store_->Delete(req.key);
      break;
    case Opcode::kScan:
      // The scan cursor is store state, shared by every connection — as
      // with the in-process API, interleaved scanners share one cursor.
      st = store_->Scan(&resp.key, &resp.value, (req.flags & kFlagScanFirst) != 0);
      break;
    case Opcode::kStats:
      resp.value = RenderStatsText();
      break;
    case Opcode::kSync:
      st = store_->Sync();
      break;
  }
  resp.status = st.code();
  if (!st.ok() && resp.value.empty()) {
    resp.value = st.message();
  }
  return resp;
}

bool Server::ServeBufferedFrames(Connection* conn) {
  for (;;) {
    Request req;
    size_t consumed = 0;
    std::string error;
    switch (DecodeRequest(&conn->in, &req, &consumed, &error)) {
      case DecodeResult::kFrame: {
        const Response resp = Dispatch(req);
        EncodeResponse(resp, &conn->out);
        continue;
      }
      case DecodeResult::kNeedMore:
        return true;
      case DecodeResult::kMalformed: {
        stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.op = Opcode::kPing;
        resp.status = StatusCode::kInvalidArgument;
        resp.value = "malformed frame: " + error;
        EncodeResponse(resp, &conn->out);
        conn->close_after_flush = true;
        return true;
      }
    }
  }
}

bool Server::FlushWrites(Worker* worker, Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    // MSG_NOSIGNAL: a peer that already closed must surface as EPIPE, not
    // a process-wide SIGPIPE.
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_offset,
                             conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    CloseConnection(worker, conn->fd, /*from_idle_sweep=*/false);
    return false;
  }
  if (conn->out_offset == conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush) {
      CloseConnection(worker, conn->fd, /*from_idle_sweep=*/false);
      return false;
    }
  } else if (conn->out_offset > (1u << 20)) {
    // Reclaim the written prefix so a long-lived slow reader cannot hold
    // the whole history of its responses in memory.
    conn->out.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  return true;
}

void Server::ConnectionReady(Worker* worker, int fd, uint32_t events) {
  const auto it = worker->conns.find(fd);
  if (it == worker->conns.end()) {
    return;
  }
  Connection* conn = it->second.get();
  conn->last_active = Clock::now();

  // Drain readable bytes before honoring a hangup: a peer that wrote and
  // closed in one breath still gets its frames served (and its malformed
  // input counted).
  bool peer_closed = false;
  if ((events & EPOLLIN) != 0) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        stats_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      peer_closed = true;  // 0 = orderly shutdown; <0 = connection error
      break;
    }
    if (!ServeBufferedFrames(conn)) {
      CloseConnection(worker, fd, /*from_idle_sweep=*/false);
      return;
    }
  } else if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    peer_closed = true;
  }

  if (!FlushWrites(worker, conn)) {
    return;  // connection closed
  }
  if (peer_closed) {
    CloseConnection(worker, fd, /*from_idle_sweep=*/false);
    return;
  }

  // Keep the epoll interest mask in sync with buffer state: EPOLLOUT only
  // while a flush is pending; EPOLLIN only while below the write-backlog
  // cap (backpressure) and not draining toward a close.
  uint32_t want = 0;
  if (!conn->close_after_flush && conn->pending_out() <= options_.max_buffered_bytes) {
    want |= EPOLLIN;
  }
  if (conn->pending_out() > 0) {
    want |= EPOLLOUT;
  }
  if (want != conn->epoll_mask) {
    conn->epoll_mask = want;
    (void)worker->loop.Modify(fd, want);
  }
}

std::string Server::RenderStatsText() const {
  std::string text;
  const auto line = [&text](const std::string& key, uint64_t value) {
    text += key;
    text += '=';
    text += std::to_string(value);
    text += '\n';
  };
  line("server.connections_accepted", stats_.connections_accepted.load(std::memory_order_relaxed));
  line("server.connections_active", stats_.connections_active.load(std::memory_order_relaxed));
  line("server.bytes_in", stats_.bytes_in.load(std::memory_order_relaxed));
  line("server.bytes_out", stats_.bytes_out.load(std::memory_order_relaxed));
  line("server.malformed_frames", stats_.malformed_frames.load(std::memory_order_relaxed));
  line("server.idle_timeouts", stats_.idle_timeouts.load(std::memory_order_relaxed));
  for (size_t op = 0; op < kOpcodeCount; ++op) {
    text += "server.requests.";
    text += OpcodeName(static_cast<Opcode>(op));
    text += '=';
    text += std::to_string(stats_.requests_by_opcode[op].load(std::memory_order_relaxed));
    text += '\n';
  }
  line("server.requests.total", stats_.TotalRequests());

  text += "store.name=" + store_->Name() + "\n";
  line("store.size", store_->Size());
  kv::StoreStats store_stats;
  if (store_->Stats(&store_stats)) {
    line("store.shards", store_stats.shards);
    line("store.table.puts", store_stats.table.puts);
    line("store.table.gets", store_stats.table.gets);
    line("store.table.deletes", store_stats.table.deletes);
    line("store.table.splits", store_stats.table.splits);
    line("store.table.contractions", store_stats.table.contractions);
    line("store.pool.hits", store_stats.pool.hits);
    line("store.pool.misses", store_stats.pool.misses);
    line("store.pool.evictions", store_stats.pool.evictions);
    line("store.pool.dirty_writebacks", store_stats.pool.dirty_writebacks);
  }
  return text;
}

}  // namespace net
}  // namespace hashkit
