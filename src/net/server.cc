#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>

#include "src/kv/ttl.h"
#include "src/net/out_queue.h"
#include "src/net/uring.h"
#include "src/util/endian.h"
#include "src/util/topk.h"

namespace hashkit {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

// Cap on one scatter-gather flush: enough to drain dozens of coalesced
// responses per syscall without building unbounded iovec arrays.
constexpr size_t kMaxIov = 64;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

std::string LowerOpcodeName(Opcode op) {
  std::string name{OpcodeName(op)};
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name;
}

// STATS-text latency block: `<prefix>.{count,mean_ns,p50_ns,...,max_ns}`.
// Zeros when nothing has been recorded, so consumers can rely on the keys
// being present.
void AppendLatencyLines(std::string* text, const std::string& prefix,
                        const HistogramSnapshot& h) {
  const PercentileSummary s = Summarize(h);
  const auto line = [text, &prefix](const char* name, uint64_t value) {
    *text += prefix;
    *text += '.';
    *text += name;
    *text += '=';
    *text += std::to_string(value);
    *text += '\n';
  };
  line("count", s.count);
  line("mean_ns", static_cast<uint64_t>(std::llround(s.mean)));
  line("p50_ns", s.p50);
  line("p90_ns", s.p90);
  line("p95_ns", s.p95);
  line("p99_ns", s.p99);
  line("p999_ns", s.p999);
  line("max_ns", s.max);
}

// Same shape for dimensionless distributions (batch sizes): no _ns suffix.
void AppendDistLines(std::string* text, const std::string& prefix,
                     const HistogramSnapshot& h) {
  const PercentileSummary s = Summarize(h);
  const auto line = [text, &prefix](const char* name, uint64_t value) {
    *text += prefix;
    *text += '.';
    *text += name;
    *text += '=';
    *text += std::to_string(value);
    *text += '\n';
  };
  line("count", s.count);
  line("mean", static_cast<uint64_t>(std::llround(s.mean)));
  line("p50", s.p50);
  line("p90", s.p90);
  line("p95", s.p95);
  line("p99", s.p99);
  line("p999", s.p999);
  line("max", s.max);
}

// Prometheus-style summary block: `<name>{<labels>,quantile="q"} v` plus
// `<name>_count` and `<name>_sum`.  `labels` must be non-empty.
void AppendPromSummary(std::string* out, const std::string& name, const std::string& labels,
                       const HistogramSnapshot& h) {
  static constexpr struct {
    const char* label;
    double percentile;
  } kQuantiles[] = {{"0.5", 50.0}, {"0.9", 90.0}, {"0.95", 95.0},
                    {"0.99", 99.0}, {"0.999", 99.9}};
  for (const auto& q : kQuantiles) {
    *out += name + "{" + labels + ",quantile=\"" + q.label + "\"} " +
            std::to_string(h.ValueAt(q.percentile)) + "\n";
  }
  *out += name + "_count{" + labels + "} " + std::to_string(h.count) + "\n";
  *out += name + "_sum{" + labels + "} " + std::to_string(h.sum) + "\n";
}

// Hot keys are arbitrary bytes but STATS/metrics are line-oriented text:
// keep printable ASCII (minus '%', '"' and '\\', which would break the
// escaping itself or a Prometheus label) and render everything else as
// %XX, so one sanitized form serves both expositions.
std::string SanitizeStatsKey(std::string_view key) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(key.size());
  for (const char ch : key) {
    const auto c = static_cast<unsigned char>(ch);
    if (c > 32 && c < 127 && c != '%' && c != '"' && c != '\\') {
      out += ch;
    } else {
      out += '%';
      out += kHex[c >> 4];
      out += kHex[c & 0xf];
    }
  }
  return out;
}

}  // namespace

// Response slot queue element (hashkit-tpc): one slot per request still
// owed a response, in request order.  kPending slots are batched key ops
// whose completion has not arrived; kBarrier slots hold the original
// request and dispatch only at the queue front (after every earlier
// response); kDone slots carry a finished response awaiting in-order
// emission.
struct Server::Slot {
  enum class State : uint8_t { kPending, kBarrier, kDone };
  State state = State::kPending;
  Request barrier_req;
  Response resp;

  // hashkit-cache: present only on memcached text-shim slots — how to
  // render this slot's outcome as protocol text.  Special-cased kinds
  // (get/gets/set/add/delete) format from resp; every other kind (barrier
  // commands, parse errors, shed notices) emits resp.value verbatim.
  struct McCtx {
    mc::Command::Kind kind = mc::Command::Kind::kBad;
    bool noreply = false;
    bool gets = false;  // VALUE lines carry the cas unique
    bool last = false;  // final key of a get/gets: emit the END line
    std::string key;    // echoed on the VALUE line
    mc::Command cmd;    // barrier commands: the full parsed command
  };
  std::unique_ptr<McCtx> mc;
};

struct Server::Connection {
  int fd = -1;
  // Guards stale cross-core completions: an fd number can be reused by a
  // new connection while completions for the old one are still in flight.
  uint64_t gen = 0;
  std::string in;  // bytes read, not yet forming complete frames
  OutQueue out;    // encoded responses not yet written (iovec segments)
  uint32_t epoll_mask = 0;
  bool close_after_flush = false;  // set on malformed input
  bool peer_closed = false;
  bool paused = false;      // reads deferred by admission control
  bool in_backlog = false;  // a continue-ingest task is already posted
  bool touched_round = false;  // already on this round's finish list
  Clock::time_point last_active = Clock::now();

  std::deque<Slot> slots;
  uint64_t base_slot = 0;  // slot id of slots.front()

  // hashkit-cache: set for connections accepted on the memcached listener.
  // Text connections share the slot queue and batching machinery; only
  // ingest (IngestTextCommands) and emission (AppendTextResponse) differ.
  bool text = false;
  // A storage command (set/add/replace/cas) whose data block has not
  // fully arrived yet.
  std::unique_ptr<mc::Command> mc_data;

  // hashkit-mvcc per-connection protocol state (touched only on the owning
  // worker's thread, like the buffers above).
  //
  // SCAN cursor: when the store supports snapshots, each connection scans
  // its own snapshot cursor, so two pipelined SCAN streams — same or
  // different connections — no longer corrupt each other through the
  // store's single shared cursor, and a long scan no longer holds the
  // store's exclusive lock per step.
  std::unique_ptr<kv::KvCursor> scan_cursor;
  // BACKUP stream: the store-side snapshot is pinned between Begin and
  // End; dropped on close so an aborted backup cannot defer checkpoints
  // forever.
  bool backup_active = false;

  // io_uring flush state: the iovec array handed to the kernel must stay
  // alive (and the OutQueue frozen) until the completion is reaped.  A
  // close that races an in-flight writev is deferred (uring_closing) so
  // the kernel never writes through freed buffers.
  std::vector<struct iovec> uring_iov;
  bool uring_inflight = false;
  bool uring_closing = false;
};

struct Server::PendingOp {
  size_t origin = 0;  // worker index that owns the connection
  int fd = -1;
  uint64_t gen = 0;
  uint64_t slot = 0;
  Opcode op = Opcode::kGet;
  uint8_t flags = 0;
  uint32_t seq = 0;
  uint64_t t0 = 0;  // MonotonicNanos at decode, for op latency
  // hashkit-cache: absolute expiry for a PUT carrying kFlagPutTtl (the
  // relative TTL is resolved to wall-clock ms at ingest, so queueing and
  // cross-core forwarding delays do not stretch the key's lifetime).
  uint64_t expire_at_ms = 0;
  std::string key;
  std::string value;
};

struct Server::OpCompletion {
  int fd = -1;
  uint64_t gen = 0;
  uint64_t slot = 0;
  Opcode op = Opcode::kGet;
  uint64_t t0 = 0;
  Response resp;
};

struct Server::Worker {
  size_t index = 0;
  EventLoop loop;
  std::thread thread;
  int listen_fd = -1;      // per-worker SO_REUSEPORT fd, or the shared fd
  bool owns_listen = false;
  int mc_listen_fd = -1;   // memcached listener (hashkit-cache); -1 = off
  bool owns_mc_listen = false;
  // Owned connections, keyed by fd.  Touched only on the loop thread.
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  uint64_t next_gen = 0;

  // Per-round batch state (loop thread only).
  std::vector<PendingOp> local_ops;                 // ops this core executes
  std::vector<std::vector<PendingOp>> outbound;     // ops per owner core
  std::vector<int> touched;                         // fds to finish this round
  std::vector<int> paused_fds;                      // reads deferred, to resume

  // Round-scratch buffers: swapped/reused every RunBatch so the hot loop
  // never reallocates per round once capacities warm up.
  std::vector<PendingOp> ops_scratch;
  std::vector<int> touched_scratch;
  std::vector<kv::BatchOp> bop_scratch;
  std::vector<OpCompletion> comp_scratch;
  std::vector<std::vector<OpCompletion>> remote_scratch;  // per origin core

  // Cross-core mailboxes: op batches forwarded here by peer cores, and
  // completed responses coming home to the connection owner.  Peers append
  // under the lock and Notify(); the loop thread swaps both out at the top
  // of RunBatch.  A locked vector + coalesced wakeup beats EventLoop::Post
  // for this traffic — no per-batch closure allocation, and no eventfd
  // syscall when the owner is already scheduled to run.
  std::mutex inbox_mu;
  std::vector<PendingOp> op_inbox;
  std::vector<OpCompletion> comp_inbox;
  std::vector<PendingOp> op_inbox_scratch;        // loop-thread swap targets
  std::vector<OpCompletion> comp_inbox_scratch;

  UringQueue uring;
  bool uring_ok = false;

  // Slots accepted but not yet emitted (admission control input).  Written
  // only by the loop thread; atomic so STATS can read it from elsewhere.
  std::atomic<int64_t> inflight{0};

  // Per-core counters mirrored into the global NetStats; relaxed, loop
  // thread writes only.
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batched_ops{0};
  std::atomic<uint64_t> forwarded{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deferred{0};
  LatencyHistogram batch_size;  // ops per batch on this core

  // hashkit-cache: per-core hot-key sketch (Space-Saving, see topk.h).
  // Recorded at ingest for every keyed op on either protocol; a STATS
  // render merges all cores' snapshots into the global top-K.
  TopKSketch hotkeys{64};
};

Server::Server(kv::KvStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Result<int> Server::OpenListenSocket(uint16_t port, bool reuse_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    const Status st = Errno("setsockopt(SO_REUSEPORT)");
    ::close(fd);
    return st;
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  return fd;
}

namespace {
Status BoundPort(int fd, uint16_t* port) {
  struct sockaddr_in addr = {};
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) != 0) {
    return Errno("getsockname");
  }
  *port = ntohs(addr.sin_port);
  return Status::Ok();
}
}  // namespace

Status Server::SetupListeners() {
  if (!options_.exclusive_accept) {
    // Preferred: one SO_REUSEPORT socket per worker, so the kernel
    // hash-routes connections across cores with no shared accept path at
    // all.  All sockets must bind the same resolved port, so the first
    // bind fixes a kernel-assigned port for the rest.
    std::vector<int> fds;
    fds.reserve(workers_.size());
    uint16_t port = options_.port;
    Status st = Status::Ok();
    for (size_t i = 0; i < workers_.size(); ++i) {
      Result<int> fd = OpenListenSocket(port, /*reuse_port=*/true);
      if (!fd.ok()) {
        st = fd.status();
        break;
      }
      fds.push_back(fd.value());
      if (i == 0) {
        st = BoundPort(fds[0], &port);
        if (!st.ok()) {
          break;
        }
      }
    }
    if (st.ok() && fds.size() == workers_.size()) {
      reuse_port_ = true;
      port_ = port;
      for (size_t i = 0; i < workers_.size(); ++i) {
        workers_[i]->listen_fd = fds[i];
        workers_[i]->owns_listen = true;
      }
      return Status::Ok();
    }
    for (const int fd : fds) {
      ::close(fd);
    }
    // Fall through: EPOLLEXCLUSIVE on one shared fd still avoids the
    // thundering herd, just without kernel-level connection spreading.
  }

  Result<int> fd = OpenListenSocket(options_.port, /*reuse_port=*/false);
  if (!fd.ok()) {
    return fd.status();
  }
  listen_fd_ = fd.value();
  HASHKIT_RETURN_IF_ERROR(BoundPort(listen_fd_, &port_));
  reuse_port_ = false;
  for (auto& worker : workers_) {
    worker->listen_fd = listen_fd_;
    worker->owns_listen = false;
  }
  return Status::Ok();
}

// The memcached listener mirrors SetupListeners' strategy on its own
// port: per-worker SO_REUSEPORT sockets when possible, one shared
// EPOLLEXCLUSIVE fd otherwise.
Status Server::SetupMcListeners() {
  if (!options_.exclusive_accept) {
    std::vector<int> fds;
    fds.reserve(workers_.size());
    uint16_t port = static_cast<uint16_t>(options_.memcached_port);
    Status st = Status::Ok();
    for (size_t i = 0; i < workers_.size(); ++i) {
      Result<int> fd = OpenListenSocket(port, /*reuse_port=*/true);
      if (!fd.ok()) {
        st = fd.status();
        break;
      }
      fds.push_back(fd.value());
      if (i == 0) {
        st = BoundPort(fds[0], &port);
        if (!st.ok()) {
          break;
        }
      }
    }
    if (st.ok() && fds.size() == workers_.size()) {
      mc_reuse_port_ = true;
      mc_port_ = port;
      for (size_t i = 0; i < workers_.size(); ++i) {
        workers_[i]->mc_listen_fd = fds[i];
        workers_[i]->owns_mc_listen = true;
      }
      return Status::Ok();
    }
    for (const int fd : fds) {
      ::close(fd);
    }
  }

  Result<int> fd =
      OpenListenSocket(static_cast<uint16_t>(options_.memcached_port), /*reuse_port=*/false);
  if (!fd.ok()) {
    return fd.status();
  }
  mc_listen_fd_ = fd.value();
  HASHKIT_RETURN_IF_ERROR(BoundPort(mc_listen_fd_, &mc_port_));
  mc_reuse_port_ = false;
  for (auto& worker : workers_) {
    worker->mc_listen_fd = mc_listen_fd_;
    worker->owns_mc_listen = false;
  }
  return Status::Ok();
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("server needs at least one worker");
  }

  partitions_ = store_->PartitionCount();
  batching_ = options_.cluster == nullptr;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool route_by_partition =
      options_.forwarding == ServerOptions::Forwarding::kOn ||
      (options_.forwarding == ServerOptions::Forwarding::kAuto &&
       static_cast<unsigned>(options_.workers) <= hw);
  forwarding_ = batching_ && options_.workers > 1 && partitions_ > 1 &&
                route_by_partition;

  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = static_cast<size_t>(i);
    if (!worker->loop.ok()) {
      return Status::IoError("epoll setup failed for worker");
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->outbound.resize(workers_.size());
  }

  HASHKIT_RETURN_IF_ERROR(SetupListeners());

  if (options_.memcached_port >= 0) {
    if (options_.memcached_port > 65535) {
      return Status::InvalidArgument("memcached port out of range");
    }
    if (options_.cluster != nullptr) {
      // Text commands cannot carry MOVED redirects or cluster sub-ops;
      // refusing at startup beats silently wrong routing.
      return Status::InvalidArgument("memcached listener is incompatible with cluster mode");
    }
    HASHKIT_RETURN_IF_ERROR(SetupMcListeners());
  }

  if (options_.metrics_port >= 0) {
    if (options_.metrics_port > 65535) {
      return Status::InvalidArgument("metrics port out of range");
    }
    if (!metrics_loop_.ok()) {
      return Status::IoError("epoll setup failed for metrics");
    }
    const int one = 1;
    metrics_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (metrics_fd_ < 0) {
      return Errno("socket (metrics)");
    }
    (void)::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in maddr = {};
    maddr.sin_family = AF_INET;
    maddr.sin_port = htons(static_cast<uint16_t>(options_.metrics_port));
    (void)::inet_pton(AF_INET, options_.host.c_str(), &maddr.sin_addr);
    if (::bind(metrics_fd_, reinterpret_cast<struct sockaddr*>(&maddr), sizeof(maddr)) != 0) {
      return Errno("bind (metrics)");
    }
    if (::listen(metrics_fd_, 16) != 0) {
      return Errno("listen (metrics)");
    }
    HASHKIT_RETURN_IF_ERROR(BoundPort(metrics_fd_, &metrics_port_));
  }

  // Register everything before spawning threads: EventLoop's callback map
  // is not locked, so all Adds happen-before Run.
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    uint32_t accept_events = EPOLLIN;
#ifdef EPOLLEXCLUSIVE
    if (!reuse_port_) {
      // Shared fd: wake exactly one worker per incoming connection.
      accept_events |= EPOLLEXCLUSIVE;
    }
#endif
    HASHKIT_RETURN_IF_ERROR(w->loop.Add(w->listen_fd, accept_events, [this, w](uint32_t) {
      AcceptReady(w, /*text=*/false);
    }));
    if (w->mc_listen_fd >= 0) {
      uint32_t mc_events = EPOLLIN;
#ifdef EPOLLEXCLUSIVE
      if (!mc_reuse_port_) {
        mc_events |= EPOLLEXCLUSIVE;
      }
#endif
      HASHKIT_RETURN_IF_ERROR(w->loop.Add(w->mc_listen_fd, mc_events, [this, w](uint32_t) {
        AcceptReady(w, /*text=*/true);
      }));
    }
    if (options_.io_uring) {
      w->uring_ok = w->uring.Init(256);
      if (w->uring_ok) {
        HASHKIT_RETURN_IF_ERROR(w->loop.Add(w->uring.ring_fd(), EPOLLIN,
                                            [this, w](uint32_t) { UringReap(w); }));
      }
    }
    w->loop.SetAfterPoll([this, w] { RunBatch(w); });
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    const bool sweep = options_.idle_timeout_ms > 0;
    worker->thread = std::thread([this, w, sweep] {
      w->loop.Run(sweep ? EventLoop::Task([this, w] { SweepIdle(w); }) : EventLoop::Task(),
                  1000);
    });
  }
  if (metrics_fd_ >= 0) {
    HASHKIT_RETURN_IF_ERROR(
        metrics_loop_.Add(metrics_fd_, EPOLLIN, [this](uint32_t) { MetricsReady(); }));
    metrics_thread_ = std::thread([this] { metrics_loop_.Run(); });
  }
  return Status::Ok();
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) {
    return;
  }
  metrics_loop_.Stop();
  if (metrics_thread_.joinable()) {
    metrics_thread_.join();
  }
  if (metrics_fd_ >= 0) {
    ::close(metrics_fd_);
    metrics_fd_ = -1;
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    // The close-all task runs on the loop thread: either before the next
    // poll or in the loop's final drain after Stop().  Connections parked
    // in uring_closing are force-closed — the loop is exiting, so their
    // completions will never be reaped.
    w->loop.Post([this, w] {
      std::vector<int> fds;
      fds.reserve(w->conns.size());
      for (const auto& [fd, conn] : w->conns) {
        fds.push_back(fd);
      }
      for (const int fd : fds) {
        CloseConnection(w, fd, /*from_idle_sweep=*/false);
      }
      for (const auto& [fd, conn] : w->conns) {
        ::close(fd);
        stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
      }
      w->conns.clear();
    });
    w->loop.Stop();
    if (w->thread.joinable()) {
      w->thread.join();
    }
    w->uring.Close();
    if (w->owns_listen && w->listen_fd >= 0) {
      ::close(w->listen_fd);
      w->listen_fd = -1;
    }
    if (w->owns_mc_listen && w->mc_listen_fd >= 0) {
      ::close(w->mc_listen_fd);
      w->mc_listen_fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (mc_listen_fd_ >= 0) {
    ::close(mc_listen_fd_);
    mc_listen_fd_ = -1;
  }
}

void Server::AcceptReady(Worker* worker, bool text) {
  const int listen_fd = text ? worker->mc_listen_fd : worker->listen_fd;
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN (drained) or a transient accept error
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
    if (text) {
      stats_.mc_connections.fetch_add(1, std::memory_order_relaxed);
    }
    AdoptConnection(worker, fd, text);
  }
}

void Server::MetricsReady() {
  for (;;) {
    const int fd = ::accept4(metrics_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN (drained) or a transient accept error
    }
    // Blocking socket with short timeouts: a stalled scraper must not
    // wedge the metrics thread.
    struct timeval tv = {};
    tv.tv_sec = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    // Read whatever request line arrives; contents are ignored — every
    // path serves the same exposition.
    char buf[4096];
    (void)::recv(fd, buf, sizeof(buf), 0);
    const std::string body = RenderMetricsText();
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n\r\n";
    resp += body;
    size_t off = 0;
    while (off < resp.size()) {
      const ssize_t n = ::send(fd, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        break;  // send timeout or dead scraper; drop this scrape
      }
      off += static_cast<size_t>(n);
    }
    ::close(fd);
  }
}

void Server::AdoptConnection(Worker* worker, int fd, bool text) {
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->gen = ++worker->next_gen;
  conn->epoll_mask = EPOLLIN;
  conn->text = text;
  Connection* raw = conn.get();
  worker->conns[fd] = std::move(conn);
  const Status st = worker->loop.Add(
      fd, raw->epoll_mask, [this, worker, fd](uint32_t events) {
        ConnectionReady(worker, fd, events);
      });
  if (!st.ok()) {
    worker->conns.erase(fd);
    ::close(fd);
    stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::CloseConnection(Worker* worker, int fd, bool from_idle_sweep) {
  const auto it = worker->conns.find(fd);
  if (it == worker->conns.end()) {
    return;
  }
  Connection* conn = it->second.get();
  if (conn->uring_closing) {
    return;  // already draining toward close
  }
  if (conn->backup_active) {
    (void)store_->BackupEnd();  // do not let a dead client pin the snapshot
    conn->backup_active = false;
  }
  if (!conn->slots.empty()) {
    // Ops from this connection may still be executing in a batch; their
    // completions are dropped by the gen/slot check.  Give their admission
    // slots back now so a churning client cannot pin the core at its
    // inflight cap.
    worker->inflight.fetch_sub(static_cast<int64_t>(conn->slots.size()),
                               std::memory_order_relaxed);
    conn->slots.clear();
  }
  (void)worker->loop.Remove(fd);
  if (conn->uring_inflight) {
    // The kernel holds iovecs into conn->out: defer the close (and the fd
    // release — the fd pins the uring op's target) until the completion is
    // reaped.  shutdown() makes the writev finish promptly.
    conn->uring_closing = true;
    (void)::shutdown(fd, SHUT_RDWR);
    return;
  }
  ::close(fd);
  worker->conns.erase(it);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  if (from_idle_sweep) {
    stats_.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::SweepIdle(Worker* worker) {
  const auto deadline = Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : worker->conns) {
    // A connection with queued responses or an in-flight kernel write is
    // busy by definition, whatever its last socket activity.
    if (!conn->slots.empty() || conn->uring_inflight || conn->uring_closing) {
      continue;
    }
    if (conn->last_active < deadline) {
      idle.push_back(fd);
    }
  }
  for (const int fd : idle) {
    CloseConnection(worker, fd, /*from_idle_sweep=*/true);
  }
}

void Server::ConnectionReady(Worker* worker, int fd, uint32_t events) {
  const auto it = worker->conns.find(fd);
  if (it == worker->conns.end()) {
    return;
  }
  Connection* conn = it->second.get();
  if (conn->uring_closing) {
    return;
  }
  conn->last_active = Clock::now();

  // Drain readable bytes before honoring a hangup: a peer that wrote and
  // closed in one breath still gets its frames served (and its malformed
  // input counted).
  if ((events & EPOLLIN) != 0) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        stats_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      conn->peer_closed = true;  // 0 = orderly shutdown; <0 = connection error
      break;
    }
    if (conn->text) {
      (void)IngestTextCommands(worker, conn);
    } else if (batching_) {
      IngestFrames(worker, conn);
    } else {
      (void)ServeBufferedFrames(conn);
    }
  } else if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    conn->peer_closed = true;
  }

  // Emission, flushing, close, and epoll-mask maintenance all happen in
  // FinishRound at the end of this epoll round, after the batch executed.
  if (!conn->touched_round) {
    conn->touched_round = true;
    worker->touched.push_back(fd);
  }
}

bool Server::IngestFrames(Worker* worker, Connection* conn) {
  const int budget =
      options_.batch_ops > 0 ? options_.batch_ops : std::numeric_limits<int>::max();
  int served = 0;
  while (served < budget) {
    Request req;
    size_t consumed = 0;
    std::string error;
    switch (DecodeRequest(&conn->in, &req, &consumed, &error)) {
      case DecodeResult::kNeedMore:
        return true;
      case DecodeResult::kMalformed: {
        stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        // The error response rides the slot queue like any other, so
        // responses already owed to this client still go out first.
        Slot slot;
        slot.state = Slot::State::kDone;
        slot.resp.op = Opcode::kPing;
        slot.resp.status = StatusCode::kInvalidArgument;
        slot.resp.value = "malformed frame: " + error;
        conn->slots.push_back(std::move(slot));
        worker->inflight.fetch_add(1, std::memory_order_relaxed);
        conn->close_after_flush = true;
        return true;
      }
      case DecodeResult::kFrame:
        break;
    }
    ++served;

    const bool key_op =
        req.op == Opcode::kGet || req.op == Opcode::kPut || req.op == Opcode::kDel;
    // read_only mutations go through Dispatch for the canonical refusal.
    const bool batchable = key_op && !(options_.read_only && req.op != Opcode::kGet);

    if (batchable) {
      stats_.CountRequest(req.op);
      uint64_t expire_at_ms = 0;
      if (req.op == Opcode::kPut && (req.flags & kFlagPutTtl) != 0) {
        Status tst;
        if (!store_->Caps().ttl) {
          tst = Status::Unsupported("store opened without TTL support");
        } else if (req.value.size() < kPutTtlPrefixBytes) {
          tst = Status::InvalidArgument("PUT+ttl wants a u32 ttl_ms value prefix");
        }
        if (!tst.ok()) {
          Slot slot;
          slot.state = Slot::State::kDone;
          slot.resp.op = req.op;
          slot.resp.seq = req.seq;
          slot.resp.status = tst.code();
          slot.resp.value = tst.message();
          conn->slots.push_back(std::move(slot));
          worker->inflight.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const uint32_t ttl_ms =
            DecodeU32(reinterpret_cast<const uint8_t*>(req.value.data()));
        req.value.erase(0, kPutTtlPrefixBytes);
        if (ttl_ms != 0) {
          expire_at_ms = kv::TtlNowMs() + ttl_ms;
        }
      }
      const int64_t max = static_cast<int64_t>(options_.max_inflight);
      const int64_t inflight = worker->inflight.load(std::memory_order_relaxed);
      if (options_.overload_policy == ServerOptions::OverloadPolicy::kShed &&
          max > 0 && inflight >= max) {
        // Shed: answer immediately with a retry-after hint scaled by how
        // far past the cap this core is (1..100 ms).
        const int64_t excess = inflight - max;
        const uint32_t hint =
            static_cast<uint32_t>(1 + std::min<int64_t>(99, (excess * 100) / max));
        Slot slot;
        slot.state = Slot::State::kDone;
        slot.resp.op = req.op;
        slot.resp.seq = req.seq;
        slot.resp.status = StatusCode::kOverloaded;
        EncodeRetryAfter(hint, &slot.resp.key);
        slot.resp.value = "overloaded";
        conn->slots.push_back(std::move(slot));
        worker->inflight.fetch_add(1, std::memory_order_relaxed);
        worker->shed.fetch_add(1, std::memory_order_relaxed);
        stats_.ops_shed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      worker->hotkeys.Record(req.key);
      PendingOp op;
      op.origin = worker->index;
      op.fd = conn->fd;
      op.gen = conn->gen;
      op.slot = conn->base_slot + conn->slots.size();
      op.op = req.op;
      op.flags = req.flags;
      op.seq = req.seq;
      op.t0 = MonotonicNanos();
      op.expire_at_ms = expire_at_ms;
      op.key = std::move(req.key);
      op.value = std::move(req.value);
      conn->slots.emplace_back();  // kPending
      worker->inflight.fetch_add(1, std::memory_order_relaxed);
      RouteBatchedOp(worker, std::move(op));
      continue;
    }

    // Barrier op (SCAN, SYNC, STATS, BACKUP, PING, ...): runs only after
    // every earlier response is complete.  With nothing pending it runs
    // right now — the common case for control-plane traffic.
    if (conn->slots.empty()) {
      Response resp = Dispatch(conn, req);
      AppendResponse(conn, std::move(resp));
    } else {
      Slot slot;
      slot.state = Slot::State::kBarrier;
      slot.barrier_req = std::move(req);
      conn->slots.push_back(std::move(slot));
      worker->inflight.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Budget exhausted with bytes still buffered: hand the rest to the next
  // round via a posted task, after every other ready connection has had
  // its turn (burst pacing — one firehose cannot starve its neighbors).
  if (!conn->in.empty() && !conn->in_backlog && !conn->close_after_flush) {
    conn->in_backlog = true;
    const int fd = conn->fd;
    const uint64_t gen = conn->gen;
    worker->loop.Post([this, worker, fd, gen] {
      const auto it = worker->conns.find(fd);
      if (it == worker->conns.end()) {
        return;
      }
      Connection* c = it->second.get();
      if (c->gen != gen || c->uring_closing) {
        return;
      }
      c->in_backlog = false;
      IngestFrames(worker, c);
      worker->touched.push_back(fd);
    });
  }
  return true;
}

void Server::RouteBatchedOp(Worker* worker, PendingOp&& op) {
  const size_t owner =
      forwarding_ ? store_->PartitionOf(op.key) % workers_.size() : worker->index;
  if (owner == worker->index) {
    worker->local_ops.push_back(std::move(op));
  } else {
    worker->outbound[owner].push_back(std::move(op));
    worker->forwarded.fetch_add(1, std::memory_order_relaxed);
    stats_.ops_forwarded.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::RunBatch(Worker* worker) {
  if (forwarding_) {
    // 0. Drain the mailbox: completions coming home settle into their
    // slots (flushed in step 3), op batches forwarded by peer cores join
    // this round's local_ops.
    worker->op_inbox_scratch.clear();
    worker->comp_inbox_scratch.clear();
    {
      const std::lock_guard<std::mutex> lock(worker->inbox_mu);
      worker->op_inbox_scratch.swap(worker->op_inbox);
      worker->comp_inbox_scratch.swap(worker->comp_inbox);
    }
    Connection* hint = nullptr;
    for (OpCompletion& done : worker->comp_inbox_scratch) {
      DeliverCompletion(worker, std::move(done), &hint);
    }
    for (PendingOp& op : worker->op_inbox_scratch) {
      worker->local_ops.push_back(std::move(op));
    }

    // 1. Forward foreign-partition ops to their owner cores' mailboxes;
    // they execute in the owner's next RunBatch.
    for (size_t dest = 0; dest < worker->outbound.size(); ++dest) {
      auto& queue = worker->outbound[dest];
      if (queue.empty() || dest == worker->index) {
        continue;
      }
      Worker* dw = workers_[dest].get();
      {
        const std::lock_guard<std::mutex> lock(dw->inbox_mu);
        dw->op_inbox.insert(dw->op_inbox.end(),
                            std::make_move_iterator(queue.begin()),
                            std::make_move_iterator(queue.end()));
      }
      queue.clear();
      dw->loop.Notify();
    }
  }

  // 2. Execute everything this core owns in one store call.  The swap with
  // the scratch vector hands local_ops a warmed buffer back for the next
  // round instead of forcing a regrow from zero.
  if (!worker->local_ops.empty()) {
    worker->ops_scratch.clear();
    worker->ops_scratch.swap(worker->local_ops);
    ExecuteOps(worker, worker->ops_scratch);
  }

  // 3. Emit + flush every connection whose state changed this round.
  if (!worker->touched.empty()) {
    worker->touched_scratch.clear();
    worker->touched_scratch.swap(worker->touched);
    for (const int fd : worker->touched_scratch) {
      (void)FinishRound(worker, fd);
    }
  }

  // 4. Defer-policy resume: once the backlog drained to half the cap,
  // reopen the paused connections' read sides.
  if (options_.overload_policy == ServerOptions::OverloadPolicy::kDefer &&
      options_.max_inflight > 0 && !worker->paused_fds.empty() &&
      worker->inflight.load(std::memory_order_relaxed) <=
          static_cast<int64_t>(options_.max_inflight / 2)) {
    std::vector<int> paused;
    paused.swap(worker->paused_fds);
    for (const int fd : paused) {
      const auto it = worker->conns.find(fd);
      if (it == worker->conns.end() || it->second->uring_closing) {
        continue;
      }
      it->second->paused = false;
      SyncEpollMask(worker, it->second.get());
    }
  }
}

void Server::ExecuteOps(Worker* worker, std::vector<PendingOp>& ops) {
  const size_t n = ops.size();
  std::vector<kv::BatchOp>& bops = worker->bop_scratch;
  std::vector<OpCompletion>& comps = worker->comp_scratch;
  bops.clear();
  bops.resize(n);
  comps.clear();
  comps.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const PendingOp& op = ops[i];
    comps[i].fd = op.fd;
    comps[i].gen = op.gen;
    comps[i].slot = op.slot;
    comps[i].op = op.op;
    comps[i].t0 = op.t0;
    comps[i].resp.op = op.op;
    comps[i].resp.seq = op.seq;
    switch (op.op) {
      case Opcode::kPut:
        bops[i].kind = kv::BatchOp::Kind::kPut;
        bops[i].key = op.key;
        bops[i].value = op.value;
        bops[i].overwrite = (op.flags & kFlagNoOverwrite) == 0;
        bops[i].expire_at_ms = op.expire_at_ms;
        break;
      case Opcode::kDel:
        bops[i].kind = kv::BatchOp::Kind::kDelete;
        bops[i].key = op.key;
        break;
      default:  // kGet — the only other op routed into batches
        bops[i].kind = kv::BatchOp::Kind::kGet;
        bops[i].key = op.key;
        bops[i].value_out = &comps[i].resp.value;
        break;
    }
  }

  // One store call: one lock acquisition per touched shard, one WAL
  // group-commit fsync shared by every write in the batch.
  (void)store_->ApplyBatch(std::span<kv::BatchOp>(bops));

  worker->batches.fetch_add(1, std::memory_order_relaxed);
  worker->batched_ops.fetch_add(n, std::memory_order_relaxed);
  worker->batch_size.Record(n);
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  stats_.batched_ops.fetch_add(n, std::memory_order_relaxed);
  stats_.batch_size.Record(n);

  for (size_t i = 0; i < n; ++i) {
    const Status& st = bops[i].result;
    comps[i].resp.status = st.code();
    if (!st.ok() && comps[i].resp.value.empty()) {
      comps[i].resp.value = st.message();
    }
  }

  Connection* hint = nullptr;
  if (!forwarding_) {
    for (size_t i = 0; i < n; ++i) {
      DeliverCompletion(worker, std::move(comps[i]), &hint);
    }
    return;
  }
  std::vector<std::vector<OpCompletion>>& remote = worker->remote_scratch;
  remote.resize(workers_.size());
  for (size_t i = 0; i < n; ++i) {
    if (ops[i].origin == worker->index) {
      DeliverCompletion(worker, std::move(comps[i]), &hint);
    } else {
      remote[ops[i].origin].push_back(std::move(comps[i]));
    }
  }
  for (size_t origin = 0; origin < remote.size(); ++origin) {
    auto& batch = remote[origin];
    if (batch.empty()) {
      continue;
    }
    Worker* ow = workers_[origin].get();
    {
      const std::lock_guard<std::mutex> lock(ow->inbox_mu);
      ow->comp_inbox.insert(ow->comp_inbox.end(),
                            std::make_move_iterator(batch.begin()),
                            std::make_move_iterator(batch.end()));
    }
    batch.clear();
    ow->loop.Notify();
  }
}

void Server::DeliverCompletion(Worker* worker, OpCompletion&& done,
                               Connection** hint) {
  stats_.RecordLatency(done.op, MonotonicNanos() - done.t0);
  // Pipelined completions arrive in runs that share a connection; the
  // caller-scoped hint turns 32 hash lookups into one.  The hint cannot
  // dangle inside one delivery loop: nothing in here closes a connection.
  Connection* conn;
  if (hint != nullptr && *hint != nullptr && (*hint)->fd == done.fd) {
    conn = *hint;
  } else {
    const auto it = worker->conns.find(done.fd);
    if (it == worker->conns.end()) {
      return;
    }
    conn = it->second.get();
    if (hint != nullptr) {
      *hint = conn;
    }
  }
  // Stale guard: the fd may have been reused by a newer connection, or the
  // slots cleared by a close that raced this completion.
  if (conn->gen != done.gen || conn->uring_closing || done.slot < conn->base_slot) {
    return;
  }
  const size_t idx = static_cast<size_t>(done.slot - conn->base_slot);
  if (idx >= conn->slots.size()) {
    return;
  }
  Slot& slot = conn->slots[idx];
  slot.state = Slot::State::kDone;
  slot.resp = std::move(done.resp);
  if (!conn->touched_round) {
    conn->touched_round = true;
    worker->touched.push_back(done.fd);
  }
}

void Server::EmitReady(Worker* worker, Connection* conn) {
  while (!conn->slots.empty()) {
    Slot& front = conn->slots.front();
    if (front.state == Slot::State::kDone) {
      if (conn->text) {
        AppendTextResponse(conn, front);
      } else {
        AppendResponse(conn, std::move(front.resp));
      }
    } else if (front.state == Slot::State::kBarrier) {
      // Every earlier response is out of the queue: the cross-key op now
      // sees all of this connection's prior writes.
      if (conn->text) {
        front.resp.value = DispatchText(conn, front.mc->cmd);
        AppendTextResponse(conn, front);
      } else {
        Response resp = Dispatch(conn, front.barrier_req);
        AppendResponse(conn, std::move(resp));
      }
    } else {
      break;  // kPending: still executing somewhere
    }
    conn->slots.pop_front();
    ++conn->base_slot;
    worker->inflight.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool Server::FinishRound(Worker* worker, int fd) {
  const auto it = worker->conns.find(fd);
  if (it == worker->conns.end()) {
    return false;  // already closed this round (duplicates in `touched`)
  }
  Connection* conn = it->second.get();
  // Re-arm the touch latch before any early-out: a later round's delivery
  // must be able to queue this connection again.
  conn->touched_round = false;
  if (conn->uring_closing) {
    return false;
  }
  EmitReady(worker, conn);
  if (!FlushWrites(worker, conn)) {
    return false;  // connection closed on write
  }
  if (conn->peer_closed) {
    CloseConnection(worker, fd, /*from_idle_sweep=*/false);
    return false;
  }
  SyncEpollMask(worker, conn);
  return true;
}

void Server::AppendResponse(Connection* conn, Response&& resp) {
  // Header and key coalesce into the tail segment; the value (the bulk of
  // a GET) moves in as its own segment — never copied into a flat frame.
  // The scratch is per loop thread so the 20+key bytes never heap-allocate.
  static thread_local std::string head;
  head.clear();
  EncodeResponseHeader(resp, &head);
  head += resp.key;
  conn->out.Append(head);
  conn->out.AppendOwned(std::move(resp.value));
}

bool Server::FlushWrites(Worker* worker, Connection* conn) {
  if (conn->uring_inflight) {
    return true;  // the reap continues this flush
  }
  if (worker->uring_ok && !conn->out.empty()) {
    conn->uring_iov.resize(kMaxIov);
    const size_t cnt = conn->out.FillIovecs(conn->uring_iov.data(), kMaxIov);
    if (cnt > 0) {
      conn->out.Freeze();
      if (worker->uring.SubmitWritev(conn->fd, conn->uring_iov.data(),
                                     static_cast<unsigned>(cnt),
                                     static_cast<uint64_t>(conn->fd))) {
        conn->uring_inflight = true;
        return true;
      }
      conn->out.Unfreeze();  // ring full or enter failed: write synchronously
    }
  }
  while (!conn->out.empty()) {
    struct iovec iov[kMaxIov];
    const size_t cnt = conn->out.FillIovecs(iov, kMaxIov);
    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    // MSG_NOSIGNAL: a peer that already closed must surface as EPIPE, not
    // a process-wide SIGPIPE.
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.Advance(static_cast<size_t>(n));
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    CloseConnection(worker, conn->fd, /*from_idle_sweep=*/false);
    return false;
  }
  if (conn->out.empty() && conn->close_after_flush && conn->slots.empty()) {
    CloseConnection(worker, conn->fd, /*from_idle_sweep=*/false);
    return false;
  }
  return true;
}

void Server::SyncEpollMask(Worker* worker, Connection* conn) {
  if (conn->uring_closing) {
    return;
  }
  // Defer policy: at or above the inflight cap the core stops reading
  // (classic backpressure).  The resume sweep in RunBatch reopens reads
  // once the backlog halves.
  bool pause = false;
  if (options_.overload_policy == ServerOptions::OverloadPolicy::kDefer &&
      options_.max_inflight > 0 &&
      worker->inflight.load(std::memory_order_relaxed) >=
          static_cast<int64_t>(options_.max_inflight)) {
    pause = true;
  }
  if (pause && !conn->paused) {
    conn->paused = true;
    worker->paused_fds.push_back(conn->fd);
    worker->deferred.fetch_add(1, std::memory_order_relaxed);
    stats_.ops_deferred.fetch_add(1, std::memory_order_relaxed);
  } else if (!pause) {
    conn->paused = false;
  }
  uint32_t want = 0;
  if (!conn->close_after_flush && !conn->peer_closed && !conn->paused &&
      conn->out.pending() <= options_.max_buffered_bytes) {
    want |= EPOLLIN;
  }
  if (conn->out.pending() > 0 && !conn->uring_inflight) {
    want |= EPOLLOUT;
  }
  if (want != conn->epoll_mask) {
    conn->epoll_mask = want;
    (void)worker->loop.Modify(conn->fd, want);
  }
}

void Server::UringReap(Worker* worker) {
  UringQueue::Completion comps[64];
  for (;;) {
    const size_t n = worker->uring.Reap(comps, 64);
    if (n == 0) {
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      const int fd = static_cast<int>(comps[i].user_data);
      const auto it = worker->conns.find(fd);
      if (it == worker->conns.end()) {
        continue;
      }
      Connection* conn = it->second.get();
      conn->uring_inflight = false;
      const int32_t res = comps[i].res;
      conn->out.Advance(res > 0 ? static_cast<size_t>(res) : 0);
      conn->out.Unfreeze();
      if (conn->uring_closing) {
        // The deferred close from CloseConnection: the kernel is done with
        // our buffers, release the fd and the entry.
        ::close(fd);
        worker->conns.erase(it);
        stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      if (res > 0) {
        stats_.bytes_out.fetch_add(static_cast<uint64_t>(res), std::memory_order_relaxed);
        worker->touched.push_back(fd);  // FinishRound continues the flush
      } else if (res == -EAGAIN || res == -EINTR) {
        worker->touched.push_back(fd);
      } else {
        CloseConnection(worker, fd, /*from_idle_sweep=*/false);
      }
    }
  }
}

Response Server::Dispatch(Connection* conn, const Request& req) {
  stats_.CountRequest(req.op);
  const uint64_t t0 = MonotonicNanos();
  Response resp;
  resp.op = req.op;
  resp.seq = req.seq;

  // The cluster node gets first refusal: ownership checks and MOVED replies
  // for data ops, plus the MAP_GET/MIGRATE handling a standalone server
  // does not have.  It preserves op and fills status/payload; seq stays
  // whatever we stamped above.
  if (options_.cluster != nullptr && options_.cluster->HandleRequest(req, &resp)) {
    resp.seq = req.seq;
    stats_.RecordLatency(req.op, MonotonicNanos() - t0);
    return resp;
  }

  Status st;
  switch (req.op) {
    case Opcode::kPing:
      resp.value = req.value;  // echo
      break;
    case Opcode::kPut: {
      if (options_.read_only) {
        st = Status::Unsupported("read-only replica");
        break;
      }
      const bool overwrite = (req.flags & kFlagNoOverwrite) == 0;
      if ((req.flags & kFlagPutTtl) == 0) {
        st = store_->Put(req.key, req.value, overwrite);
      } else if (!store_->Caps().ttl) {
        st = Status::Unsupported("store opened without TTL support");
      } else if (req.value.size() < kPutTtlPrefixBytes) {
        st = Status::InvalidArgument("PUT+ttl wants a u32 ttl_ms value prefix");
      } else {
        const uint32_t ttl_ms =
            DecodeU32(reinterpret_cast<const uint8_t*>(req.value.data()));
        const uint64_t expire = ttl_ms == 0 ? 0 : kv::TtlNowMs() + ttl_ms;
        st = store_->PutWithTtl(req.key,
                                std::string_view(req.value).substr(kPutTtlPrefixBytes),
                                overwrite, expire);
      }
      break;
    }
    case Opcode::kGet:
      st = store_->Get(req.key, &resp.value);
      break;
    case Opcode::kDel:
      st = options_.read_only ? Status::Unsupported("read-only replica")
                              : store_->Delete(req.key);
      break;
    case Opcode::kScan: {
      const bool first = (req.flags & kFlagScanFirst) != 0;
      // Per-connection snapshot cursor wherever the store supports one: a
      // restarted (or fresh) SCAN pins a point-in-time view private to
      // this connection, so pipelined scans on two connections no longer
      // interleave through the store's single shared cursor, and writers
      // only wait out one Next at a time.  Stores without snapshots keep
      // the legacy shared-cursor behaviour.
      if (store_->Caps().snapshots) {
        if (first || conn->scan_cursor == nullptr) {
          auto cursor = store_->NewSnapshotCursor();
          if (!cursor.ok()) {
            st = cursor.status();
            break;
          }
          conn->scan_cursor = std::move(cursor).value();
        }
        st = conn->scan_cursor->Next(&resp.key, &resp.value);
        if (st.IsNotFound()) {
          conn->scan_cursor.reset();  // release the snapshot promptly
        }
      } else {
        st = store_->Scan(&resp.key, &resp.value, first);
      }
      break;
    }
    case Opcode::kStats:
      resp.value = RenderStatsText();
      break;
    case Opcode::kSync:
      st = options_.read_only ? Status::Unsupported("read-only replica") : store_->Sync();
      break;
    case Opcode::kBackup:
      resp = DispatchBackup(conn, req);
      stats_.RecordLatency(req.op, MonotonicNanos() - t0);
      return resp;
    case Opcode::kReplicate:
      resp = DispatchReplicate(req);
      stats_.RecordLatency(req.op, MonotonicNanos() - t0);
      return resp;
    case Opcode::kTouch: {
      if (options_.read_only) {
        st = Status::Unsupported("read-only replica");
        break;
      }
      if (!store_->Caps().ttl) {
        st = Status::Unsupported("store opened without TTL support");
        break;
      }
      if (req.value.size() != 4) {
        st = Status::InvalidArgument("TOUCH wants value = u32 ttl_ms");
        break;
      }
      const uint32_t ttl_ms =
          DecodeU32(reinterpret_cast<const uint8_t*>(req.value.data()));
      st = store_->Touch(req.key, ttl_ms == 0 ? 0 : kv::TtlNowMs() + ttl_ms);
      break;
    }
    case Opcode::kMapGet:
    case Opcode::kMigrate:
      st = Status::Unsupported("not a cluster node");
      break;
    case Opcode::kMoved:
      st = Status::Unsupported("MOVED is response-only");
      break;
    default:
      // Well-framed but unknown to this build (newer peer): answer rather
      // than disconnect, so the sender can fall back per opcode.
      st = Status::Unsupported("unknown opcode " +
                               std::to_string(static_cast<unsigned>(req.op)));
      break;
  }
  resp.status = st.code();
  if (!st.ok() && resp.value.empty()) {
    resp.value = st.message();
  }
  stats_.RecordLatency(req.op, MonotonicNanos() - t0);
  return resp;
}

Response Server::DispatchBackup(Connection* conn, const Request& req) {
  Response resp;
  resp.op = req.op;
  resp.seq = req.seq;
  Status st;
  switch (req.flags) {
    case kBackupBegin: {
      if (conn->backup_active) {
        st = Status::Exists("backup already begun on this connection");
        break;
      }
      const Result<kv::BackupInfo> begun = store_->BackupBegin();
      if (!begun.ok()) {
        st = begun.status();
        break;
      }
      conn->backup_active = true;
      uint8_t manifest[20];
      EncodeU32(manifest, begun.value().page_size);
      EncodeU64(manifest + 4, begun.value().page_count);
      EncodeU64(manifest + 12, begun.value().lsn);
      resp.value.assign(reinterpret_cast<const char*>(manifest), sizeof(manifest));
      break;
    }
    case kBackupPages: {
      if (req.value.size() != 12) {
        st = Status::InvalidArgument("BACKUP pages wants value = u64 first_page | u32 count");
        break;
      }
      const auto* v = reinterpret_cast<const uint8_t*>(req.value.data());
      const uint64_t first_page = DecodeU64(v);
      // Bound one response below the frame limit whatever the client asks.
      const uint32_t count = std::min(DecodeU32(v + 8), 4096u);
      st = store_->BackupReadPages(first_page, count, &resp.value);
      break;
    }
    case kBackupWal: {
      if (req.value.size() != 12) {
        st = Status::InvalidArgument("BACKUP wal wants value = u64 offset | u32 max_bytes");
        break;
      }
      const auto* v = reinterpret_cast<const uint8_t*>(req.value.data());
      const uint64_t offset = DecodeU64(v);
      const uint32_t max_bytes = std::min(DecodeU32(v + 8), kMaxValueLen - 1);
      uint64_t total = 0;
      st = store_->BackupReadWal(offset, max_bytes, &resp.value, &total);
      if (st.ok()) {
        uint8_t buf[8];
        EncodeU64(buf, total);
        resp.key.assign(reinterpret_cast<const char*>(buf), sizeof(buf));
      }
      break;
    }
    case kBackupEnd:
      st = store_->BackupEnd();
      conn->backup_active = false;
      break;
    default:
      st = Status::InvalidArgument("BACKUP wants exactly one sub-op flag");
      break;
  }
  resp.status = st.code();
  if (!st.ok() && resp.value.empty()) {
    resp.value = st.message();
  }
  return resp;
}

Response Server::DispatchReplicate(const Request& req) {
  Response resp;
  resp.op = req.op;
  resp.seq = req.seq;
  Status st;
  if (req.flags == kReplicateRead) {
    if (req.value.size() != 8) {
      st = Status::InvalidArgument("REPLICATE read wants value = u64 from_lsn");
    } else {
      const uint64_t from_lsn =
          DecodeU64(reinterpret_cast<const uint8_t*>(req.value.data()));
      uint64_t last_lsn = 0;
      st = store_->ReplicationRead(from_lsn, &resp.value, &last_lsn);
      if (st.ok()) {
        uint8_t buf[8];
        EncodeU64(buf, last_lsn);
        resp.key.assign(reinterpret_cast<const char*>(buf), sizeof(buf));
      }
    }
  } else {
    st = Status::InvalidArgument("REPLICATE wants exactly one sub-op flag");
  }
  resp.status = st.code();
  if (!st.ok() && resp.value.empty()) {
    resp.value = st.message();
  }
  return resp;
}

bool Server::ServeBufferedFrames(Connection* conn) {
  for (;;) {
    Request req;
    size_t consumed = 0;
    std::string error;
    switch (DecodeRequest(&conn->in, &req, &consumed, &error)) {
      case DecodeResult::kFrame: {
        Response resp = Dispatch(conn, req);
        AppendResponse(conn, std::move(resp));
        continue;
      }
      case DecodeResult::kNeedMore:
        return true;
      case DecodeResult::kMalformed: {
        stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.op = Opcode::kPing;
        resp.status = StatusCode::kInvalidArgument;
        resp.value = "malformed frame: " + error;
        AppendResponse(conn, std::move(resp));
        conn->close_after_flush = true;
        return true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// memcached text shim (hashkit-cache).
//
// Text connections reuse the whole batching pipeline: get/gets/set/add/
// delete become kPending slots whose ops ride the same per-core ApplyBatch
// (and cross-core forwarding) as binary traffic, while read-modify-write
// commands (replace/cas/incr/decr/touch/flush_all/stats/version) become
// kBarrier slots that run at the queue front, exactly like SCAN or SYNC on
// the binary side.  Only ingest and emission differ.

namespace {

// Strict memcached numeric payload: decimal digits only, must fit u64.
bool ParseDecimalU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) {
    return false;
  }
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (std::numeric_limits<uint64_t>::max() - d) / 10) {
      return false;
    }
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

}  // namespace

bool Server::IngestTextCommands(Worker* worker, Connection* conn) {
  const int budget =
      options_.batch_ops > 0 ? options_.batch_ops : std::numeric_limits<int>::max();
  int served = 0;
  while (served < budget) {
    // A storage command's data block is consumed before any further line
    // parsing: the <bytes> count frames the stream, not line terminators.
    if (conn->mc_data != nullptr) {
      const size_t need = conn->mc_data->bytes + 2;  // data + "\r\n"
      if (conn->in.size() < need) {
        break;
      }
      mc::Command cmd = std::move(*conn->mc_data);
      conn->mc_data.reset();
      cmd.data = conn->in.substr(0, cmd.bytes);
      const bool terminated = conn->in.compare(cmd.bytes, 2, "\r\n") == 0;
      conn->in.erase(0, need);
      ++served;
      if (!terminated) {
        // Framing is lost: answer and drop the connection, like a
        // malformed binary frame.
        stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        AppendTextSlot(worker, conn, "CLIENT_ERROR bad data chunk\r\n", false);
        conn->close_after_flush = true;
        break;
      }
      EnqueueTextStorage(worker, conn, std::move(cmd));
      continue;
    }

    const size_t eol = conn->in.find('\n');
    if (eol == std::string::npos) {
      if (conn->in.size() > mc::kMaxCommandLine) {
        stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        AppendTextSlot(worker, conn, "CLIENT_ERROR line too long\r\n", false);
        conn->close_after_flush = true;
      }
      break;
    }
    size_t line_len = eol;
    if (line_len > 0 && conn->in[line_len - 1] == '\r') {
      --line_len;
    }
    if (line_len > mc::kMaxCommandLine) {
      stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
      AppendTextSlot(worker, conn, "CLIENT_ERROR line too long\r\n", false);
      conn->close_after_flush = true;
      break;
    }
    const std::string line = conn->in.substr(0, line_len);
    conn->in.erase(0, eol + 1);
    ++served;
    if (line.empty()) {
      continue;
    }
    stats_.mc_commands.fetch_add(1, std::memory_order_relaxed);
    // The store holds the 4-byte flags prefix alongside the data, so the
    // client-visible limit is the binary value cap minus the prefix.
    mc::Command cmd = mc::ParseCommandLine(line, kMaxValueLen - 4);
    if (cmd.WantsData()) {
      conn->mc_data = std::make_unique<mc::Command>(std::move(cmd));
      continue;
    }
    RouteTextCommand(worker, conn, std::move(cmd));
    if (conn->close_after_flush) {
      break;  // quit
    }
  }

  // Budget exhausted with bytes still buffered: continue next round, after
  // every other ready connection had its turn (same pacing as binary).
  if (!conn->in.empty() && !conn->in_backlog && !conn->close_after_flush) {
    conn->in_backlog = true;
    const int fd = conn->fd;
    const uint64_t gen = conn->gen;
    worker->loop.Post([this, worker, fd, gen] {
      const auto it = worker->conns.find(fd);
      if (it == worker->conns.end()) {
        return;
      }
      Connection* c = it->second.get();
      if (c->gen != gen || c->uring_closing) {
        return;
      }
      c->in_backlog = false;
      (void)IngestTextCommands(worker, c);
      worker->touched.push_back(fd);
    });
  }
  return true;
}

void Server::AppendTextSlot(Worker* worker, Connection* conn, std::string reply,
                            bool noreply) {
  Slot slot;
  slot.state = Slot::State::kDone;
  slot.mc = std::make_unique<Slot::McCtx>();
  slot.mc->kind = mc::Command::Kind::kBad;  // raw: resp.value is the reply
  slot.mc->noreply = noreply;
  slot.resp.value = std::move(reply);
  conn->slots.push_back(std::move(slot));
  worker->inflight.fetch_add(1, std::memory_order_relaxed);
}

void Server::RouteTextCommand(Worker* worker, Connection* conn, mc::Command&& cmd) {
  using Kind = mc::Command::Kind;
  const int64_t max = static_cast<int64_t>(options_.max_inflight);
  const bool shed =
      options_.overload_policy == ServerOptions::OverloadPolicy::kShed && max > 0 &&
      worker->inflight.load(std::memory_order_relaxed) >= max;
  switch (cmd.kind) {
    case Kind::kGet:
    case Kind::kGets: {
      if (shed) {
        worker->shed.fetch_add(1, std::memory_order_relaxed);
        stats_.ops_shed.fetch_add(1, std::memory_order_relaxed);
        AppendTextSlot(worker, conn, "SERVER_ERROR temporarily overloaded\r\n", false);
        return;
      }
      for (size_t i = 0; i < cmd.keys.size(); ++i) {
        stats_.CountRequest(Opcode::kGet);
        worker->hotkeys.Record(cmd.keys[i]);
        Slot slot;  // kPending
        slot.mc = std::make_unique<Slot::McCtx>();
        slot.mc->kind = cmd.kind;
        slot.mc->gets = cmd.kind == Kind::kGets;
        slot.mc->last = i + 1 == cmd.keys.size();
        slot.mc->key = cmd.keys[i];
        PendingOp op;
        op.origin = worker->index;
        op.fd = conn->fd;
        op.gen = conn->gen;
        op.slot = conn->base_slot + conn->slots.size();
        op.op = Opcode::kGet;
        op.t0 = MonotonicNanos();
        op.key = std::move(cmd.keys[i]);
        conn->slots.push_back(std::move(slot));
        worker->inflight.fetch_add(1, std::memory_order_relaxed);
        RouteBatchedOp(worker, std::move(op));
      }
      return;
    }
    case Kind::kDelete: {
      if (options_.read_only) {
        AppendTextSlot(worker, conn, "SERVER_ERROR read-only replica\r\n", cmd.noreply);
        return;
      }
      if (shed) {
        worker->shed.fetch_add(1, std::memory_order_relaxed);
        stats_.ops_shed.fetch_add(1, std::memory_order_relaxed);
        AppendTextSlot(worker, conn, "SERVER_ERROR temporarily overloaded\r\n",
                       cmd.noreply);
        return;
      }
      stats_.CountRequest(Opcode::kDel);
      worker->hotkeys.Record(cmd.keys[0]);
      Slot slot;  // kPending
      slot.mc = std::make_unique<Slot::McCtx>();
      slot.mc->kind = Kind::kDelete;
      slot.mc->noreply = cmd.noreply;
      PendingOp op;
      op.origin = worker->index;
      op.fd = conn->fd;
      op.gen = conn->gen;
      op.slot = conn->base_slot + conn->slots.size();
      op.op = Opcode::kDel;
      op.t0 = MonotonicNanos();
      op.key = std::move(cmd.keys[0]);
      conn->slots.push_back(std::move(slot));
      worker->inflight.fetch_add(1, std::memory_order_relaxed);
      RouteBatchedOp(worker, std::move(op));
      return;
    }
    case Kind::kQuit:
      conn->close_after_flush = true;
      return;
    case Kind::kBad:
      AppendTextSlot(worker, conn, std::move(cmd.error), false);
      return;
    default: {
      // Read-modify-write / control commands: a barrier slot, executed at
      // the queue front so it sees this connection's prior writes.
      Slot slot;
      slot.state = Slot::State::kBarrier;
      slot.mc = std::make_unique<Slot::McCtx>();
      slot.mc->kind = cmd.kind;
      slot.mc->noreply = cmd.noreply;
      slot.mc->cmd = std::move(cmd);
      conn->slots.push_back(std::move(slot));
      worker->inflight.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void Server::EnqueueTextStorage(Worker* worker, Connection* conn, mc::Command&& cmd) {
  using Kind = mc::Command::Kind;
  if (!cmd.error.empty()) {
    // Oversize object: the data block was swallowed to keep framing; only
    // the pre-staged refusal goes out.
    AppendTextSlot(worker, conn, std::move(cmd.error), cmd.noreply);
    return;
  }
  if (cmd.kind == Kind::kReplace || cmd.kind == Kind::kCas) {
    Slot slot;
    slot.state = Slot::State::kBarrier;
    slot.mc = std::make_unique<Slot::McCtx>();
    slot.mc->kind = cmd.kind;
    slot.mc->noreply = cmd.noreply;
    slot.mc->cmd = std::move(cmd);
    conn->slots.push_back(std::move(slot));
    worker->inflight.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // set / add: one batched PUT.
  if (options_.read_only) {
    AppendTextSlot(worker, conn, "SERVER_ERROR read-only replica\r\n", cmd.noreply);
    return;
  }
  const uint64_t expire = mc::ExptimeToExpireAtMs(cmd.exptime, kv::TtlNowMs());
  if (expire != 0 && !store_->Caps().ttl) {
    AppendTextSlot(worker, conn,
                   "SERVER_ERROR TTL support disabled (run with --ttl)\r\n", cmd.noreply);
    return;
  }
  const int64_t max = static_cast<int64_t>(options_.max_inflight);
  if (options_.overload_policy == ServerOptions::OverloadPolicy::kShed && max > 0 &&
      worker->inflight.load(std::memory_order_relaxed) >= max) {
    worker->shed.fetch_add(1, std::memory_order_relaxed);
    stats_.ops_shed.fetch_add(1, std::memory_order_relaxed);
    AppendTextSlot(worker, conn, "SERVER_ERROR temporarily overloaded\r\n", cmd.noreply);
    return;
  }
  stats_.CountRequest(Opcode::kPut);
  worker->hotkeys.Record(cmd.keys[0]);
  Slot slot;  // kPending
  slot.mc = std::make_unique<Slot::McCtx>();
  slot.mc->kind = cmd.kind;
  slot.mc->noreply = cmd.noreply;
  PendingOp op;
  op.origin = worker->index;
  op.fd = conn->fd;
  op.gen = conn->gen;
  op.slot = conn->base_slot + conn->slots.size();
  op.op = Opcode::kPut;
  op.flags = cmd.kind == Kind::kAdd ? kFlagNoOverwrite : 0;
  op.t0 = MonotonicNanos();
  op.expire_at_ms = expire;
  op.key = std::move(cmd.keys[0]);
  mc::EncodeValue(cmd.flags, cmd.data, &op.value);
  conn->slots.push_back(std::move(slot));
  worker->inflight.fetch_add(1, std::memory_order_relaxed);
  RouteBatchedOp(worker, std::move(op));
}

std::string Server::DispatchText(Connection* conn, const mc::Command& cmd) {
  (void)conn;
  using Kind = mc::Command::Kind;
  const auto server_error = [](const Status& st) {
    return "SERVER_ERROR " + st.message() + "\r\n";
  };
  switch (cmd.kind) {
    case Kind::kReplace:
    case Kind::kCas: {
      // Get-then-put at the slot-queue front: atomic with respect to this
      // connection's pipeline; concurrent writers on other connections can
      // interleave (documented in PROTOCOL.md).
      if (options_.read_only) {
        return "SERVER_ERROR read-only replica\r\n";
      }
      const std::string& key = cmd.keys[0];
      const uint64_t expire = mc::ExptimeToExpireAtMs(cmd.exptime, kv::TtlNowMs());
      if (expire != 0 && !store_->Caps().ttl) {
        return "SERVER_ERROR TTL support disabled (run with --ttl)\r\n";
      }
      std::string existing;
      const Status gst = store_->Get(key, &existing);
      if (gst.IsNotFound()) {
        return cmd.kind == Kind::kCas ? "NOT_FOUND\r\n" : "NOT_STORED\r\n";
      }
      if (!gst.ok()) {
        return server_error(gst);
      }
      if (cmd.kind == Kind::kCas && mc::CasOf(existing) != cmd.cas) {
        return "EXISTS\r\n";
      }
      std::string enc;
      mc::EncodeValue(cmd.flags, cmd.data, &enc);
      const Status st = store_->Caps().ttl
                            ? store_->PutWithTtl(key, enc, /*overwrite=*/true, expire)
                            : store_->Put(key, enc, /*overwrite=*/true);
      return st.ok() ? "STORED\r\n" : server_error(st);
    }
    case Kind::kIncr:
    case Kind::kDecr: {
      if (options_.read_only) {
        return "SERVER_ERROR read-only replica\r\n";
      }
      const std::string& key = cmd.keys[0];
      std::string raw;
      uint64_t expire = 0;
      const Status gst = store_->Caps().ttl ? store_->GetWithExpiry(key, &raw, &expire)
                                            : store_->Get(key, &raw);
      if (gst.IsNotFound()) {
        return "NOT_FOUND\r\n";
      }
      if (!gst.ok()) {
        return server_error(gst);
      }
      uint32_t flags = 0;
      std::string_view data;
      mc::DecodeValue(raw, &flags, &data);
      uint64_t v = 0;
      if (!ParseDecimalU64(data, &v)) {
        return "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n";
      }
      // incr wraps at 2^64 and decr clamps at 0, both per memcached.  The
      // rewrite keeps the entry's flags and remaining TTL.
      v = cmd.kind == Kind::kIncr ? v + cmd.delta : (v > cmd.delta ? v - cmd.delta : 0);
      std::string enc;
      mc::EncodeValue(flags, std::to_string(v), &enc);
      const Status st = store_->Caps().ttl
                            ? store_->PutWithTtl(key, enc, /*overwrite=*/true, expire)
                            : store_->Put(key, enc, /*overwrite=*/true);
      return st.ok() ? std::to_string(v) + "\r\n" : server_error(st);
    }
    case Kind::kTouch: {
      if (options_.read_only) {
        return "SERVER_ERROR read-only replica\r\n";
      }
      if (!store_->Caps().ttl) {
        return "SERVER_ERROR TTL support disabled (run with --ttl)\r\n";
      }
      const Status st =
          store_->Touch(cmd.keys[0], mc::ExptimeToExpireAtMs(cmd.exptime, kv::TtlNowMs()));
      if (st.IsNotFound()) {
        return "NOT_FOUND\r\n";
      }
      return st.ok() ? "TOUCHED\r\n" : server_error(st);
    }
    case Kind::kFlushAll: {
      if (options_.read_only) {
        return "SERVER_ERROR read-only replica\r\n";
      }
      // Collect-then-delete: a snapshot cursor where the store offers one
      // (no interference with other scanners), the shared cursor otherwise.
      std::vector<std::string> keys;
      std::string key;
      std::string value;
      if (store_->Caps().snapshots) {
        auto cursor = store_->NewSnapshotCursor();
        if (!cursor.ok()) {
          return server_error(cursor.status());
        }
        while (cursor.value()->Next(&key, &value).ok()) {
          keys.push_back(key);
        }
      } else {
        bool first = true;
        while (store_->Scan(&key, &value, first).ok()) {
          first = false;
          keys.push_back(key);
        }
      }
      for (const std::string& k : keys) {
        const Status st = store_->Delete(k);
        if (!st.ok() && !st.IsNotFound()) {
          return server_error(st);
        }
      }
      return "OK\r\n";
    }
    case Kind::kStats: {
      std::string out;
      const auto stat = [&out](const char* name, uint64_t v) {
        out += "STAT ";
        out += name;
        out += ' ';
        out += std::to_string(v);
        out += "\r\n";
      };
      stat("curr_connections", stats_.connections_active.load(std::memory_order_relaxed));
      stat("total_connections",
           stats_.connections_accepted.load(std::memory_order_relaxed));
      stat("cmd_get", stats_.requests_by_opcode[static_cast<size_t>(Opcode::kGet)].load(
                          std::memory_order_relaxed));
      stat("cmd_set", stats_.requests_by_opcode[static_cast<size_t>(Opcode::kPut)].load(
                          std::memory_order_relaxed));
      stat("get_hits", stats_.mc_get_hits.load(std::memory_order_relaxed));
      stat("get_misses", stats_.mc_get_misses.load(std::memory_order_relaxed));
      stat("bytes_read", stats_.bytes_in.load(std::memory_order_relaxed));
      stat("bytes_written", stats_.bytes_out.load(std::memory_order_relaxed));
      stat("curr_items", store_->Size());
      out += "END\r\n";
      return out;
    }
    case Kind::kVersion:
      return "VERSION hashkit\r\n";
    default:
      return "ERROR\r\n";
  }
}

void Server::AppendTextResponse(Connection* conn, Slot& slot) {
  using Kind = mc::Command::Kind;
  const Slot::McCtx& ctx = *slot.mc;
  switch (ctx.kind) {
    case Kind::kGet:
    case Kind::kGets: {
      std::string out;
      if (slot.resp.status == StatusCode::kOk) {
        stats_.mc_get_hits.fetch_add(1, std::memory_order_relaxed);
        uint32_t flags = 0;
        std::string_view data;
        mc::DecodeValue(slot.resp.value, &flags, &data);
        out += "VALUE ";
        out += ctx.key;
        out += ' ';
        out += std::to_string(flags);
        out += ' ';
        out += std::to_string(data.size());
        if (ctx.gets) {
          out += ' ';
          out += std::to_string(mc::CasOf(slot.resp.value));
        }
        out += "\r\n";
        out.append(data.data(), data.size());
        out += "\r\n";
      } else if (slot.resp.status == StatusCode::kNotFound) {
        stats_.mc_get_misses.fetch_add(1, std::memory_order_relaxed);
        // A miss emits nothing; the END line closes the command.
      } else {
        out += "SERVER_ERROR ";
        out += slot.resp.value.empty() ? "get failed" : slot.resp.value;
        out += "\r\n";
      }
      if (ctx.last) {
        out += "END\r\n";
      }
      if (!out.empty()) {
        conn->out.Append(out);
      }
      return;
    }
    case Kind::kSet:
    case Kind::kAdd: {
      if (ctx.noreply) {
        return;
      }
      if (slot.resp.status == StatusCode::kOk) {
        conn->out.Append("STORED\r\n");
      } else if (slot.resp.status == StatusCode::kExists) {
        conn->out.Append("NOT_STORED\r\n");  // add on an existing key
      } else {
        std::string out = "SERVER_ERROR ";
        out += slot.resp.value.empty() ? "store failed" : slot.resp.value;
        out += "\r\n";
        conn->out.Append(out);
      }
      return;
    }
    case Kind::kDelete: {
      if (ctx.noreply) {
        return;
      }
      if (slot.resp.status == StatusCode::kOk) {
        conn->out.Append("DELETED\r\n");
      } else if (slot.resp.status == StatusCode::kNotFound) {
        conn->out.Append("NOT_FOUND\r\n");
      } else {
        std::string out = "SERVER_ERROR ";
        out += slot.resp.value.empty() ? "delete failed" : slot.resp.value;
        out += "\r\n";
        conn->out.Append(out);
      }
      return;
    }
    default:
      // Raw reply: barrier results, parse errors, shed/read-only notices.
      if (!ctx.noreply && !slot.resp.value.empty()) {
        conn->out.Append(slot.resp.value);
      }
      return;
  }
}

std::string Server::RenderStatsText() const {
  std::string text;
  const auto line = [&text](const std::string& key, uint64_t value) {
    text += key;
    text += '=';
    text += std::to_string(value);
    text += '\n';
  };
  line("server.connections_accepted", stats_.connections_accepted.load(std::memory_order_relaxed));
  line("server.connections_active", stats_.connections_active.load(std::memory_order_relaxed));
  line("server.bytes_in", stats_.bytes_in.load(std::memory_order_relaxed));
  line("server.bytes_out", stats_.bytes_out.load(std::memory_order_relaxed));
  line("server.malformed_frames", stats_.malformed_frames.load(std::memory_order_relaxed));
  line("server.idle_timeouts", stats_.idle_timeouts.load(std::memory_order_relaxed));
  line("server.unknown_opcodes", stats_.unknown_opcodes.load(std::memory_order_relaxed));
  line("server.batches", stats_.batches.load(std::memory_order_relaxed));
  line("server.batched_ops", stats_.batched_ops.load(std::memory_order_relaxed));
  line("server.ops_forwarded", stats_.ops_forwarded.load(std::memory_order_relaxed));
  line("server.ops_shed", stats_.ops_shed.load(std::memory_order_relaxed));
  line("server.ops_deferred", stats_.ops_deferred.load(std::memory_order_relaxed));
  line("server.mc.connections", stats_.mc_connections.load(std::memory_order_relaxed));
  line("server.mc.commands", stats_.mc_commands.load(std::memory_order_relaxed));
  line("server.mc.get_hits", stats_.mc_get_hits.load(std::memory_order_relaxed));
  line("server.mc.get_misses", stats_.mc_get_misses.load(std::memory_order_relaxed));
  AppendDistLines(&text, "server.batch_size", stats_.batch_size.Snapshot());
  // hashkit-cache: global top-K hot keys, merged across the per-core
  // Space-Saving sketches.  `count` is an upper bound on the key's access
  // frequency since startup; `error` bounds the overestimate.
  {
    std::vector<std::vector<TopKSketch::Entry>> snapshots;
    snapshots.reserve(workers_.size());
    for (const auto& w : workers_) {
      snapshots.push_back(w->hotkeys.Snapshot());
    }
    const auto top = TopKSketch::MergeTopK(snapshots, 10);
    for (size_t i = 0; i < top.size(); ++i) {
      const std::string prefix = "server.hotkeys." + std::to_string(i) + ".";
      text += prefix + "key=" + SanitizeStatsKey(top[i].key) + "\n";
      line(prefix + "count", top[i].count);
      line(prefix + "error", top[i].error);
    }
  }
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    const std::string prefix = "server.core." + std::to_string(i) + ".";
    line(prefix + "batches", w.batches.load(std::memory_order_relaxed));
    line(prefix + "batched_ops", w.batched_ops.load(std::memory_order_relaxed));
    line(prefix + "forwarded", w.forwarded.load(std::memory_order_relaxed));
    line(prefix + "shed", w.shed.load(std::memory_order_relaxed));
    line(prefix + "deferred", w.deferred.load(std::memory_order_relaxed));
    line(prefix + "inflight",
         static_cast<uint64_t>(
             std::max<int64_t>(0, w.inflight.load(std::memory_order_relaxed))));
    AppendDistLines(&text, prefix + "batch_size", w.batch_size.Snapshot());
  }
  for (size_t op = 0; op < kOpcodeCount; ++op) {
    text += "server.requests.";
    text += OpcodeName(static_cast<Opcode>(op));
    text += '=';
    text += std::to_string(stats_.requests_by_opcode[op].load(std::memory_order_relaxed));
    text += '\n';
  }
  line("server.requests.total", stats_.TotalRequests());

  for (size_t op = 0; op < kOpcodeCount; ++op) {
    std::string prefix = "server.latency.";
    prefix += OpcodeName(static_cast<Opcode>(op));
    AppendLatencyLines(&text, prefix, stats_.op_latency_ns[op].Snapshot());
  }

  text += "store.name=" + store_->Name() + "\n";
  line("store.size", store_->Size());
  kv::StoreStats store_stats;
  if (store_->Stats(&store_stats)) {
    line("store.shards", store_stats.shards);
    line("store.table.puts", store_stats.table.puts);
    line("store.table.gets", store_stats.table.gets);
    line("store.table.deletes", store_stats.table.deletes);
    line("store.table.splits", store_stats.table.splits);
    line("store.table.contractions", store_stats.table.contractions);
    line("store.table.tag_filter_skips", store_stats.table.tag_filter_skips);
    line("store.table.tag_filter_candidates", store_stats.table.tag_filter_candidates);
    line("store.table.tag_filter_false_hits", store_stats.table.tag_filter_false_hits);
    line("store.pool.hits", store_stats.pool.hits);
    line("store.pool.misses", store_stats.pool.misses);
    line("store.pool.evictions", store_stats.pool.evictions);
    line("store.pool.dirty_writebacks", store_stats.pool.dirty_writebacks);
    line("store.wal.records", store_stats.wal.records);
    line("store.wal.commits", store_stats.wal.commits);
    line("store.wal.syncs", store_stats.wal.syncs);
    line("store.wal.checkpoints", store_stats.wal.checkpoints);
    line("store.wal.bytes", store_stats.wal.bytes);
    line("store.wal.recovered_batches", store_stats.wal.recovered_batches);
    line("store.wal.recovered_pages", store_stats.wal.recovered_pages);
    line("store.ttl.expired_lazy", store_stats.ttl_expired_lazy);
    line("store.ttl.swept", store_stats.ttl_swept);
    AppendLatencyLines(&text, "store.latency.put", store_stats.latency.put);
    AppendLatencyLines(&text, "store.latency.get", store_stats.latency.get);
    AppendLatencyLines(&text, "store.latency.del", store_stats.latency.del);
    AppendLatencyLines(&text, "store.latency.sync", store_stats.latency.sync);
    AppendLatencyLines(&text, "store.pool.latency.get_hit", store_stats.pool.get_hit_ns);
    AppendLatencyLines(&text, "store.pool.latency.get_miss", store_stats.pool.get_miss_ns);
    AppendLatencyLines(&text, "store.pool.latency.writeback", store_stats.pool.writeback_ns);
    AppendLatencyLines(&text, "store.pool.latency.evict", store_stats.pool.evict_ns);
    AppendLatencyLines(&text, "store.wal.latency.commit", store_stats.wal.commit_ns);
    AppendLatencyLines(&text, "store.wal.latency.sync", store_stats.wal.sync_ns);
  }
  if (options_.cluster != nullptr) {
    options_.cluster->AppendStatsText(&text);
  }
  return text;
}

std::string Server::RenderMetricsText() const {
  std::string out;
  const auto gauge = [&out](const char* name, uint64_t value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  gauge("hashkit_connections_accepted_total",
        stats_.connections_accepted.load(std::memory_order_relaxed));
  gauge("hashkit_connections_active", stats_.connections_active.load(std::memory_order_relaxed));
  gauge("hashkit_bytes_in_total", stats_.bytes_in.load(std::memory_order_relaxed));
  gauge("hashkit_bytes_out_total", stats_.bytes_out.load(std::memory_order_relaxed));
  gauge("hashkit_malformed_frames_total",
        stats_.malformed_frames.load(std::memory_order_relaxed));
  gauge("hashkit_idle_timeouts_total", stats_.idle_timeouts.load(std::memory_order_relaxed));
  gauge("hashkit_unknown_opcodes_total",
        stats_.unknown_opcodes.load(std::memory_order_relaxed));
  gauge("hashkit_batches_total", stats_.batches.load(std::memory_order_relaxed));
  gauge("hashkit_batched_ops_total", stats_.batched_ops.load(std::memory_order_relaxed));
  gauge("hashkit_ops_forwarded_total", stats_.ops_forwarded.load(std::memory_order_relaxed));
  gauge("hashkit_ops_shed_total", stats_.ops_shed.load(std::memory_order_relaxed));
  gauge("hashkit_ops_deferred_total", stats_.ops_deferred.load(std::memory_order_relaxed));
  gauge("hashkit_mc_connections_total", stats_.mc_connections.load(std::memory_order_relaxed));
  gauge("hashkit_mc_commands_total", stats_.mc_commands.load(std::memory_order_relaxed));
  gauge("hashkit_mc_get_hits_total", stats_.mc_get_hits.load(std::memory_order_relaxed));
  gauge("hashkit_mc_get_misses_total", stats_.mc_get_misses.load(std::memory_order_relaxed));
  AppendPromSummary(&out, "hashkit_batch_size_ops", "unit=\"ops\"",
                    stats_.batch_size.Snapshot());
  {
    std::vector<std::vector<TopKSketch::Entry>> snapshots;
    snapshots.reserve(workers_.size());
    for (const auto& w : workers_) {
      snapshots.push_back(w->hotkeys.Snapshot());
    }
    const auto top = TopKSketch::MergeTopK(snapshots, 10);
    for (size_t i = 0; i < top.size(); ++i) {
      out += "hashkit_hotkey_accesses{rank=\"" + std::to_string(i) + "\",key=\"" +
             SanitizeStatsKey(top[i].key) + "\"} " + std::to_string(top[i].count) + "\n";
    }
  }
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    const std::string core = "{core=\"" + std::to_string(i) + "\"} ";
    out += "hashkit_core_batches_total" + core +
           std::to_string(w.batches.load(std::memory_order_relaxed)) + "\n";
    out += "hashkit_core_batched_ops_total" + core +
           std::to_string(w.batched_ops.load(std::memory_order_relaxed)) + "\n";
    out += "hashkit_core_ops_forwarded_total" + core +
           std::to_string(w.forwarded.load(std::memory_order_relaxed)) + "\n";
    out += "hashkit_core_ops_shed_total" + core +
           std::to_string(w.shed.load(std::memory_order_relaxed)) + "\n";
    out += "hashkit_core_ops_deferred_total" + core +
           std::to_string(w.deferred.load(std::memory_order_relaxed)) + "\n";
    out += "hashkit_core_inflight" + core +
           std::to_string(std::max<int64_t>(0, w.inflight.load(std::memory_order_relaxed))) +
           "\n";
  }
  for (size_t op = 0; op < kOpcodeCount; ++op) {
    const std::string label = "op=\"" + LowerOpcodeName(static_cast<Opcode>(op)) + "\"";
    out += "hashkit_requests_total{" + label + "} " +
           std::to_string(stats_.requests_by_opcode[op].load(std::memory_order_relaxed)) + "\n";
    AppendPromSummary(&out, "hashkit_request_latency_ns", label,
                      stats_.op_latency_ns[op].Snapshot());
  }

  gauge("hashkit_store_size", store_->Size());
  kv::StoreStats store_stats;
  if (store_->Stats(&store_stats)) {
    gauge("hashkit_store_shards", store_stats.shards);
    gauge("hashkit_table_puts_total", store_stats.table.puts);
    gauge("hashkit_table_gets_total", store_stats.table.gets);
    gauge("hashkit_table_deletes_total", store_stats.table.deletes);
    gauge("hashkit_table_splits_total", store_stats.table.splits);
    gauge("hashkit_table_contractions_total", store_stats.table.contractions);
    gauge("hashkit_table_tag_filter_skips_total", store_stats.table.tag_filter_skips);
    gauge("hashkit_table_tag_filter_candidates_total", store_stats.table.tag_filter_candidates);
    gauge("hashkit_table_tag_filter_false_hits_total", store_stats.table.tag_filter_false_hits);
    gauge("hashkit_pool_hits_total", store_stats.pool.hits);
    gauge("hashkit_pool_misses_total", store_stats.pool.misses);
    gauge("hashkit_pool_evictions_total", store_stats.pool.evictions);
    gauge("hashkit_pool_dirty_writebacks_total", store_stats.pool.dirty_writebacks);
    gauge("hashkit_wal_records_total", store_stats.wal.records);
    gauge("hashkit_wal_commits_total", store_stats.wal.commits);
    gauge("hashkit_wal_syncs_total", store_stats.wal.syncs);
    gauge("hashkit_wal_checkpoints_total", store_stats.wal.checkpoints);
    gauge("hashkit_wal_bytes_total", store_stats.wal.bytes);
    gauge("hashkit_wal_recovered_batches_total", store_stats.wal.recovered_batches);
    gauge("hashkit_wal_recovered_pages_total", store_stats.wal.recovered_pages);
    gauge("hashkit_ttl_expired_lazy_total", store_stats.ttl_expired_lazy);
    gauge("hashkit_ttl_swept_total", store_stats.ttl_swept);
    AppendPromSummary(&out, "hashkit_store_latency_ns", "op=\"put\"", store_stats.latency.put);
    AppendPromSummary(&out, "hashkit_store_latency_ns", "op=\"get\"", store_stats.latency.get);
    AppendPromSummary(&out, "hashkit_store_latency_ns", "op=\"del\"", store_stats.latency.del);
    AppendPromSummary(&out, "hashkit_store_latency_ns", "op=\"sync\"", store_stats.latency.sync);
    AppendPromSummary(&out, "hashkit_pool_latency_ns", "event=\"get_hit\"",
                      store_stats.pool.get_hit_ns);
    AppendPromSummary(&out, "hashkit_pool_latency_ns", "event=\"get_miss\"",
                      store_stats.pool.get_miss_ns);
    AppendPromSummary(&out, "hashkit_pool_latency_ns", "event=\"writeback\"",
                      store_stats.pool.writeback_ns);
    AppendPromSummary(&out, "hashkit_pool_latency_ns", "event=\"evict\"",
                      store_stats.pool.evict_ns);
    AppendPromSummary(&out, "hashkit_wal_latency_ns", "op=\"commit\"",
                      store_stats.wal.commit_ns);
    AppendPromSummary(&out, "hashkit_wal_latency_ns", "op=\"sync\"", store_stats.wal.sync_ns);
  }
  if (options_.cluster != nullptr) {
    options_.cluster->AppendMetricsText(&out);
  }
  return out;
}

}  // namespace net
}  // namespace hashkit
