// hashkit-net: a synchronous client for the hashkit wire protocol.
//
// One Client wraps one TCP connection (non-blocking under the hood, but
// every call blocks until its response or a deadline).  Single-shot calls
// mirror the KvStore surface (Put/Get/Delete/Scan/Sync plus Ping/Stats);
// Pipeline batches N requests into one write and reads the N responses
// back — the round-trip amortization the protocol's sequence numbers
// exist for.  A Client is not thread-safe; give each thread its own
// connection (the server treats every connection independently).
//
// Deadlines: every wait on the socket is bounded by ClientOptions — a
// server that accepts but never answers (or a network that blackholes
// packets) surfaces as Status::Timeout instead of hanging the caller
// forever.  After a timeout the connection's stream position is unknown;
// discard the client.

#ifndef HASHKIT_SRC_NET_CLIENT_H_
#define HASHKIT_SRC_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/proto.h"
#include "src/util/status.h"

namespace hashkit {
namespace net {

struct ClientOptions {
  // Milliseconds; <= 0 waits forever (the pre-deadline behavior).
  // recv/send deadlines are per wait, reset on progress: a slow bulk
  // transfer that keeps moving does not trip them, a stalled one does.
  int connect_timeout_ms = 10'000;
  int recv_timeout_ms = 60'000;
  int send_timeout_ms = 60'000;
};

class Client {
 public:
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<std::unique_ptr<Client>> Connect(const std::string& host, uint16_t port,
                                                 const ClientOptions& options);
  static Result<std::unique_ptr<Client>> Connect(const std::string& host, uint16_t port) {
    return Connect(host, port, ClientOptions());
  }

  // KvStore-shaped single-shot calls (one round trip each).
  Status Put(std::string_view key, std::string_view value, bool overwrite = true);
  // hashkit-cache: PUT with a relative TTL in milliseconds (0 = no expiry,
  // same as plain Put).  The server resolves the TTL to an absolute expiry
  // at ingest; requires a server whose store was opened with TTL support.
  Status PutTtl(std::string_view key, std::string_view value, uint32_t ttl_ms,
                bool overwrite = true);
  // hashkit-cache: reset (ttl_ms > 0) or clear (ttl_ms == 0) an existing
  // key's expiry without rewriting its value.
  Status Touch(std::string_view key, uint32_t ttl_ms);
  Status Get(std::string_view key, std::string* value);
  Status Delete(std::string_view key);
  // first=true restarts the server-side cursor (which is shared by every
  // connection, exactly like the in-process Scan).
  Status Scan(std::string* key, std::string* value, bool first);
  Status Sync();
  // Round-trips `payload` through the server.
  Status Ping(std::string_view payload = "");
  // The server's "key=value"-lines stats dump.
  Status Stats(std::string* text);

  // Pipelining: send every request back-to-back, then collect all
  // responses (in request order; sequence numbers are assigned and checked
  // internally).  Per-request status lives in each Response; the returned
  // Status covers transport failures only.  On error the connection is in
  // an undefined state and the client should be discarded.
  Status Pipeline(const std::vector<Request>& requests, std::vector<Response>* responses);

  // Raw single round trip for opcodes without a dedicated wrapper (BACKUP
  // and REPLICATE sub-ops build their own payloads; see proto.h).  The
  // sequence number is assigned internally; `resp` carries the server's
  // status plus key/value payload.  The returned Status covers transport
  // failures only.
  Status Call(Request req, Response* resp);

 private:
  Client(int fd, const ClientOptions& options) : fd_(fd), options_(options) {}

  Status WriteAll(const std::string& bytes);
  // Reads until `buf_` yields one complete response frame.
  Status ReadResponse(Response* out);

  int fd_;
  ClientOptions options_;
  uint32_t next_seq_ = 1;
  std::string buf_;  // unconsumed bytes from the socket
};

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_CLIENT_H_
