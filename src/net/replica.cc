#include "src/net/replica.h"

#include <fcntl.h>
#include <unistd.h>

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/util/endian.h"
#include "src/util/tempfile.h"

namespace hashkit {
namespace net {

namespace {

Status FromWire(const Response& resp) {
  if (resp.status == StatusCode::kOk) {
    return Status::Ok();
  }
  return Status(resp.status, resp.value);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// A file being streamed to "<path>.tmp": write in chunks, then fsync and
// rename into place.  Backups can exceed memory comfort; this keeps the
// download incremental where WriteFileAtomic would buffer it whole.
class StreamedFile {
 public:
  ~StreamedFile() {
    if (fd_ >= 0) {
      ::close(fd_);
      std::remove(tmp_.c_str());  // abandoned: never leave a torn target
    }
  }

  Status Open(const std::string& path) {
    path_ = path;
    tmp_ = path + ".tmp";
    fd_ = ::open(tmp_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd_ < 0) {
      return Status::IoError("open " + tmp_ + ": " + std::strerror(errno));
    }
    return Status::Ok();
  }

  Status Append(std::string_view data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IoError("write " + tmp_ + ": " + std::strerror(errno));
      }
      off += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Commit() {
    if (::fsync(fd_) != 0) {
      return Status::IoError("fsync " + tmp_ + ": " + std::strerror(errno));
    }
    ::close(fd_);
    fd_ = -1;
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
      return Status::IoError("rename " + tmp_ + ": " + std::strerror(errno));
    }
    return Status::Ok();
  }

 private:
  int fd_ = -1;
  std::string path_;
  std::string tmp_;
};

}  // namespace

Result<BackupManifest> DownloadBackup(Client* client, const std::string& dest_path) {
  if (FileExists(dest_path)) {
    return Status::Exists("backup destination exists: " + dest_path);
  }
  const std::vector<std::string> stale = StaleArtifactsFor(dest_path);
  if (!stale.empty()) {
    return Status::Exists("stale artifact in the way (db_tool clean): " + stale.front());
  }

  // Begin: pins the snapshot on this connection and hands back the manifest.
  Request req;
  Response resp;
  req.op = Opcode::kBackup;
  req.flags = kBackupBegin;
  HASHKIT_RETURN_IF_ERROR(client->Call(req, &resp));
  HASHKIT_RETURN_IF_ERROR(FromWire(resp));
  if (resp.value.size() != 20) {
    return Status::Corruption("backup manifest is " + std::to_string(resp.value.size()) +
                              " bytes, want 20");
  }
  const auto* m = reinterpret_cast<const uint8_t*>(resp.value.data());
  BackupManifest manifest;
  manifest.page_size = DecodeU32(m);
  manifest.page_count = DecodeU64(m + 4);
  manifest.lsn = DecodeU64(m + 12);

  // Page images, in batches sized well under the frame limit.
  StreamedFile image;
  HASHKIT_RETURN_IF_ERROR(image.Open(dest_path));
  const uint32_t batch = std::max<uint32_t>(1, (4u << 20) / manifest.page_size);
  for (uint64_t page = 0; page < manifest.page_count; page += batch) {
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(batch, manifest.page_count - page));
    req = Request();
    req.op = Opcode::kBackup;
    req.flags = kBackupPages;
    uint8_t v[12];
    EncodeU64(v, page);
    EncodeU32(v + 8, count);
    req.value.assign(reinterpret_cast<const char*>(v), sizeof(v));
    HASHKIT_RETURN_IF_ERROR(client->Call(req, &resp));
    HASHKIT_RETURN_IF_ERROR(FromWire(resp));
    if (resp.value.size() != static_cast<size_t>(count) * manifest.page_size) {
      return Status::Corruption("backup page batch size mismatch");
    }
    HASHKIT_RETURN_IF_ERROR(image.Append(resp.value));
  }

  // The WAL tail.  The log only grows while the snapshot pins checkpoints,
  // so reading to the total reported on the *first* chunk is a consistent
  // prefix; later appends belong to the next backup (or to REPLICATE).
  StreamedFile wal;
  HASHKIT_RETURN_IF_ERROR(wal.Open(dest_path + ".wal"));
  uint64_t offset = 0;
  uint64_t total = UINT64_MAX;
  while (offset < total) {
    req = Request();
    req.op = Opcode::kBackup;
    req.flags = kBackupWal;
    uint8_t v[12];
    EncodeU64(v, offset);
    EncodeU32(v + 8, 4u << 20);
    req.value.assign(reinterpret_cast<const char*>(v), sizeof(v));
    HASHKIT_RETURN_IF_ERROR(client->Call(req, &resp));
    HASHKIT_RETURN_IF_ERROR(FromWire(resp));
    if (resp.key.size() != 8) {
      return Status::Corruption("backup wal reply lacks the total-size key");
    }
    const uint64_t reported = DecodeU64(reinterpret_cast<const uint8_t*>(resp.key.data()));
    if (total == UINT64_MAX) {
      total = reported;
    }
    if (resp.value.empty() && offset < total) {
      return Status::Corruption("backup wal stream ended short");
    }
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(resp.value.size(), total - offset));
    HASHKIT_RETURN_IF_ERROR(wal.Append(std::string_view(resp.value).substr(0, take)));
    offset += take;
  }

  // End releases the server-side snapshot; best-effort (connection close
  // implies it).  Then publish image before wal: a crash between the two
  // renames leaves an openable, merely older, table.
  req = Request();
  req.op = Opcode::kBackup;
  req.flags = kBackupEnd;
  if (client->Call(req, &resp).ok()) {
    (void)FromWire(resp);
  }
  HASHKIT_RETURN_IF_ERROR(image.Commit());
  HASHKIT_RETURN_IF_ERROR(wal.Commit());
  return manifest;
}

Replica::Replica(kv::KvStore* store, ReplicaOptions options)
    : store_(store), options_(std::move(options)) {
  // The store is already bootstrapped (backup restored + log replayed), so
  // its LSN is the resume point — also for PollOnce calls without Start().
  applied_lsn_.store(store_->Lsn(), std::memory_order_relaxed);
}

Replica::~Replica() { Stop(); }

Status Replica::Start() {
  HASHKIT_ASSIGN_OR_RETURN(client_, Client::Connect(options_.primary_host,
                                                    options_.primary_port,
                                                    options_.client_options));
  applied_lsn_.store(store_->Lsn(), std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  poll_thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      const Status st = PollOnce();
      if (!st.ok()) {
        {
          const std::lock_guard<std::mutex> lock(error_mu_);
          if (error_.ok()) {
            error_ = st;
          }
        }
        failed_.store(true, std::memory_order_relaxed);
        std::fprintf(stderr, "replica: replication stopped: %s\n",
                     st.ToString().c_str());
        return;  // fatal (gap or transport): operator re-bootstraps
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_interval_ms));
    }
  });
  return Status::Ok();
}

void Replica::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (poll_thread_.joinable()) {
    poll_thread_.join();
  }
}

Status Replica::PollOnce() {
  if (client_ == nullptr) {
    HASHKIT_ASSIGN_OR_RETURN(client_, Client::Connect(options_.primary_host,
                                                      options_.primary_port,
                                                      options_.client_options));
  }
  const uint64_t from = applied_lsn_.load(std::memory_order_relaxed);
  Request req;
  req.op = Opcode::kReplicate;
  req.flags = kReplicateRead;
  uint8_t v[8];
  EncodeU64(v, from);
  req.value.assign(reinterpret_cast<const char*>(v), sizeof(v));
  Response resp;
  HASHKIT_RETURN_IF_ERROR(client_->Call(req, &resp));
  HASHKIT_RETURN_IF_ERROR(FromWire(resp));
  if (resp.value.empty()) {
    return Status::Ok();  // nothing past `from` yet
  }
  uint64_t applied_through = from;
  HASHKIT_RETURN_IF_ERROR(store_->ApplyReplication(resp.value, from, &applied_through));
  applied_lsn_.store(applied_through, std::memory_order_relaxed);
  return Status::Ok();
}

Status Replica::error() const {
  const std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

}  // namespace net
}  // namespace hashkit
