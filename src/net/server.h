// hashkit-net: a thread-per-core epoll TCP server exposing a KvStore.
//
// Threading model (hashkit-tpc): `workers` loops, each on its own thread
// with its own epoll set, its own accepted connections, and its own subset
// of the store's keyspace partitions (partition p belongs to core
// p % workers).  Each worker owns a SO_REUSEPORT listen socket, so the
// kernel hash-routes incoming connections across cores with no shared
// accept path; where SO_REUSEPORT is unavailable (or exclusive_accept is
// set) every worker instead polls one shared listen fd with
// EPOLLEXCLUSIVE, which wakes exactly one loop per connection — no
// thundering herd either way.  A connection lives its whole life on one
// worker thread; its buffers need no locks.
//
// Cross-connection batching: instead of calling the store per request, a
// worker drains every ready connection's decoded frames into one per-core
// batch and executes it in a single KvStore::ApplyBatch call at the end of
// the epoll round — one lock acquisition per touched shard and one WAL
// group-commit fsync shared across *connections*, not just within one
// pipeline.  Ops whose partition belongs to another core are forwarded to
// that core's loop (message passing; the data path takes no cross-core
// locks) and their responses return the same way.  Per-connection response
// order is preserved by a slot queue; ops with cross-key semantics (SCAN,
// SYNC, STATS, BACKUP, ...) act as barriers that execute only when every
// earlier response on that connection is complete.
//
// Responses are assembled zero-copy into an OutQueue (iovec segment
// chains) and flushed with sendmsg/writev; io_uring is an optional
// submission backend behind a runtime feature probe (ServerOptions::
// io_uring), falling back to sendmsg when the kernel refuses a ring.
//
// Admission control: each core bounds its pending ops (max_inflight).
// Above the bound it either sheds — answering kOverloaded immediately with
// a retry-after-ms hint in the response key — or defers, pausing reads
// (EPOLLIN off) until the backlog drains below half the bound, so p99
// stays bounded when offered load exceeds capacity.  batch_ops bounds how
// many frames one connection may feed per round (burst pacing), so a
// single firehose pipeline cannot starve its neighbors.
//
// Cluster mode (options.cluster != nullptr) keeps the original
// dispatch-per-frame path: cluster hooks interpose on every request and
// rely on their own locking discipline, so batching applies only to
// standalone and replica servers.

#ifndef HASHKIT_SRC_NET_SERVER_H_
#define HASHKIT_SRC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/net/cluster_hooks.h"
#include "src/net/event_loop.h"
#include "src/net/memcached.h"
#include "src/net/net_stats.h"
#include "src/net/proto.h"
#include "src/util/status.h"

namespace hashkit {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read back via Server::port()
  int workers = 2;
  int backlog = 128;
  int idle_timeout_ms = 60'000;        // 0 disables the idle sweep
  size_t max_buffered_bytes = 64u << 20;  // per-connection write backlog cap

  // hashkit-tpc: admission control and batching knobs.
  // Per-core cap on ops accepted but not yet answered; 0 = unlimited.
  size_t max_inflight = 4096;
  // What happens to key ops arriving above max_inflight: kShed answers
  // kOverloaded immediately (retry-after-ms hint in the response key);
  // kDefer stops reading from connections until the core drains below
  // max_inflight / 2 (classic backpressure — bounded memory, unbounded
  // client-side latency).
  enum class OverloadPolicy { kShed, kDefer };
  OverloadPolicy overload_policy = OverloadPolicy::kShed;
  // Per-connection, per-epoll-round frame budget (burst pacing).  Leftover
  // buffered frames are served next round, after every other ready
  // connection has had its turn.
  int batch_ops = 512;
  // Share one listen fd across workers with EPOLLEXCLUSIVE instead of
  // per-worker SO_REUSEPORT sockets.  Also the automatic fallback when
  // SO_REUSEPORT binding fails.
  bool exclusive_accept = false;
  // Submit response writevs through a per-core io_uring when the kernel
  // offers one; silently falls back to sendmsg when the feature probe
  // fails.  Off by default.
  bool io_uring = false;
  // Cross-core op forwarding (shared-nothing partition ownership).  kAuto
  // enables it only when the worker count fits the hardware (workers <=
  // hardware threads): oversubscribed workers pay two context switches per
  // forwarded op for zero added parallelism, so an overcommitted box runs
  // connection-affine instead (the sharded store's per-shard locks keep
  // that correct).  kOn / kOff force either routing.
  enum class Forwarding : uint8_t { kAuto, kOn, kOff };
  Forwarding forwarding = Forwarding::kAuto;

  // hashkit-obs: < 0 disables the metrics endpoint; 0 binds a
  // kernel-assigned port (read back via Server::metrics_port()).  The
  // endpoint answers any HTTP request on `host`:`metrics_port` with a
  // Prometheus-style plaintext exposition of RenderMetricsText().
  int metrics_port = -1;
  // hashkit-cache: < 0 disables the memcached text-protocol listener; 0
  // binds a kernel-assigned port (read back via Server::memcached_port()).
  // Text connections ride the same per-core event loops, slot queues, and
  // cross-connection batches as binary ones.  Incompatible with cluster
  // mode (the hooks only speak the binary protocol).
  int memcached_port = -1;
  // hashkit-cluster: borrowed, must outlive the server.  When set, every
  // request is offered to the hooks before local dispatch (ownership
  // checks, MOVED replies, MAP_GET/MIGRATE), and STATS//metrics grow a
  // cluster block.  nullptr = standalone server, exactly as before.
  ClusterHooks* cluster = nullptr;
  // hashkit-mvcc: reject every mutating opcode (PUT/DEL/SYNC) with
  // kUnsupported.  Set by `hashkit_server --replica-of`, whose store is
  // written only by the replication apply loop.
  bool read_only = false;
};

class Server {
 public:
  // `store` is borrowed and must outlive the server.  With workers > 1 it
  // must be safe for concurrent calls (see header comment).
  Server(kv::KvStore* store, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind + listen + spawn the worker threads (and the metrics thread when
  // enabled).
  Status Start();

  // Graceful shutdown: stop accepting, flush nothing further, close every
  // connection, join all threads.  Idempotent.
  void Stop();

  // The bound port (after Start(); useful with options.port = 0).
  uint16_t port() const { return port_; }

  // The bound metrics port (after Start(); 0 when the endpoint is
  // disabled).  Useful with options.metrics_port = 0.
  uint16_t metrics_port() const { return metrics_port_; }

  // The bound memcached listener port (after Start(); 0 when disabled).
  uint16_t memcached_port() const { return mc_port_; }

  const NetStats& stats() const { return stats_; }

  // The STATS wire command's payload: "key=value" lines covering NetStats
  // (counters plus per-opcode latency percentiles), batching/overload
  // counters (global and per core), then the store's name/size and, where
  // the store reports them, merged table/pool/latency numbers.  Exposed
  // for tests and tools.
  std::string RenderStatsText() const;

  // The metrics endpoint's body: the same numbers in Prometheus plaintext
  // exposition format (`hashkit_requests_total{op="get"} 42`).
  std::string RenderMetricsText() const;

 private:
  struct Connection;
  struct Slot;
  struct Worker;
  struct PendingOp;
  struct OpCompletion;

  // Listen socket setup: per-worker SO_REUSEPORT sockets, or one shared
  // fd registered EPOLLEXCLUSIVE in every worker's epoll set.  The
  // memcached listener mirrors the same strategy on its own port.
  Status SetupListeners();
  Status SetupMcListeners();
  Result<int> OpenListenSocket(uint16_t port, bool reuse_port);

  void AcceptReady(Worker* worker, bool text);
  // One metrics scrape: accept, read the request (ignored beyond arrival),
  // write an HTTP/1.0 response carrying RenderMetricsText(), close.  Runs
  // on the metrics thread; scrapes are rare and small, so briefly
  // borrowing that thread is fine.
  void MetricsReady();
  // Connection lifecycle — all run on the owning worker's thread.
  void AdoptConnection(Worker* worker, int fd, bool text);
  void ConnectionReady(Worker* worker, int fd, uint32_t events);
  void CloseConnection(Worker* worker, int fd, bool from_idle_sweep);
  void SweepIdle(Worker* worker);

  // Decode up to the per-round budget of frames from conn->in, routing
  // key ops into the core's batch (or shedding) and executing/queueing
  // everything else as barrier slots.  Returns false when the connection
  // must close (malformed input).
  bool IngestFrames(Worker* worker, Connection* conn);
  // Legacy per-frame path used in cluster mode.
  bool ServeBufferedFrames(Connection* conn);

  // --- memcached text shim (hashkit-cache), all on the owning worker ---
  // Text-protocol ingest: parse command lines (and storage data blocks)
  // from conn->in, batching get/set/add/delete into the core's pending ops
  // and queueing read-modify-write commands as barrier slots.
  bool IngestTextCommands(Worker* worker, Connection* conn);
  // Routes one parsed command (data block, if any, already attached).
  void RouteTextCommand(Worker* worker, Connection* conn, mc::Command&& cmd);
  // set/add/cas/replace once the data block arrived.
  void EnqueueTextStorage(Worker* worker, Connection* conn, mc::Command&& cmd);
  // Queue a literal reply line (suppressed under noreply).
  void AppendTextSlot(Worker* worker, Connection* conn, std::string reply,
                      bool noreply);
  // Barrier text commands (replace/cas/incr/decr/touch/flush_all/stats/
  // version) against the store; returns the full reply text.
  std::string DispatchText(Connection* conn, const mc::Command& cmd);
  // Formats a completed slot's response per its memcached context.
  void AppendTextResponse(Connection* conn, Slot& slot);
  // Routes one batched key op to its owner core (this one, unless
  // partition forwarding says otherwise).
  void RouteBatchedOp(Worker* worker, PendingOp&& op);

  // End-of-round batch execution (EventLoop after-poll hook): forward
  // foreign-partition ops to their owner cores, execute the local batch in
  // one ApplyBatch, return completions, emit + flush touched connections.
  void RunBatch(Worker* worker);
  void ExecuteOps(Worker* worker, std::vector<PendingOp>& ops);
  // `hint` (optional) caches the last-hit connection across a delivery
  // loop, skipping the per-op map lookup for pipelined runs on one fd.
  void DeliverCompletion(Worker* worker, OpCompletion&& done,
                         Connection** hint = nullptr);
  // Emit every leading completed slot (executing barrier ops as they reach
  // the front) onto the out queue.
  void EmitReady(Worker* worker, Connection* conn);
  // Emit + flush + epoll-mask resync for a connection whose slots or
  // buffers changed this round.  Returns false when the connection closed.
  bool FinishRound(Worker* worker, int fd);

  // `conn` carries per-connection protocol state (the SCAN cursor, the
  // backup snapshot); it is only touched from the owning worker's thread.
  Response Dispatch(Connection* conn, const Request& req);
  Response DispatchBackup(Connection* conn, const Request& req);
  Response DispatchReplicate(const Request& req);
  // Flush the out queue (sendmsg, or io_uring submit when enabled); keeps
  // EPOLLOUT registration in sync.  Returns false when the connection died
  // on write.
  bool FlushWrites(Worker* worker, Connection* conn);
  void SyncEpollMask(Worker* worker, Connection* conn);
  void UringReap(Worker* worker);

  void AppendResponse(Connection* conn, Response&& resp);

  kv::KvStore* store_;
  const ServerOptions options_;
  NetStats stats_;

  // Cached store topology (hashkit-tpc): partition p is owned by core
  // p % workers.  Batching is off entirely in cluster mode.
  size_t partitions_ = 1;
  bool batching_ = false;
  bool forwarding_ = false;
  bool reuse_port_ = false;  // what SetupListeners actually achieved

  int listen_fd_ = -1;  // shared fd (exclusive_accept mode); else unused
  uint16_t port_ = 0;
  int metrics_fd_ = -1;
  uint16_t metrics_port_ = 0;
  int mc_listen_fd_ = -1;  // shared memcached fd, when not per-worker
  uint16_t mc_port_ = 0;
  bool mc_reuse_port_ = false;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  EventLoop metrics_loop_;
  std::thread metrics_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_SERVER_H_
