// hashkit-net: an epoll TCP server exposing a KvStore.
//
// Threading model: one acceptor loop plus `workers` worker loops, each on
// its own thread with its own epoll set.  Accepted sockets are handed to
// workers round-robin via EventLoop::Post, after which a connection lives
// entirely on one worker thread — its buffers need no locks.  Request
// dispatch calls the KvStore directly from worker threads, so with
// workers > 1 the store must be thread-safe (SynchronizedStore or
// ShardedStore; OpenStore with StoreOptions::shards > 1 yields the
// latter).
//
// Each connection keeps a read buffer (bytes not yet forming a complete
// frame) and a write buffer (responses not yet accepted by the kernel).
// All complete frames in the read buffer are served per readable event —
// that is what makes client pipelining effective.  Backpressure: when the
// write buffer exceeds ServerOptions::max_buffered_bytes the connection
// stops reading (EPOLLIN off) until the kernel drains it below the limit.
// Malformed frames get one kInvalidArgument response, then the connection
// is flushed and closed.  Idle connections are closed on a once-a-second
// sweep.

#ifndef HASHKIT_SRC_NET_SERVER_H_
#define HASHKIT_SRC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/net/cluster_hooks.h"
#include "src/net/event_loop.h"
#include "src/net/net_stats.h"
#include "src/net/proto.h"
#include "src/util/status.h"

namespace hashkit {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read back via Server::port()
  int workers = 2;
  int backlog = 128;
  int idle_timeout_ms = 60'000;        // 0 disables the idle sweep
  size_t max_buffered_bytes = 64u << 20;  // per-connection write backlog cap
  // hashkit-obs: < 0 disables the metrics endpoint; 0 binds a
  // kernel-assigned port (read back via Server::metrics_port()).  The
  // endpoint answers any HTTP request on `host`:`metrics_port` with a
  // Prometheus-style plaintext exposition of RenderMetricsText().
  int metrics_port = -1;
  // hashkit-cluster: borrowed, must outlive the server.  When set, every
  // request is offered to the hooks before local dispatch (ownership
  // checks, MOVED replies, MAP_GET/MIGRATE), and STATS//metrics grow a
  // cluster block.  nullptr = standalone server, exactly as before.
  ClusterHooks* cluster = nullptr;
  // hashkit-mvcc: reject every mutating opcode (PUT/DEL/SYNC) with
  // kUnsupported.  Set by `hashkit_server --replica-of`, whose store is
  // written only by the replication apply loop.
  bool read_only = false;
};

class Server {
 public:
  // `store` is borrowed and must outlive the server.  With workers > 1 it
  // must be safe for concurrent calls (see header comment).
  Server(kv::KvStore* store, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind + listen + spawn the acceptor and worker threads.
  Status Start();

  // Graceful shutdown: stop accepting, flush nothing further, close every
  // connection, join all threads.  Idempotent.
  void Stop();

  // The bound port (after Start(); useful with options.port = 0).
  uint16_t port() const { return port_; }

  // The bound metrics port (after Start(); 0 when the endpoint is
  // disabled).  Useful with options.metrics_port = 0.
  uint16_t metrics_port() const { return metrics_port_; }

  const NetStats& stats() const { return stats_; }

  // The STATS wire command's payload: "key=value" lines covering NetStats
  // (counters plus per-opcode latency percentiles), then the store's
  // name/size and, where the store reports them, merged table/pool/latency
  // numbers.  Exposed for tests and tools.
  std::string RenderStatsText() const;

  // The metrics endpoint's body: the same numbers in Prometheus plaintext
  // exposition format (`hashkit_requests_total{op="get"} 42`).
  std::string RenderMetricsText() const;

 private:
  struct Connection;
  struct Worker;

  void AcceptReady();
  // One metrics scrape: accept, read the request (ignored beyond arrival),
  // write an HTTP/1.0 response carrying RenderMetricsText(), close.  Runs
  // on the acceptor thread; scrapes are rare and small, so briefly
  // borrowing that thread is fine.
  void MetricsReady();
  // Connection lifecycle — all run on the owning worker's thread.
  void AdoptConnection(Worker* worker, int fd);
  void ConnectionReady(Worker* worker, int fd, uint32_t events);
  void CloseConnection(Worker* worker, int fd, bool from_idle_sweep);
  void SweepIdle(Worker* worker);

  // Serve every complete frame currently buffered; returns false when the
  // connection must close (malformed input).
  bool ServeBufferedFrames(Connection* conn);
  // `conn` carries per-connection protocol state (the SCAN cursor, the
  // backup snapshot); it is only touched from the owning worker's thread.
  Response Dispatch(Connection* conn, const Request& req);
  Response DispatchBackup(Connection* conn, const Request& req);
  Response DispatchReplicate(const Request& req);
  // Flush the write buffer; keeps EPOLLOUT registration in sync.  Returns
  // false when the connection died on write.
  bool FlushWrites(Worker* worker, Connection* conn);

  kv::KvStore* store_;
  const ServerOptions options_;
  NetStats stats_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int metrics_fd_ = -1;
  uint16_t metrics_port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  EventLoop accept_loop_;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t next_worker_ = 0;
};

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_SERVER_H_
