#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace hashkit {
namespace net {

namespace {
Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ok()) {
    // The wakeup fd is a level of its own: its callback just drains the
    // counter; posted tasks are picked up after every poll anyway.
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.fd = wakeup_fd_;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
  if (wakeup_fd_ >= 0) {
    ::close(wakeup_fd_);
  }
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  callbacks_[fd] = std::move(callback);
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::Ok();
}

Status EventLoop::Remove(int fd) {
  callbacks_.erase(fd);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::Ok();
}

void EventLoop::Post(Task task) {
  {
    const std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(task));
  }
  Notify();
}

void EventLoop::Notify() {
  // The latch stays set from here until the loop drains the eventfd, so a
  // burst of notifications costs one write.  A racing clear is harmless:
  // the loop clears before reading, and it always runs the after-poll hook
  // (and DrainPosted) after the callback round that cleared it, so work
  // published before either interleaving is picked up this iteration.
  if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    Wakeup();
  }
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(wakeup_fd_, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

void EventLoop::DrainPosted() {
  std::vector<Task> tasks;
  {
    const std::lock_guard<std::mutex> lock(posted_mu_);
    tasks.swap(posted_);
  }
  for (Task& task : tasks) {
    task();
  }
}

void EventLoop::Run(const Task& tick, int tick_interval_ms) {
  if (!ok()) {
    return;
  }
  using Clock = std::chrono::steady_clock;
  auto last_tick = Clock::now();
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, tick_interval_ms);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        wake_pending_.store(false, std::memory_order_release);
        uint64_t drained;
        while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // The callback may Remove() other fds in this batch (e.g. a close
      // cascades), so re-look-up per event instead of holding iterators.
      const auto it = callbacks_.find(fd);
      if (it != callbacks_.end()) {
        // Copy: the callback may Remove(fd) itself, invalidating `it`.
        const FdCallback callback = it->second;
        callback(events[i].events);
      }
    }
    // Posted work runs after this round's fd callbacks so a batch posted
    // by another core executes before the loop sleeps, and the after-poll
    // hook runs last: it sees everything this iteration produced (frames
    // decoded by callbacks AND cross-core work just drained).
    DrainPosted();
    if (after_poll_ != nullptr) {
      after_poll_();
    }
    if (tick != nullptr) {
      const auto now = Clock::now();
      if (now - last_tick >= std::chrono::milliseconds(tick_interval_ms)) {
        tick();
        last_tick = now;
      }
    }
  }
  DrainPosted();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wakeup();
}

}  // namespace net
}  // namespace hashkit
