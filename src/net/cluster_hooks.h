// hashkit-cluster: the server's view of an attached cluster node.
//
// The net layer cannot depend on src/cluster (which itself uses the net
// client to talk to peers), so the server holds this abstract interface
// instead.  When ServerOptions::cluster is set, every decoded request is
// offered to the hooks first: the cluster node either owns it (ownership
// checks, MOVED replies, MAP_GET/MIGRATE handling) or declines it and the
// server dispatches to the local store as before.  Implemented by
// cluster::ClusterNode (src/cluster/migration.h).

#ifndef HASHKIT_SRC_NET_CLUSTER_HOOKS_H_
#define HASHKIT_SRC_NET_CLUSTER_HOOKS_H_

#include <string>

#include "src/net/proto.h"

namespace hashkit {
namespace net {

class ClusterHooks {
 public:
  virtual ~ClusterHooks() = default;

  // Offered every decoded request before normal dispatch.  Returns true
  // when `*resp` was filled (op/status/payload; the server still stamps the
  // sequence number and records stats), false to fall through to the local
  // store.  Called concurrently from every worker thread.
  virtual bool HandleRequest(const Request& req, Response* resp) = 0;

  // Appends the cluster block to the STATS text ("cluster.key=value"
  // lines) and to the /metrics exposition respectively.
  virtual void AppendStatsText(std::string* text) const = 0;
  virtual void AppendMetricsText(std::string* text) const = 0;
};

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_CLUSTER_HOOKS_H_
