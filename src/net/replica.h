// hashkit-mvcc: online backup download and warm read replication.
//
// Both ride the BACKUP / REPLICATE opcodes (proto.h).  DownloadBackup
// streams a live server's checkpoint image plus WAL tail into local files
// — the backup half of `db_tool backup` and the bootstrap half of a
// replica.  Replica then tails the primary's WAL (REPLICATE read, polled)
// and applies it to a local store opened from that backup, giving a warm
// read-only copy that is also the transport for migrating a table between
// machines: stop writes on the primary, wait for last_applied_lsn() to
// catch up, promote the replica.
//
// Requirements: the primary must run with a WAL (persistent store) and
// --shards=1 — backup and replication need exactly one log.  The replica's
// store must support ApplyReplication (same constraint).

#ifndef HASHKIT_SRC_NET_REPLICA_H_
#define HASHKIT_SRC_NET_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/kv/kv_store.h"
#include "src/net/client.h"
#include "src/util/status.h"

namespace hashkit {
namespace net {

// The BACKUP begin manifest, decoded (see proto.h for the wire layout).
struct BackupManifest {
  uint32_t page_size = 0;
  uint64_t page_count = 0;
  uint64_t lsn = 0;  // commit LSN the snapshot is consistent as of
};

// Stream one full online backup over `client` into `dest_path` (the table
// image) and `dest_path + ".wal"` (the WAL tail pinned with the snapshot).
// Both are written to ".tmp" siblings and renamed into place — image
// first, so a crash between the renames still leaves an openable (if
// slightly older) table.  Fails without touching `dest_path` when the
// destination already exists or carries stale upgrade/backup artifacts
// (clean them first; see util/tempfile.h).
Result<BackupManifest> DownloadBackup(Client* client, const std::string& dest_path);

struct ReplicaOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  int poll_interval_ms = 200;     // REPLICATE read cadence
  ClientOptions client_options;   // timeouts for the primary connection
};

// Tails the primary's WAL into `store`.  The store is borrowed, must
// outlive the replica, and must be the ONLY writer path (serve it behind a
// read-only Server).  Poll loop: REPLICATE read from last applied LSN;
// apply whatever came back; sleep.  A replication gap (the primary
// checkpointed past us — kNotFound from ApplyReplication) is fatal: the
// loop records the error and stops, and the operator re-bootstraps from a
// fresh backup.  error() exposes the first fatal status.
class Replica {
 public:
  Replica(kv::KvStore* store, ReplicaOptions options);
  ~Replica();
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Spawn the poll thread.  Fails fast when the primary is unreachable.
  Status Start();
  void Stop();  // join the poll thread; idempotent

  // One poll+apply round trip, usable without Start() (tests, manual
  // catch-up).  Ok when nothing new; the fatal-gap rule above applies.
  Status PollOnce();

  uint64_t last_applied_lsn() const { return applied_lsn_.load(std::memory_order_relaxed); }
  // First fatal error the poll loop hit (OK while healthy/running).
  Status error() const;

 private:
  kv::KvStore* store_;
  const ReplicaOptions options_;
  std::unique_ptr<Client> client_;
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  mutable std::mutex error_mu_;
  Status error_;
  std::thread poll_thread_;
};

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_REPLICA_H_
