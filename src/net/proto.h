// hashkit-net: the length-prefixed binary wire protocol.
//
// The paper's package is an in-process library; LH*-style serving (see
// PAPERS.md) needs the key/data interface on a wire.  The protocol keeps
// the KvStore shape — an opcode per KvStore operation plus PING — framed as
// fixed 20-byte little-endian headers followed by the key and value bytes.
// Frames are self-delimiting, so any number of requests can be in flight on
// one connection (pipelining); every response echoes its request's sequence
// number, and responses come back in request order.
//
//   request:  u16 magic 'HK' | u8 version | u8 opcode | u8 flags |
//             u8[3] reserved (zero) | u32 seq | u32 key_len | u32 value_len |
//             key bytes | value bytes
//   response: u16 magic 'hk' | u8 version | u8 opcode (echo) | u8 status |
//             u8[3] reserved (zero) | u32 seq (echo) | u32 key_len |
//             u32 value_len | key bytes | value bytes
//
// All integers little-endian (src/util/endian.h, as on disk).  Length
// limits (kMaxKeyLen / kMaxValueLen) bound per-frame memory; a frame that
// violates the magic, version, reserved bytes, or limits is *malformed* —
// the server answers with status kInvalidArgument (seq 0 if the header was
// unreadable) and closes the connection, because framing can no longer be
// trusted.  An *unknown opcode* is NOT malformed: framing is intact, so the
// decoder yields the frame and the server answers kUnsupported while
// keeping the connection alive — that is what lets old servers coexist
// with newer clients (and vice versa) during a rolling upgrade.

#ifndef HASHKIT_SRC_NET_PROTO_H_
#define HASHKIT_SRC_NET_PROTO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace hashkit {
namespace net {

inline constexpr uint16_t kRequestMagic = 0x4B48;   // "HK" little-endian
inline constexpr uint16_t kResponseMagic = 0x6B68;  // "hk"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 20;

// Frame payload bounds.  Keys share the hash table's practical sizing;
// values may be big pairs.  Together they cap a frame's buffered size.
inline constexpr uint32_t kMaxKeyLen = 1u << 20;    // 1 MB
inline constexpr uint32_t kMaxValueLen = 1u << 24;  // 16 MB

enum class Opcode : uint8_t {
  kPing = 0,
  kPut = 1,
  kGet = 2,
  kDel = 3,
  kScan = 4,
  kStats = 5,
  kSync = 6,
  // hashkit-cluster (LH*-style distributed linear hashing):
  kMapGet = 7,   // fetch the node's current cluster map (value = map bytes)
  kMoved = 8,    // response-only: request hit a non-owner; value = map bytes
  kMigrate = 9,  // bucket migration + cluster admin; sub-op in `flags`
  // hashkit-mvcc (online operations on the WAL):
  kBackup = 10,     // online backup stream; sub-op in `flags`
  kReplicate = 11,  // WAL shipping to a replica; sub-op in `flags`
  // hashkit-cache (TTL):
  kTouch = 12,  // value = u32 ttl_ms LE; 0 clears the key's expiry
};

inline constexpr uint8_t kMaxOpcode = static_cast<uint8_t>(Opcode::kTouch);
inline constexpr size_t kOpcodeCount = kMaxOpcode + 1;

std::string_view OpcodeName(Opcode op);

// Request flag bits (meaning depends on the opcode).
inline constexpr uint8_t kFlagNoOverwrite = 1u << 0;  // PUT: fail on existing key
inline constexpr uint8_t kFlagScanFirst = 1u << 0;    // SCAN: restart the cursor

// PUT with TTL (hashkit-cache): the request value starts with a u32 LE
// relative TTL in milliseconds, followed by the payload bytes.  The server
// computes the absolute expiry at ingest; a TTL of 0 with the flag set
// means "no expiry" (same as not setting the flag).  Requires the store to
// be opened with TTL support; otherwise the server answers kUnsupported.
inline constexpr uint8_t kFlagPutTtl = 1u << 1;
inline constexpr size_t kPutTtlPrefixBytes = 4;

// MIGRATE sub-operations (the `flags` byte carries exactly one of these).
// Start/Data/End stream one bucket from its owner to a target node; the
// rest are cluster administration carried over the same opcode.
inline constexpr uint8_t kMigrateStart = 1u << 0;  // value = u32 bucket | map bytes
inline constexpr uint8_t kMigrateData = 1u << 1;   // key/value = one migrating pair
inline constexpr uint8_t kMigrateEnd = 1u << 2;    // value = u32 bucket
inline constexpr uint8_t kMigrateMap = 1u << 3;    // push: value = map bytes
inline constexpr uint8_t kMigrateJoin = 1u << 4;   // value = u32 id|u16 port|u16 len|host
inline constexpr uint8_t kMigrateMove = 1u << 5;   // admin: value = u32 bucket|u32 node
inline constexpr uint8_t kMigrateSplit = 1u << 6;  // admin: split bucket `next`
inline constexpr uint8_t kMigrateLeave = 1u << 7;  // admin: value = u32 node id

// SCAN flag: iterate a point-in-time snapshot pinned at the first frame of
// the scan (per connection) instead of the store's shared live cursor.
// Snapshot scans never block writers for the whole scan (hashkit-mvcc).
inline constexpr uint8_t kFlagScanSnapshot = 1u << 1;

// BACKUP sub-operations (`flags` carries exactly one).  Begin answers with
// value = manifest "u32 page_size | u64 page_count | u64 lsn" (LE) and pins
// the stream's snapshot on this connection; Pages takes value =
// "u64 first_page | u32 count" and answers with the raw page images; Wal
// takes value = "u64 offset | u32 max_bytes" and answers with value = log
// bytes, key = "u64 total_log_size"; End drops the snapshot (also implied
// by connection close).
inline constexpr uint8_t kBackupBegin = 1u << 0;
inline constexpr uint8_t kBackupPages = 1u << 1;
inline constexpr uint8_t kBackupWal = 1u << 2;
inline constexpr uint8_t kBackupEnd = 1u << 3;

// REPLICATE sub-operations (`flags` carries exactly one).  Read takes
// value = "u64 from_lsn" and answers with value = whole current log when it
// holds commits past from_lsn (else empty), key = "u64 last_lsn".
inline constexpr uint8_t kReplicateRead = 1u << 0;

struct Request {
  Opcode op = Opcode::kPing;
  uint8_t flags = 0;
  uint32_t seq = 0;
  std::string key;
  std::string value;
};

struct Response {
  Opcode op = Opcode::kPing;
  StatusCode status = StatusCode::kOk;
  uint32_t seq = 0;
  std::string key;    // SCAN: the scanned key
  std::string value;  // GET/SCAN: the data; STATS: text stats; errors: message
};

// Serialize a frame onto `out` (appends; never fails — lengths were either
// produced by us or validated on ingest).
void EncodeRequest(const Request& req, std::string* out);
void EncodeResponse(const Response& resp, std::string* out);

// Header-only encoders for zero-copy assembly (hashkit-tpc): append just
// the 20-byte header describing a key/value of the given lengths; the
// caller scatters the payload bytes separately (writev iovec chains), so a
// large value is never copied into a contiguous frame.
void EncodeRequestHeader(const Request& req, std::string* out);
void EncodeResponseHeader(const Response& resp, std::string* out);
// Same, with explicit payload lengths: lets a pipelining client frame
// requests whose key/value bytes it scatters from caller-owned buffers
// without ever copying them into a Request.
void EncodeRequestHeaderRaw(Opcode op, uint8_t flags, uint32_t seq,
                            uint32_t key_len, uint32_t value_len, std::string* out);

// Overload shedding (hashkit-tpc): a kOverloaded response carries a
// retry-after hint in milliseconds as a u32 LE in the response key.
void EncodeRetryAfter(uint32_t retry_after_ms, std::string* key);
// Returns 0 when the key is absent or too short (older server).
uint32_t DecodeRetryAfter(std::string_view key);

// Incremental decode result: a frame, not enough bytes yet, or a protocol
// violation (the connection should be torn down).
enum class DecodeResult {
  kFrame,       // one frame consumed into the out-param
  kNeedMore,    // buffer holds a prefix of a valid frame
  kMalformed,   // header failed validation; `error` says why
};

// Both decoders consume from the front of `buf` on success (kFrame), and
// touch nothing otherwise.  `consumed` returns the bytes removed so callers
// can account traffic.  On kMalformed, `error` receives a diagnostic.
DecodeResult DecodeRequest(std::string* buf, Request* out, size_t* consumed,
                           std::string* error);
DecodeResult DecodeResponse(std::string* buf, Response* out, size_t* consumed,
                            std::string* error);

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_PROTO_H_
