// hashkit-net: a minimal epoll event loop.
//
// One EventLoop per thread.  File descriptors register a callback that is
// invoked with the ready epoll event mask; a self-pipe (eventfd) lets other
// threads wake the loop to stop it or to hand over work, and the epoll_wait
// timeout doubles as a coarse tick for idle-connection sweeps.  The loop
// owns nothing but its epoll and wakeup fds — registered fds belong to the
// caller.

#ifndef HASHKIT_SRC_NET_EVENT_LOOP_H_
#define HASHKIT_SRC_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace hashkit {
namespace net {

class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False when epoll/eventfd creation failed; Run() refuses to start.
  bool ok() const { return epoll_fd_ >= 0 && wakeup_fd_ >= 0; }

  // Register `fd` for `events` (EPOLLIN/EPOLLOUT/...).  The callback runs
  // on the loop thread.  Only the loop thread may call Add/Modify/Remove.
  Status Add(int fd, uint32_t events, FdCallback callback);
  Status Modify(int fd, uint32_t events);
  Status Remove(int fd);

  // Queue `task` to run on the loop thread before the next poll, and wake
  // the loop.  Safe from any thread.
  void Post(Task task);

  // Wake the loop without queueing a task: the caller has already made its
  // work visible elsewhere (e.g. a worker mailbox) and only needs the loop
  // to come around to its after-poll hook.  Coalesced — while a wakeup is
  // still pending the eventfd write is skipped, so cores hammering a busy
  // peer don't pay a syscall per batch.  Safe from any thread.
  void Notify();

  // Process events until Stop().  `tick` (may be null) runs roughly every
  // `tick_interval_ms` on the loop thread — the idle-sweep hook.
  void Run(const Task& tick = nullptr, int tick_interval_ms = 1000);

  // Hook that runs once per loop iteration AFTER fd callbacks and posted
  // tasks, before the loop can sleep again (hashkit-tpc).  A batching
  // server drains decoded requests here, so one epoll round's worth of
  // ready connections — and any batches posted from other cores — executes
  // as one batch before the next poll.  Set before Run(); loop thread only.
  void SetAfterPoll(Task hook) { after_poll_ = std::move(hook); }

  // Signal the loop to exit its Run() cycle.  Safe from any thread.
  void Stop();

 private:
  void Wakeup();
  void DrainPosted();

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> wake_pending_{false};  // Notify() coalescing latch

  // fd -> callback; touched only on the loop thread.
  std::unordered_map<int, FdCallback> callbacks_;

  std::mutex posted_mu_;
  std::vector<Task> posted_;
  Task after_poll_;
};

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_EVENT_LOOP_H_
