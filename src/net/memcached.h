// hashkit-cache: memcached text-protocol shim — parsing and formatting.
//
// The server exposes the store on a second listener (--memcached-port)
// speaking the classic memcached ASCII protocol, so stock load drivers
// (memtier_benchmark, YCSB's memcached binding, redis-cli style probes)
// run against hashkit unmodified.  This header holds the protocol pieces
// with no socket or server dependency, so they unit-test in isolation;
// the connection state machine lives in server.cc.
//
// Supported commands: get gets set add replace cas delete incr decr touch
// flush_all stats version quit (plus `noreply` on mutations).
//
// Value convention: a memcached entry's kv value is a u32 LE client-flags
// word followed by the data bytes, so `set`'s flags survive a round trip
// through any kv backend.  Keys written via the binary protocol lack that
// prefix; reading them through the text shim reports flags=0 and, for
// values shorter than 4 bytes, the whole value as data.  The `gets` cas
// unique is a 64-bit FNV-1a of the stored (prefixed) value — stable for
// unchanged values, different with overwhelming probability after any
// rewrite, and requiring no extra per-entry storage.
//
// Expiry follows memcached: exptime 0 = never; 1..2592000 (30 days) =
// relative seconds; larger = absolute unix seconds; negative = already
// expired.  Resolved against the kv layer's TTL clock at ingest.

#ifndef HASHKIT_SRC_NET_MEMCACHED_H_
#define HASHKIT_SRC_NET_MEMCACHED_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hashkit {
namespace net {
namespace mc {

// Protocol bounds.  Lines and keys follow memcached's own limits; a line
// that exceeds the cap without a terminator means framing is lost and the
// connection must close.
inline constexpr size_t kMaxCommandLine = 8192;
inline constexpr size_t kMaxKeyLen = 250;
inline constexpr size_t kMaxKeysPerGet = 256;
inline constexpr int64_t kRelativeExptimeLimit = 60 * 60 * 24 * 30;  // seconds

struct Command {
  enum class Kind : uint8_t {
    kGet,       // get <key>+
    kGets,      // gets <key>+ (VALUE lines carry a cas unique)
    kSet,       // set <key> <flags> <exptime> <bytes> [noreply] + data
    kAdd,       // add — store only if absent
    kReplace,   // replace — store only if present
    kCas,       // cas <key> <flags> <exptime> <bytes> <cas> [noreply] + data
    kDelete,    // delete <key> [noreply]
    kIncr,      // incr <key> <delta> [noreply]
    kDecr,      // decr <key> <delta> [noreply]
    kTouch,     // touch <key> <exptime> [noreply]
    kFlushAll,  // flush_all [delay] [noreply] — delay is accepted, immediate
    kStats,     // stats
    kVersion,   // version
    kQuit,      // quit
    kBad,       // unparseable; `error` holds the reply line
  };

  Kind kind = Kind::kBad;
  std::vector<std::string> keys;  // get/gets: all keys; others: keys[0]
  uint32_t flags = 0;
  int64_t exptime = 0;
  size_t bytes = 0;    // data-block length (storage commands)
  uint64_t cas = 0;    // kCas only
  uint64_t delta = 0;  // kIncr/kDecr
  bool noreply = false;
  std::string data;   // data block, filled by the connection state machine
  std::string error;  // kBad (or oversize storage): full reply line with \r\n

  // True for commands followed by a <bytes>-long data block + \r\n.
  bool WantsData() const {
    return kind == Kind::kSet || kind == Kind::kAdd || kind == Kind::kReplace ||
           kind == Kind::kCas;
  }
};

// Parses one command line (terminator already stripped).  Never fails hard:
// unknown or malformed commands come back as kBad with `error` set to the
// memcached-style reply ("ERROR\r\n" / "CLIENT_ERROR ...\r\n").  A storage
// command whose <bytes> exceeds `max_value_bytes` is ALSO returned as its
// real kind with `error` set: the caller must still swallow the data block
// to keep the stream framed, then answer with `error`.
Command ParseCommandLine(std::string_view line, size_t max_value_bytes);

// Memcached exptime → absolute expiry in ms (0 = never) against `now_ms`
// (unix epoch ms, the kv TTL clock).
uint64_t ExptimeToExpireAtMs(int64_t exptime, uint64_t now_ms);

// Value codec: u32 LE flags prefix + payload.
void EncodeValue(uint32_t flags, std::string_view data, std::string* out);
// Short raw values (< 4 bytes, only possible via the binary protocol)
// decode as flags=0 with the whole value as data.
void DecodeValue(std::string_view raw, uint32_t* flags, std::string_view* data);

// The `gets` cas unique: 64-bit FNV-1a over the stored (prefixed) value.
uint64_t CasOf(std::string_view raw_value);

}  // namespace mc
}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_MEMCACHED_H_
