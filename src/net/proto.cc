#include "src/net/proto.h"

#include <cstring>
#include <type_traits>

#include "src/util/endian.h"

namespace hashkit {
namespace net {

namespace {

// Shared header layout (request and response differ only in magic and in
// how byte 4 is interpreted: flags vs status).
//   0  u16 magic
//   2  u8  version
//   3  u8  opcode
//   4  u8  flags / status
//   5  u8[3] reserved
//   8  u32 seq
//   12 u32 key_len
//   16 u32 value_len

void EncodeHeader(uint16_t magic, uint8_t opcode, uint8_t byte4, uint32_t seq,
                  uint32_t key_len, uint32_t value_len, std::string* out) {
  uint8_t header[kHeaderSize] = {};
  EncodeU16(header, magic);
  header[2] = kProtocolVersion;
  header[3] = opcode;
  header[4] = byte4;
  EncodeU32(header + 8, seq);
  EncodeU32(header + 12, key_len);
  EncodeU32(header + 16, value_len);
  out->append(reinterpret_cast<const char*>(header), kHeaderSize);
}

// Validates the fixed header fields shared by both directions.  Returns
// true when the header is well-formed; false with a diagnostic otherwise.
bool ValidateHeader(const uint8_t* h, uint16_t want_magic, std::string* error) {
  if (DecodeU16(h) != want_magic) {
    *error = "bad magic";
    return false;
  }
  if (h[2] != kProtocolVersion) {
    *error = "unsupported protocol version " + std::to_string(h[2]);
    return false;
  }
  // Opcodes are deliberately NOT validated here: an unknown opcode leaves
  // framing intact, so it decodes as a frame and the dispatcher answers
  // kUnsupported without dropping the connection (version skew tolerance).
  if (h[5] != 0 || h[6] != 0 || h[7] != 0) {
    *error = "nonzero reserved bytes";
    return false;
  }
  const uint32_t key_len = DecodeU32(h + 12);
  const uint32_t value_len = DecodeU32(h + 16);
  if (key_len > kMaxKeyLen) {
    *error = "key length " + std::to_string(key_len) + " exceeds limit";
    return false;
  }
  if (value_len > kMaxValueLen) {
    *error = "value length " + std::to_string(value_len) + " exceeds limit";
    return false;
  }
  return true;
}

template <typename Frame>
DecodeResult DecodeFrame(uint16_t want_magic, std::string* buf, Frame* out,
                         size_t* consumed, std::string* error) {
  *consumed = 0;
  if (buf->size() < kHeaderSize) {
    return DecodeResult::kNeedMore;
  }
  const uint8_t* h = reinterpret_cast<const uint8_t*>(buf->data());
  if (!ValidateHeader(h, want_magic, error)) {
    return DecodeResult::kMalformed;
  }
  const uint32_t key_len = DecodeU32(h + 12);
  const uint32_t value_len = DecodeU32(h + 16);
  const size_t total = kHeaderSize + key_len + value_len;
  if (buf->size() < total) {
    return DecodeResult::kNeedMore;
  }
  out->op = static_cast<Opcode>(h[3]);
  out->seq = DecodeU32(h + 8);
  out->key.assign(*buf, kHeaderSize, key_len);
  out->value.assign(*buf, kHeaderSize + key_len, value_len);
  if constexpr (std::is_same_v<Frame, Request>) {
    out->flags = h[4];
  } else {
    out->status = static_cast<StatusCode>(h[4]);
  }
  buf->erase(0, total);
  *consumed = total;
  return DecodeResult::kFrame;
}

}  // namespace

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing:
      return "PING";
    case Opcode::kPut:
      return "PUT";
    case Opcode::kGet:
      return "GET";
    case Opcode::kDel:
      return "DEL";
    case Opcode::kScan:
      return "SCAN";
    case Opcode::kStats:
      return "STATS";
    case Opcode::kSync:
      return "SYNC";
    case Opcode::kMapGet:
      return "MAP_GET";
    case Opcode::kMoved:
      return "MOVED";
    case Opcode::kMigrate:
      return "MIGRATE";
    case Opcode::kBackup:
      return "BACKUP";
    case Opcode::kReplicate:
      return "REPLICATE";
    case Opcode::kTouch:
      return "TOUCH";
  }
  return "UNKNOWN";
}

void EncodeRequest(const Request& req, std::string* out) {
  EncodeHeader(kRequestMagic, static_cast<uint8_t>(req.op), req.flags, req.seq,
               static_cast<uint32_t>(req.key.size()),
               static_cast<uint32_t>(req.value.size()), out);
  out->append(req.key);
  out->append(req.value);
}

void EncodeResponse(const Response& resp, std::string* out) {
  EncodeHeader(kResponseMagic, static_cast<uint8_t>(resp.op),
               static_cast<uint8_t>(resp.status), resp.seq,
               static_cast<uint32_t>(resp.key.size()),
               static_cast<uint32_t>(resp.value.size()), out);
  out->append(resp.key);
  out->append(resp.value);
}

void EncodeRequestHeader(const Request& req, std::string* out) {
  EncodeHeader(kRequestMagic, static_cast<uint8_t>(req.op), req.flags, req.seq,
               static_cast<uint32_t>(req.key.size()),
               static_cast<uint32_t>(req.value.size()), out);
}

void EncodeResponseHeader(const Response& resp, std::string* out) {
  EncodeHeader(kResponseMagic, static_cast<uint8_t>(resp.op),
               static_cast<uint8_t>(resp.status), resp.seq,
               static_cast<uint32_t>(resp.key.size()),
               static_cast<uint32_t>(resp.value.size()), out);
}

void EncodeRequestHeaderRaw(Opcode op, uint8_t flags, uint32_t seq,
                            uint32_t key_len, uint32_t value_len, std::string* out) {
  EncodeHeader(kRequestMagic, static_cast<uint8_t>(op), flags, seq, key_len,
               value_len, out);
}

void EncodeRetryAfter(uint32_t retry_after_ms, std::string* key) {
  uint8_t buf[4];
  EncodeU32(buf, retry_after_ms);
  key->assign(reinterpret_cast<const char*>(buf), sizeof(buf));
}

uint32_t DecodeRetryAfter(std::string_view key) {
  if (key.size() < 4) {
    return 0;
  }
  return DecodeU32(reinterpret_cast<const uint8_t*>(key.data()));
}

DecodeResult DecodeRequest(std::string* buf, Request* out, size_t* consumed,
                           std::string* error) {
  return DecodeFrame(kRequestMagic, buf, out, consumed, error);
}

DecodeResult DecodeResponse(std::string* buf, Response* out, size_t* consumed,
                            std::string* error) {
  return DecodeFrame(kResponseMagic, buf, out, consumed, error);
}

}  // namespace net
}  // namespace hashkit
