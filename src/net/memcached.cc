#include "src/net/memcached.h"

#include <cctype>

#include "src/util/endian.h"

namespace hashkit {
namespace net {
namespace mc {

namespace {

// Splits `line` on single spaces into at most kMaxTokens views.  Memcached
// is strict about single-space separation; we tolerate runs of spaces.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 20) {
    return false;
  }
  uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseI64(std::string_view token, int64_t* out) {
  bool negative = false;
  if (!token.empty() && token.front() == '-') {
    negative = true;
    token.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseU64(token, &magnitude) ||
      magnitude > static_cast<uint64_t>(INT64_MAX)) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
  return true;
}

// Memcached keys: 1..250 bytes, no whitespace or control characters.
bool ValidKey(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyLen) {
    return false;
  }
  for (const char c : key) {
    if (static_cast<unsigned char>(c) <= 32 || c == 127) {
      return false;
    }
  }
  return true;
}

Command Bad(std::string error_line) {
  Command cmd;
  cmd.kind = Command::Kind::kBad;
  cmd.error = std::move(error_line);
  return cmd;
}

Command ClientError(std::string_view what) {
  return Bad("CLIENT_ERROR " + std::string(what) + "\r\n");
}

}  // namespace

Command ParseCommandLine(std::string_view line, size_t max_value_bytes) {
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Bad("ERROR\r\n");
  }
  const std::string_view verb = tokens[0];
  Command cmd;

  if (verb == "get" || verb == "gets") {
    cmd.kind = verb == "get" ? Command::Kind::kGet : Command::Kind::kGets;
    if (tokens.size() < 2) {
      return ClientError("get needs at least one key");
    }
    if (tokens.size() - 1 > kMaxKeysPerGet) {
      return ClientError("too many keys in one get");
    }
    for (size_t i = 1; i < tokens.size(); ++i) {
      if (!ValidKey(tokens[i])) {
        return ClientError("bad key");
      }
      cmd.keys.emplace_back(tokens[i]);
    }
    return cmd;
  }

  if (verb == "set" || verb == "add" || verb == "replace" || verb == "cas") {
    const bool is_cas = verb == "cas";
    cmd.kind = verb == "set"   ? Command::Kind::kSet
               : verb == "add" ? Command::Kind::kAdd
               : is_cas        ? Command::Kind::kCas
                               : Command::Kind::kReplace;
    const size_t want = is_cas ? 6u : 5u;
    if (tokens.size() < want || tokens.size() > want + 1) {
      return ClientError("bad command line format");
    }
    if (!ValidKey(tokens[1])) {
      return ClientError("bad key");
    }
    uint64_t flags = 0;
    uint64_t bytes = 0;
    int64_t exptime = 0;
    if (!ParseU64(tokens[2], &flags) || flags > UINT32_MAX ||
        !ParseI64(tokens[3], &exptime) || !ParseU64(tokens[4], &bytes)) {
      return ClientError("bad command line format");
    }
    if (is_cas && !ParseU64(tokens[5], &cmd.cas)) {
      return ClientError("bad command line format");
    }
    if (tokens.size() == want + 1) {
      if (tokens[want] != "noreply") {
        return ClientError("bad command line format");
      }
      cmd.noreply = true;
    }
    cmd.keys.emplace_back(tokens[1]);
    cmd.flags = static_cast<uint32_t>(flags);
    cmd.exptime = exptime;
    cmd.bytes = static_cast<size_t>(bytes);
    if (cmd.bytes > max_value_bytes) {
      // Keep the kind (the caller must still swallow the data block) but
      // pre-stage the refusal.
      cmd.error = "SERVER_ERROR object too large for cache\r\n";
    }
    return cmd;
  }

  if (verb == "delete") {
    cmd.kind = Command::Kind::kDelete;
    if (tokens.size() < 2 || tokens.size() > 3 || !ValidKey(tokens[1])) {
      return ClientError("bad command line format");
    }
    if (tokens.size() == 3) {
      if (tokens[2] != "noreply") {
        return ClientError("bad command line format");
      }
      cmd.noreply = true;
    }
    cmd.keys.emplace_back(tokens[1]);
    return cmd;
  }

  if (verb == "incr" || verb == "decr") {
    cmd.kind = verb == "incr" ? Command::Kind::kIncr : Command::Kind::kDecr;
    if (tokens.size() < 3 || tokens.size() > 4 || !ValidKey(tokens[1])) {
      return ClientError("bad command line format");
    }
    if (!ParseU64(tokens[2], &cmd.delta)) {
      return ClientError("invalid numeric delta argument");
    }
    if (tokens.size() == 4) {
      if (tokens[3] != "noreply") {
        return ClientError("bad command line format");
      }
      cmd.noreply = true;
    }
    cmd.keys.emplace_back(tokens[1]);
    return cmd;
  }

  if (verb == "touch") {
    cmd.kind = Command::Kind::kTouch;
    if (tokens.size() < 3 || tokens.size() > 4 || !ValidKey(tokens[1]) ||
        !ParseI64(tokens[2], &cmd.exptime)) {
      return ClientError("bad command line format");
    }
    if (tokens.size() == 4) {
      if (tokens[3] != "noreply") {
        return ClientError("bad command line format");
      }
      cmd.noreply = true;
    }
    cmd.keys.emplace_back(tokens[1]);
    return cmd;
  }

  if (verb == "flush_all") {
    cmd.kind = Command::Kind::kFlushAll;
    // Optional delay (accepted, applied immediately) and noreply.
    for (size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i] == "noreply") {
        cmd.noreply = true;
      } else if (int64_t delay = 0; !ParseI64(tokens[i], &delay)) {
        return ClientError("bad command line format");
      }
    }
    return cmd;
  }

  if (verb == "stats") {
    cmd.kind = Command::Kind::kStats;
    return cmd;
  }
  if (verb == "version") {
    cmd.kind = Command::Kind::kVersion;
    return cmd;
  }
  if (verb == "quit") {
    cmd.kind = Command::Kind::kQuit;
    return cmd;
  }
  return Bad("ERROR\r\n");
}

uint64_t ExptimeToExpireAtMs(int64_t exptime, uint64_t now_ms) {
  if (exptime == 0) {
    return 0;  // never expires
  }
  if (exptime < 0) {
    return 1;  // already expired (any nonzero stamp <= now)
  }
  if (exptime <= kRelativeExptimeLimit) {
    return now_ms + static_cast<uint64_t>(exptime) * 1000;
  }
  // Absolute unix seconds.  A timestamp in the past yields a stamp <= now,
  // i.e. already expired — exactly memcached's behavior.
  return static_cast<uint64_t>(exptime) * 1000;
}

void EncodeValue(uint32_t flags, std::string_view data, std::string* out) {
  uint8_t prefix[4];
  EncodeU32(prefix, flags);
  out->clear();
  out->reserve(sizeof(prefix) + data.size());
  out->append(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  out->append(data);
}

void DecodeValue(std::string_view raw, uint32_t* flags, std::string_view* data) {
  if (raw.size() < 4) {
    *flags = 0;
    *data = raw;
    return;
  }
  *flags = DecodeU32(reinterpret_cast<const uint8_t*>(raw.data()));
  *data = raw.substr(4);
}

uint64_t CasOf(std::string_view raw_value) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (const char c : raw_value) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;  // FNV-1a 64 prime
  }
  return hash;
}

}  // namespace mc
}  // namespace net
}  // namespace hashkit
