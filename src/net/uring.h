// hashkit-tpc: a raw-syscall io_uring submission queue for writev.
//
// Optional backend for the server's response flush: instead of calling
// sendmsg from the event loop, a worker submits IORING_OP_WRITEV entries
// and reaps completions when the ring fd polls readable in the same epoll
// set as the connections.  No liburing dependency — the three syscalls and
// the two mmap'd rings are driven directly, which also keeps the feature
// strictly optional: Init() probes io_uring_setup and reports false on
// kernels (or seccomp policies) that refuse it, and the server falls back
// to plain sendmsg.
//
// Scope is deliberately narrow: one ring per worker thread, submissions
// and reaps from that thread only, writev ops only.  The caller guarantees
// the iovec array and the buffers it points into stay alive and unmoved
// until the completion for that user_data is reaped (see OutQueue::Freeze).

#ifndef HASHKIT_SRC_NET_URING_H_
#define HASHKIT_SRC_NET_URING_H_

#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>

#if defined(__linux__) && defined(__has_include)
#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#define HASHKIT_HAS_IO_URING_HEADER 1
#endif
#endif

#if defined(HASHKIT_HAS_IO_URING_HEADER) && defined(__NR_io_uring_setup) && \
    defined(__NR_io_uring_enter)
#define HASHKIT_IO_URING 1
#endif

namespace hashkit {
namespace net {

#if defined(HASHKIT_IO_URING)

class UringQueue {
 public:
  struct Completion {
    uint64_t user_data = 0;
    int32_t res = 0;
  };

  UringQueue() = default;
  ~UringQueue() { Close(); }
  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  // Probes and sets up a ring of `entries` SQEs.  Returns false (leaving
  // the object inert) when the kernel, the seccomp policy, or resource
  // limits refuse io_uring — the caller then uses its sendmsg path.
  bool Init(unsigned entries) {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = static_cast<int>(
        ::syscall(__NR_io_uring_setup, entries, &params));
    if (ring_fd_ < 0) {
      ring_fd_ = -1;
      return false;
    }

    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
    cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) {
      sq_ring_bytes_ = cq_ring_bytes_;
    }

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      CloseFd();
      return false;
    }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        Close();
        return false;
      }
    }
    sqe_bytes_ = params.sq_entries * sizeof(struct io_uring_sqe);
    sqes_ = static_cast<struct io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      Close();
      return false;
    }

    auto* sq = static_cast<uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<uint32_t*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<uint32_t*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + params.cq_off.cqes);
    return true;
  }

  bool ok() const { return ring_fd_ >= 0; }
  int ring_fd() const { return ring_fd_; }

  // Queues one writev and submits it.  The iovec array (and the buffers it
  // references) must outlive the matching completion.  False when the
  // submission queue is full or the enter syscall failed — the caller
  // falls back to a synchronous write for this flush.
  bool SubmitWritev(int fd, const struct iovec* iov, unsigned iovcnt,
                    uint64_t user_data) {
    const uint32_t head = sq_head_->load(std::memory_order_acquire);
    const uint32_t tail = sq_tail_->load(std::memory_order_relaxed);
    if (tail - head > sq_mask_) {
      return false;  // ring full
    }
    const uint32_t idx = tail & sq_mask_;
    struct io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_WRITEV;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(iov);
    sqe->len = iovcnt;
    sqe->user_data = user_data;
    sq_array_[idx] = idx;
    sq_tail_->store(tail + 1, std::memory_order_release);
    int rc;
    do {
      rc = static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd_, 1u, 0u, 0u,
                                      nullptr, 0));
    } while (rc < 0 && errno == EINTR);
    return rc >= 0;
  }

  // Drains available completions; non-blocking.
  size_t Reap(Completion* out, size_t max) {
    size_t n = 0;
    uint32_t head = cq_head_->load(std::memory_order_relaxed);
    const uint32_t tail = cq_tail_->load(std::memory_order_acquire);
    while (head != tail && n < max) {
      const struct io_uring_cqe* cqe = &cqes_[head & cq_mask_];
      out[n].user_data = cqe->user_data;
      out[n].res = cqe->res;
      ++n;
      ++head;
    }
    cq_head_->store(head, std::memory_order_release);
    return n;
  }

  void Close() {
    if (sqes_ != nullptr) {
      ::munmap(sqes_, sqe_bytes_);
      sqes_ = nullptr;
    }
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    cq_ring_ = nullptr;
    if (sq_ring_ != nullptr) {
      ::munmap(sq_ring_, sq_ring_bytes_);
      sq_ring_ = nullptr;
    }
    CloseFd();
  }

 private:
  void CloseFd() {
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
      ring_fd_ = -1;
    }
  }

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqe_bytes_ = 0;
  std::atomic<uint32_t>* sq_head_ = nullptr;
  std::atomic<uint32_t>* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  std::atomic<uint32_t>* cq_head_ = nullptr;
  std::atomic<uint32_t>* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;
};

#else  // !HASHKIT_IO_URING

// Stub for platforms without io_uring headers/syscalls: Init always fails,
// so the server's feature check cleanly selects the sendmsg path.
class UringQueue {
 public:
  struct Completion {
    uint64_t user_data = 0;
    int32_t res = 0;
  };
  bool Init(unsigned) { return false; }
  bool ok() const { return false; }
  int ring_fd() const { return -1; }
  bool SubmitWritev(int, const struct iovec*, unsigned, uint64_t) { return false; }
  size_t Reap(Completion*, size_t) { return 0; }
  void Close() {}
};

#endif  // HASHKIT_IO_URING

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_URING_H_
