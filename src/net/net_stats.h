// hashkit-net: server-side operation counters.
//
// One NetStats instance is shared by every connection of a Server; all
// fields are relaxed atomics (the latency recorders are lock-free
// histograms), so workers bump them without coordination and a STATS
// request (or tests) can snapshot them while traffic is running.

#ifndef HASHKIT_SRC_NET_NET_STATS_H_
#define HASHKIT_SRC_NET_NET_STATS_H_

#include <atomic>
#include <cstdint>

#include "src/net/proto.h"
#include "src/util/histogram.h"

namespace hashkit {
namespace net {

struct NetStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> requests_by_opcode[kOpcodeCount] = {};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> malformed_frames{0};
  std::atomic<uint64_t> idle_timeouts{0};
  // Well-framed requests whose opcode this server does not know (version
  // skew); answered kUnsupported, connection kept.
  std::atomic<uint64_t> unknown_opcodes{0};

  // hashkit-tpc: cross-connection batching and admission control.
  // One "batch" is one per-core drain of decoded key ops executed against
  // the store in a single ApplyBatch call; batched_ops counts the ops
  // inside them (batched_ops / batches = mean batch size, and batch_size
  // is the full distribution).  ops_forwarded counts key ops routed to a
  // different core's partition; ops_shed/ops_deferred are admission
  // control outcomes (kOverloaded answered vs. reads paused).
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batched_ops{0};
  std::atomic<uint64_t> ops_forwarded{0};
  std::atomic<uint64_t> ops_shed{0};
  std::atomic<uint64_t> ops_deferred{0};
  LatencyHistogram batch_size;  // ops per batch (a count, not nanoseconds)

  // hashkit-cache: memcached text shim.  mc_commands counts parsed command
  // lines (including rejects); hits/misses cover text-protocol get/gets
  // lookups only, so a cache-workload driver's hit rate can be read off
  // directly even while binary traffic shares the store.
  std::atomic<uint64_t> mc_connections{0};
  std::atomic<uint64_t> mc_commands{0};
  std::atomic<uint64_t> mc_get_hits{0};
  std::atomic<uint64_t> mc_get_misses{0};

  // hashkit-obs: server-side dispatch latency per opcode — decode-to-encode
  // time for one request, i.e. the store call plus dispatch overhead but
  // not socket wait.  Compare against client-observed RTTs to attribute
  // time to network vs. server.
  LatencyHistogram op_latency_ns[kOpcodeCount];

  // The decoder accepts frames with opcodes this build does not know
  // (version skew), so both per-opcode arrays are guarded: out-of-range
  // opcodes land in `unknown_opcodes` and record no latency.
  void CountRequest(Opcode op) {
    const auto idx = static_cast<uint8_t>(op);
    if (idx > kMaxOpcode) {
      unknown_opcodes.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    requests_by_opcode[idx].fetch_add(1, std::memory_order_relaxed);
  }

  void RecordLatency(Opcode op, uint64_t ns) {
    const auto idx = static_cast<uint8_t>(op);
    if (idx > kMaxOpcode) {
      return;
    }
    op_latency_ns[idx].Record(ns);
  }

  uint64_t TotalRequests() const {
    uint64_t total = 0;
    for (const auto& counter : requests_by_opcode) {
      total += counter.load(std::memory_order_relaxed);
    }
    return total;
  }
};

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_NET_STATS_H_
