#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/util/endian.h"
#include "src/util/histogram.h"

namespace hashkit {
namespace net {

namespace {
Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

// Converts a response's wire status + message back into a Status.
Status FromResponse(const Response& resp) {
  if (resp.status == StatusCode::kOk) {
    return Status::Ok();
  }
  return Status(resp.status, resp.value);
}

// Waits for `events` on `fd` for up to `timeout_ms` (<= 0 waits forever).
// EINTR restarts with the remaining time, so signals cannot stretch the
// deadline.  Returns kTimeout when the deadline expires.  When `revents`
// is non-null it receives which of the requested events fired, so callers
// waiting on POLLOUT | POLLIN can tell drain-ready from send-ready.
Status PollWait(int fd, short events, int timeout_ms, const char* what,
                short* revents = nullptr) {
  struct pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = events;
  const uint64_t deadline_ns =
      timeout_ms > 0 ? MonotonicNanos() + static_cast<uint64_t>(timeout_ms) * 1'000'000 : 0;
  for (;;) {
    int wait_ms = -1;
    if (timeout_ms > 0) {
      const uint64_t now = MonotonicNanos();
      if (now >= deadline_ns) {
        return Status::Timeout(std::string(what) + " timed out");
      }
      wait_ms = static_cast<int>((deadline_ns - now + 999'999) / 1'000'000);
    }
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) {
      if (revents != nullptr) {
        *revents = pfd.revents;
      }
      return Status::Ok();  // readable/writable — or an error the next I/O call reports
    }
    if (rc == 0) {
      return Status::Timeout(std::string(what) + " timed out");
    }
    if (errno != EINTR) {
      return Errno("poll");
    }
  }
}
}  // namespace

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host, uint16_t port,
                                                const ClientOptions& options) {
  // Non-blocking from birth: connect establishment and every later wait
  // go through poll() so each one can carry a deadline.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  const int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  if (rc != 0) {
    // In progress (EINTR leaves a non-blocking connect in progress too):
    // writability signals completion, SO_ERROR carries the verdict.
    const Status st = PollWait(fd, POLLOUT, options.connect_timeout_ms, "connect");
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      const Status gst = Errno("getsockopt");
      ::close(fd);
      return gst;
    }
    if (err != 0) {
      ::close(fd);
      return Status::IoError(std::string("connect: ") + std::strerror(err));
    }
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd, options));
}

Status Client::WriteAll(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a dead server yields an EPIPE Status, not SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: wait for drain.  Each wait gets the full
        // budget, so the deadline bounds *stall*, not total transfer time.
        HASHKIT_RETURN_IF_ERROR(PollWait(fd_, POLLOUT, options_.send_timeout_ms, "send"));
        continue;
      }
      return Errno("write");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Client::ReadResponse(Response* out) {
  for (;;) {
    size_t consumed = 0;
    std::string error;
    switch (DecodeResponse(&buf_, out, &consumed, &error)) {
      case DecodeResult::kFrame:
        return Status::Ok();
      case DecodeResult::kMalformed:
        return Status::Corruption("malformed response: " + error);
      case DecodeResult::kNeedMore:
        break;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Nothing buffered: wait for the server, bounded per wait (reset on
      // every arriving chunk, so a live bulk response never trips it).
      HASHKIT_RETURN_IF_ERROR(PollWait(fd_, POLLIN, options_.recv_timeout_ms, "recv"));
      continue;
    }
    if (n == 0) {
      return Status::IoError("server closed the connection");
    }
    return Errno("read");
  }
}

Status Client::Call(Request req, Response* resp) {
  req.seq = next_seq_++;
  std::string wire;
  EncodeRequest(req, &wire);
  HASHKIT_RETURN_IF_ERROR(WriteAll(wire));
  HASHKIT_RETURN_IF_ERROR(ReadResponse(resp));
  if (resp->seq != req.seq) {
    return Status::Corruption("response out of sequence");
  }
  return Status::Ok();
}

Status Client::Pipeline(const std::vector<Request>& requests,
                        std::vector<Response>* responses) {
  responses->clear();
  responses->reserve(requests.size());
  if (requests.empty()) {
    return Status::Ok();
  }
  const uint32_t first_seq = next_seq_;

  // Framing: small requests (header + key + value) coalesce into one
  // contiguous wire buffer so a depth-32 pipeline of point ops goes out as
  // a single iovec in a single sendmsg — per-request iovecs cost more than
  // the copy for tiny payloads.  Values past the inline limit stay
  // zero-copy: they are scattered straight out of the caller's request by
  // writev, so a bulk pipeline never builds a second flat copy of itself.
  constexpr size_t kInlineValue = 1024;
  struct Piece {
    size_t op;        // request index, for stall diagnostics
    const char* ext;  // external bytes, or nullptr for wire[off, off+len)
    size_t off;
    size_t len;
  };
  std::string wire;
  wire.reserve(requests.size() * (kHeaderSize + 64));
  std::vector<Piece> pieces;
  pieces.reserve(requests.size() + 1);
  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    const size_t begin = wire.size();
    EncodeRequestHeaderRaw(req.op, req.flags, next_seq_++,
                           static_cast<uint32_t>(req.key.size()),
                           static_cast<uint32_t>(req.value.size()), &wire);
    wire += req.key;
    const bool inline_value = req.value.size() <= kInlineValue;
    if (inline_value) {
      wire += req.value;
    }
    if (!pieces.empty() && pieces.back().ext == nullptr &&
        pieces.back().off + pieces.back().len == begin) {
      pieces.back().len = wire.size() - pieces.back().off;  // extend the run
    } else {
      pieces.push_back({i, nullptr, begin, wire.size() - begin});
    }
    if (!inline_value) {
      pieces.push_back({i, req.value.data(), 0, req.value.size()});
    }
  }
  // Materialize iovecs only after `wire` stops growing — offsets survive
  // reallocation, pointers would not.
  std::vector<struct iovec> iov(pieces.size());
  std::vector<size_t> iov_op(pieces.size());  // iovec -> request, for deadlines
  for (size_t p = 0; p < pieces.size(); ++p) {
    iov[p].iov_base = const_cast<char*>(
        pieces[p].ext != nullptr ? pieces[p].ext : wire.data() + pieces[p].off);
    iov[p].iov_len = pieces[p].len;
    iov_op[p] = pieces[p].op;
  }

  // Incremental flush: send in iovec chunks, and whenever the socket
  // back-pressures, opportunistically drain responses that are already
  // arriving.  Without the drain, a large pipeline deadlocks once the
  // server's responses fill its send window while our requests fill ours —
  // each side blocked writing, neither reading.
  constexpr size_t kMaxIov = 64;
  size_t read_idx = 0;   // responses collected so far
  size_t iov_pos = 0;    // first iovec not fully written
  while (iov_pos < iov.size()) {
    struct msghdr msg = {};
    msg.msg_iov = &iov[iov_pos];
    msg.msg_iovlen = std::min(iov.size() - iov_pos, kMaxIov);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      size_t left = static_cast<size_t>(n);
      while (left > 0 && iov_pos < iov.size()) {
        if (left >= iov[iov_pos].iov_len) {
          left -= iov[iov_pos].iov_len;
          ++iov_pos;
        } else {
          // Partial write mid-iovec: resume inside this piece next round.
          iov[iov_pos].iov_base = static_cast<char*>(iov[iov_pos].iov_base) + left;
          iov[iov_pos].iov_len -= left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      short revents = 0;
      const Status st = PollWait(fd_, POLLOUT | POLLIN, options_.send_timeout_ms,
                                 "pipeline send", &revents);
      if (st.IsTimeout()) {
        // Per-op deadline: name the request whose bytes stalled, so the
        // caller can tell a wedged op from a generically slow link.
        return Status::Timeout("pipeline send stalled at op " +
                               std::to_string(iov_op[iov_pos]) + " of " +
                               std::to_string(requests.size()));
      }
      HASHKIT_RETURN_IF_ERROR(st);
      if ((revents & POLLIN) != 0 && read_idx < requests.size()) {
        Response resp;
        HASHKIT_RETURN_IF_ERROR(ReadResponse(&resp));
        if (resp.seq != first_seq + read_idx) {
          return Status::Corruption("pipelined response out of sequence");
        }
        responses->push_back(std::move(resp));
        ++read_idx;
      }
      continue;
    }
    return Errno("sendmsg");
  }

  for (; read_idx < requests.size(); ++read_idx) {
    Response resp;
    HASHKIT_RETURN_IF_ERROR(ReadResponse(&resp));
    if (resp.seq != first_seq + read_idx) {
      return Status::Corruption("pipelined response out of sequence");
    }
    responses->push_back(std::move(resp));
  }
  return Status::Ok();
}

Status Client::Put(std::string_view key, std::string_view value, bool overwrite) {
  Request req;
  req.op = Opcode::kPut;
  req.key = key;
  req.value = value;
  if (!overwrite) {
    req.flags |= kFlagNoOverwrite;
  }
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  return FromResponse(resp);
}

Status Client::PutTtl(std::string_view key, std::string_view value, uint32_t ttl_ms,
                      bool overwrite) {
  Request req;
  req.op = Opcode::kPut;
  req.flags = kFlagPutTtl;
  if (!overwrite) {
    req.flags |= kFlagNoOverwrite;
  }
  req.key = key;
  uint8_t prefix[kPutTtlPrefixBytes];
  EncodeU32(prefix, ttl_ms);
  req.value.assign(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  req.value += value;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  return FromResponse(resp);
}

Status Client::Touch(std::string_view key, uint32_t ttl_ms) {
  Request req;
  req.op = Opcode::kTouch;
  req.key = key;
  uint8_t buf[4];
  EncodeU32(buf, ttl_ms);
  req.value.assign(reinterpret_cast<const char*>(buf), sizeof(buf));
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  return FromResponse(resp);
}

Status Client::Get(std::string_view key, std::string* value) {
  Request req;
  req.op = Opcode::kGet;
  req.key = key;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  const Status st = FromResponse(resp);
  if (st.ok() && value != nullptr) {
    *value = std::move(resp.value);
  }
  return st;
}

Status Client::Delete(std::string_view key) {
  Request req;
  req.op = Opcode::kDel;
  req.key = key;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  return FromResponse(resp);
}

Status Client::Scan(std::string* key, std::string* value, bool first) {
  Request req;
  req.op = Opcode::kScan;
  if (first) {
    req.flags |= kFlagScanFirst;
  }
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  const Status st = FromResponse(resp);
  if (st.ok()) {
    if (key != nullptr) {
      *key = std::move(resp.key);
    }
    if (value != nullptr) {
      *value = std::move(resp.value);
    }
  }
  return st;
}

Status Client::Sync() {
  Request req;
  req.op = Opcode::kSync;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  return FromResponse(resp);
}

Status Client::Ping(std::string_view payload) {
  Request req;
  req.op = Opcode::kPing;
  req.value = payload;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  if (resp.value != payload) {
    return Status::Corruption("ping payload mismatch");
  }
  return FromResponse(resp);
}

Status Client::Stats(std::string* text) {
  Request req;
  req.op = Opcode::kStats;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  const Status st = FromResponse(resp);
  if (st.ok() && text != nullptr) {
    *text = std::move(resp.value);
  }
  return st;
}

}  // namespace net
}  // namespace hashkit
