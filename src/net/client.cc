#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hashkit {
namespace net {

namespace {
Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

// Converts a response's wire status + message back into a Status.
Status FromResponse(const Response& resp) {
  if (resp.status == StatusCode::kOk) {
    return Status::Ok();
  }
  return Status(resp.status, resp.value);
}
}  // namespace

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Status Client::WriteAll(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a dead server yields an EPIPE Status, not SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("write");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Client::ReadResponse(Response* out) {
  for (;;) {
    size_t consumed = 0;
    std::string error;
    switch (DecodeResponse(&buf_, out, &consumed, &error)) {
      case DecodeResult::kFrame:
        return Status::Ok();
      case DecodeResult::kMalformed:
        return Status::Corruption("malformed response: " + error);
      case DecodeResult::kNeedMore:
        break;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n == 0) {
      return Status::IoError("server closed the connection");
    }
    return Errno("read");
  }
}

Status Client::Call(Request req, Response* resp) {
  req.seq = next_seq_++;
  std::string wire;
  EncodeRequest(req, &wire);
  HASHKIT_RETURN_IF_ERROR(WriteAll(wire));
  HASHKIT_RETURN_IF_ERROR(ReadResponse(resp));
  if (resp->seq != req.seq) {
    return Status::Corruption("response out of sequence");
  }
  return Status::Ok();
}

Status Client::Pipeline(const std::vector<Request>& requests,
                        std::vector<Response>* responses) {
  responses->clear();
  responses->reserve(requests.size());
  std::string wire;
  const uint32_t first_seq = next_seq_;
  for (const Request& req : requests) {
    Request numbered = req;
    numbered.seq = next_seq_++;
    EncodeRequest(numbered, &wire);
  }
  HASHKIT_RETURN_IF_ERROR(WriteAll(wire));
  for (size_t i = 0; i < requests.size(); ++i) {
    Response resp;
    HASHKIT_RETURN_IF_ERROR(ReadResponse(&resp));
    if (resp.seq != first_seq + i) {
      return Status::Corruption("pipelined response out of sequence");
    }
    responses->push_back(std::move(resp));
  }
  return Status::Ok();
}

Status Client::Put(std::string_view key, std::string_view value, bool overwrite) {
  Request req;
  req.op = Opcode::kPut;
  req.key = key;
  req.value = value;
  if (!overwrite) {
    req.flags |= kFlagNoOverwrite;
  }
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  return FromResponse(resp);
}

Status Client::Get(std::string_view key, std::string* value) {
  Request req;
  req.op = Opcode::kGet;
  req.key = key;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  const Status st = FromResponse(resp);
  if (st.ok() && value != nullptr) {
    *value = std::move(resp.value);
  }
  return st;
}

Status Client::Delete(std::string_view key) {
  Request req;
  req.op = Opcode::kDel;
  req.key = key;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  return FromResponse(resp);
}

Status Client::Scan(std::string* key, std::string* value, bool first) {
  Request req;
  req.op = Opcode::kScan;
  if (first) {
    req.flags |= kFlagScanFirst;
  }
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  const Status st = FromResponse(resp);
  if (st.ok()) {
    if (key != nullptr) {
      *key = std::move(resp.key);
    }
    if (value != nullptr) {
      *value = std::move(resp.value);
    }
  }
  return st;
}

Status Client::Sync() {
  Request req;
  req.op = Opcode::kSync;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  return FromResponse(resp);
}

Status Client::Ping(std::string_view payload) {
  Request req;
  req.op = Opcode::kPing;
  req.value = payload;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  if (resp.value != payload) {
    return Status::Corruption("ping payload mismatch");
  }
  return FromResponse(resp);
}

Status Client::Stats(std::string* text) {
  Request req;
  req.op = Opcode::kStats;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(Call(std::move(req), &resp));
  const Status st = FromResponse(resp);
  if (st.ok() && text != nullptr) {
    *text = std::move(resp.value);
  }
  return st;
}

}  // namespace net
}  // namespace hashkit
