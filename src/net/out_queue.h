// hashkit-tpc: outbound byte queue assembled for scatter-gather writes.
//
// The old server buffered each connection's responses in one flat
// std::string, which meant every large GET value was copied twice: once
// into the frame and once more each time the string compacted after a
// partial send.  OutQueue keeps the bytes as a deque of segments instead:
// small pieces (headers, short keys/values) coalesce into the tail segment,
// large values move in as their own segment with zero copies, and the
// writer drains the queue with writev over an iovec chain built by
// FillIovecs.  Partial writes advance a head offset; nothing is ever
// memmoved.
//
// Freeze semantics: an asynchronous submission backend (io_uring) hands the
// kernel pointers into these segments and completes later.  Freeze() pins
// every byte currently queued — Advance may consume them when the
// completion arrives, but until Unfreeze() no append may touch a frozen
// segment (appends always start a fresh segment while frozen), and the
// deque itself guarantees segment addresses are stable under push_back.

#ifndef HASHKIT_SRC_NET_OUT_QUEUE_H_
#define HASHKIT_SRC_NET_OUT_QUEUE_H_

#include <sys/uio.h>

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>

namespace hashkit {
namespace net {

class OutQueue {
 public:
  // Pieces at or below this size are appended into the current tail
  // segment; larger ones (and any append while frozen) start their own.
  // 512 keeps header+small-value responses in one iovec while letting big
  // values ride as dedicated zero-copy segments.
  static constexpr size_t kCoalesceLimit = 512;

  void Append(std::string_view bytes) {
    if (bytes.empty()) {
      return;
    }
    if (CanCoalesce(bytes.size())) {
      segments_.back().append(bytes);
    } else {
      segments_.emplace_back(bytes);
    }
    pending_ += bytes.size();
  }

  // Moves a whole buffer in as its own segment — no copy regardless of
  // size.  Meant for response values (the bytes the store just produced).
  void AppendOwned(std::string&& bytes) {
    if (bytes.empty()) {
      return;
    }
    const size_t len = bytes.size();
    if (CanCoalesce(len)) {
      // Tiny buffers still coalesce: one small memcpy beats an extra iovec.
      segments_.back().append(bytes);
    } else {
      segments_.emplace_back(std::move(bytes));
    }
    pending_ += len;
  }

  // Builds at most `max` iovecs over the queued bytes starting at the head
  // offset.  Returns the count filled.
  size_t FillIovecs(struct iovec* iov, size_t max) const {
    size_t n = 0;
    size_t off = head_off_;
    for (const std::string& seg : segments_) {
      if (n == max) {
        break;
      }
      if (off >= seg.size()) {
        off -= seg.size();
        continue;
      }
      iov[n].iov_base = const_cast<char*>(seg.data()) + off;
      iov[n].iov_len = seg.size() - off;
      off = 0;
      ++n;
    }
    return n;
  }

  // Consumes `n` bytes from the head (a successful partial or full write).
  // Fully-consumed segments are only popped while not frozen — a frozen
  // queue may still Advance (completions consume bytes), but the segment
  // storage stays alive until Unfreeze for any iovec the kernel still
  // holds.
  void Advance(size_t n) {
    pending_ -= n;
    head_off_ += n;
    if (!frozen_) {
      PopConsumed();
    }
  }

  // Pins current segment storage: appends stop coalescing into existing
  // segments and consumed segments are not released until Unfreeze.
  void Freeze() { frozen_ = true; }
  void Unfreeze() {
    frozen_ = false;
    PopConsumed();
  }
  bool frozen() const { return frozen_; }

  size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  void Clear() {
    segments_.clear();
    head_off_ = 0;
    pending_ = 0;
    frozen_ = false;
  }

 private:
  bool CanCoalesce(size_t len) const {
    return !frozen_ && !segments_.empty() && len <= kCoalesceLimit &&
           segments_.back().size() + len <= 4 * kCoalesceLimit;
  }

  void PopConsumed() {
    while (!segments_.empty() && head_off_ >= segments_.front().size()) {
      head_off_ -= segments_.front().size();
      segments_.pop_front();
    }
  }

  std::deque<std::string> segments_;
  size_t head_off_ = 0;   // bytes of segments_.front() already written
  size_t pending_ = 0;    // total unwritten bytes across all segments
  bool frozen_ = false;
};

}  // namespace net
}  // namespace hashkit

#endif  // HASHKIT_SRC_NET_OUT_QUEUE_H_
