// hashkit-net command-line client: db_tool's verbs against a live server.
//
//   hashkit_cli [--host=H] [--port=P] put <key> <value>
//   hashkit_cli [--host=H] [--port=P] get <key>
//   hashkit_cli [--host=H] [--port=P] del <key>
//   hashkit_cli [--host=H] [--port=P] dump        (full SCAN)
//   hashkit_cli [--host=H] [--port=P] stats
//   hashkit_cli [--host=H] [--port=P] ping [payload]
//   hashkit_cli [--host=H] [--port=P] sync
//   hashkit_cli [--host=H] [--port=P] load        (key<TAB>value from stdin,
//                                                  pipelined in batches)
//
// Against a cluster node, the data commands (put/get/del/load) route
// through a ClusterClient: keys go to their owning node and MOVED replies
// are followed, so any live node works as the contact point.  `dump` and
// `stats` stay node-local by design — they inspect the node you named.
//
// Cluster administration (--host/--port name any live cluster node; the
// CLI fetches the map and routes each command to the right owner itself):
//
//   hashkit_cli cluster-map                  print the cluster map
//   hashkit_cli cluster-split                split bucket `next` at its owner
//   hashkit_cli cluster-move <bucket> <node> move a bucket to another node
//   hashkit_cli cluster-drain <node>         move every bucket off a node
//   hashkit_cli cluster-leave <node>         remove a drained node from the map

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/cluster_client.h"
#include "src/cluster/cluster_map.h"
#include "src/net/client.h"
#include "src/util/endian.h"

using hashkit::Status;
using hashkit::cluster::ClusterClient;
using hashkit::cluster::ClusterMap;
using hashkit::cluster::NodeInfo;
using hashkit::net::Client;
using hashkit::net::Opcode;
using hashkit::net::Request;
using hashkit::net::Response;

namespace {

int Usage(int code) {
  std::fprintf(stderr,
               "usage: hashkit_cli [--host=H] [--port=P] <command>\n"
               "commands: put <key> <value> | get <key> | del <key> |\n"
               "          dump | stats | ping [payload] | sync | load |\n"
               "          cluster-map | cluster-split | cluster-move <bucket> <node> |\n"
               "          cluster-drain <node> | cluster-leave <node>\n"
               "defaults: host 127.0.0.1, port 4691\n");
  return code;
}

int Fail(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

// Renders the server's "key=value" stats text: latency blocks
// (*.latency.<name>.{count,mean_ns,p50_ns,...}) are gathered into one
// table in microseconds, cluster.* lines into a cluster block plus a
// per-node table; every other line prints verbatim.
void PrintStats(const std::string& text) {
  struct Lat {
    std::map<std::string, double> fields;  // metric suffix -> value
  };
  std::map<std::string, Lat> latency;  // insertion not needed; sorted is fine
  std::vector<std::pair<std::string, std::string>> cluster;    // scalar lines, server order
  std::map<std::string, std::map<std::string, std::string>> cluster_nodes;  // id -> fields
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t eq = line.find('=');
    const size_t lat = line.find(".latency.");
    if (eq != std::string::npos && line.compare(0, 8, "cluster.") == 0) {
      const std::string key = line.substr(8, eq - 8);
      const std::string value = line.substr(eq + 1);
      if (key.compare(0, 5, "node.") == 0) {
        const size_t field_dot = key.rfind('.');
        cluster_nodes[key.substr(5, field_dot - 5)][key.substr(field_dot + 1)] = value;
      } else {
        cluster.emplace_back(key, value);
      }
      continue;
    }
    if (eq == std::string::npos || lat == std::string::npos) {
      std::printf("%s\n", line.c_str());
      continue;
    }
    const std::string key = line.substr(0, eq);
    const size_t field_dot = key.rfind('.');
    latency[key.substr(0, field_dot)].fields[key.substr(field_dot + 1)] =
        std::strtod(line.c_str() + eq + 1, nullptr);
  }
  if (!latency.empty()) {
    std::printf("\n%-32s %10s %9s %9s %9s %9s %9s %9s\n", "latency (us)", "count", "mean",
                "p50", "p90", "p99", "p999", "max");
    for (const auto& [name, lat] : latency) {
      const auto us = [&lat](const char* field) {
        const auto it = lat.fields.find(field);
        return it != lat.fields.end() ? it->second / 1000.0 : 0.0;
      };
      const auto count_it = lat.fields.find("count");
      std::printf("%-32s %10.0f %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f\n", name.c_str(),
                  count_it != lat.fields.end() ? count_it->second : 0.0, us("mean_ns"),
                  us("p50_ns"), us("p90_ns"), us("p99_ns"), us("p999_ns"), us("max_ns"));
    }
  }
  if (!cluster.empty()) {
    std::printf("\n%-32s %10s\n", "cluster", "value");
    for (const auto& [key, value] : cluster) {
      std::printf("%-32s %10s\n", key.c_str(), value.c_str());
    }
  }
  if (!cluster_nodes.empty()) {
    std::printf("\n%-8s %-24s %10s\n", "node", "addr", "buckets");
    for (const auto& [id, fields] : cluster_nodes) {
      const auto addr = fields.find("addr");
      const auto buckets = fields.find("buckets");
      std::printf("%-8s %-24s %10s\n", id.c_str(),
                  addr != fields.end() ? addr->second.c_str() : "?",
                  buckets != fields.end() ? buckets->second.c_str() : "?");
    }
  }
}

// --- cluster admin helpers: every command fetches the map from the node
// the CLI was pointed at, then routes itself to the right owner. ---

// One MIGRATE (or MAP_GET) round trip against a specific node.
Status SendOne(Client* client, Request req, Response* out) {
  std::vector<Request> reqs;
  reqs.push_back(std::move(req));
  std::vector<Response> resps;
  HASHKIT_RETURN_IF_ERROR(client->Pipeline(reqs, &resps));
  *out = std::move(resps[0]);
  if (out->status != hashkit::StatusCode::kOk) {
    return Status(out->status, out->value);
  }
  return Status::Ok();
}

Status FetchMap(Client* client, ClusterMap* map) {
  Request req;
  req.op = Opcode::kMapGet;
  Response resp;
  HASHKIT_RETURN_IF_ERROR(SendOne(client, std::move(req), &resp));
  size_t consumed = 0;
  return map->Deserialize(resp.value, &consumed);
}

// Connects to `node` and sends one MIGRATE admin frame.
Status SendMigrateTo(const NodeInfo& node, uint8_t sub_op, std::string value,
                     Response* out) {
  auto connected = Client::Connect(node.host, node.port);
  if (!connected.ok()) {
    return connected.status();
  }
  Request req;
  req.op = Opcode::kMigrate;
  req.flags = sub_op;
  req.value = std::move(value);
  return SendOne(connected.value().get(), std::move(req), out);
}

void PrintMap(const ClusterMap& map) {
  std::printf("map version %u  level %u  next %u  buckets %u  nodes %zu\n", map.version,
              map.level, map.next, map.bucket_count(), map.nodes.size());
  std::printf("\n%-8s %-24s %10s  %s\n", "node", "addr", "buckets", "owned");
  for (const NodeInfo& node : map.nodes) {
    std::string owned;
    for (uint32_t b = 0; b < map.bucket_count(); ++b) {
      if (map.OwnerOf(b) == node.id) {
        owned += (owned.empty() ? "" : ",") + std::to_string(b);
      }
    }
    std::printf("%-8u %-24s %10u  %s\n", node.id, node.Address().c_str(),
                map.BucketsOwnedBy(node.id), owned.c_str());
  }
}

// Least-loaded node other than `exclude` (ties to the lowest id); the same
// choice the server's auto-split makes.
const NodeInfo* PickTarget(const ClusterMap& map, uint32_t exclude) {
  const NodeInfo* best = nullptr;
  for (const NodeInfo& node : map.nodes) {
    if (node.id == exclude) {
      continue;
    }
    if (best == nullptr || map.BucketsOwnedBy(node.id) < map.BucketsOwnedBy(best->id) ||
        (map.BucketsOwnedBy(node.id) == map.BucketsOwnedBy(best->id) && node.id < best->id)) {
      best = &node;
    }
  }
  return best;
}

void SleepMs(long ms) {
  struct timespec ts = {ms / 1000, (ms % 1000) * 1000000L};
  nanosleep(&ts, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 4691;
  int arg = 1;
  for (; arg < argc; ++arg) {
    if (std::strncmp(argv[arg], "--host=", 7) == 0) {
      host = argv[arg] + 7;
    } else if (std::strncmp(argv[arg], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[arg] + 7));
    } else if (std::strcmp(argv[arg], "--help") == 0) {
      return Usage(0);
    } else {
      break;
    }
  }
  if (arg >= argc) {
    return Usage(2);
  }
  const std::string cmd = argv[arg++];
  const int rest = argc - arg;

  auto connected = Client::Connect(host, port);
  if (!connected.ok()) {
    return Fail("connect", connected.status());
  }
  auto client = std::move(connected).value();

  // Data ops against a cluster member go through a ClusterClient so keys
  // route to their owners and MOVED replies are followed.  A non-cluster
  // server has no map to fetch; fall back to the plain connection.
  std::unique_ptr<ClusterClient> cluster;
  if (cmd == "put" || cmd == "get" || cmd == "del" || cmd == "load") {
    auto cc = ClusterClient::Connect({host + ":" + std::to_string(port)});
    if (cc.ok()) {
      cluster = std::move(cc).value();
    }
  }

  if (cmd == "put" && rest >= 2) {
    const Status st = cluster != nullptr ? cluster->Put(argv[arg], argv[arg + 1])
                                         : client->Put(argv[arg], argv[arg + 1]);
    return st.ok() ? 0 : Fail("put", st);
  }
  if (cmd == "get" && rest >= 1) {
    std::string value;
    const Status st =
        cluster != nullptr ? cluster->Get(argv[arg], &value) : client->Get(argv[arg], &value);
    if (!st.ok()) {
      return Fail("get", st);
    }
    std::printf("%s\n", value.c_str());
    return 0;
  }
  if (cmd == "del" && rest >= 1) {
    const Status st = cluster != nullptr ? cluster->Delete(argv[arg]) : client->Delete(argv[arg]);
    return st.ok() ? 0 : Fail("del", st);
  }
  if (cmd == "dump") {
    std::string key, value;
    Status st = client->Scan(&key, &value, true);
    while (st.ok()) {
      std::printf("%s\t%s\n", key.c_str(), value.c_str());
      st = client->Scan(&key, &value, false);
    }
    return st.IsNotFound() ? 0 : Fail("dump", st);
  }
  if (cmd == "stats") {
    std::string text;
    const Status st = client->Stats(&text);
    if (!st.ok()) {
      return Fail("stats", st);
    }
    PrintStats(text);
    return 0;
  }
  if (cmd == "ping") {
    const Status st = client->Ping(rest >= 1 ? argv[arg] : "ping");
    if (!st.ok()) {
      return Fail("ping", st);
    }
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "sync") {
    const Status st = client->Sync();
    return st.ok() ? 0 : Fail("sync", st);
  }
  if (cmd == "cluster-map") {
    ClusterMap map;
    const Status st = FetchMap(client.get(), &map);
    if (!st.ok()) {
      return Fail("cluster-map", st);
    }
    PrintMap(map);
    return 0;
  }
  if (cmd == "cluster-split") {
    ClusterMap map;
    Status st = FetchMap(client.get(), &map);
    if (!st.ok()) {
      return Fail("cluster-split", st);
    }
    // Only the owner of bucket `next` may split; aim the frame there.
    const NodeInfo* owner = map.FindNode(map.OwnerOf(map.next));
    if (owner == nullptr) {
      return Fail("cluster-split", Status::Corruption("map names no owner for next"));
    }
    Response resp;
    st = SendMigrateTo(*owner, hashkit::net::kMigrateSplit, "", &resp);
    if (!st.ok()) {
      return Fail("cluster-split", st);
    }
    std::printf("%s (bucket %u at node %u)\n", resp.value.c_str(), map.next, owner->id);
    return 0;
  }
  if (cmd == "cluster-move" && rest >= 2) {
    const uint32_t bucket = static_cast<uint32_t>(std::atol(argv[arg]));
    const uint32_t target = static_cast<uint32_t>(std::atol(argv[arg + 1]));
    ClusterMap map;
    Status st = FetchMap(client.get(), &map);
    if (!st.ok()) {
      return Fail("cluster-move", st);
    }
    if (bucket >= map.bucket_count()) {
      return Fail("cluster-move", Status::InvalidArgument("bucket out of range"));
    }
    const NodeInfo* owner = map.FindNode(map.OwnerOf(bucket));
    if (owner == nullptr) {
      return Fail("cluster-move", Status::Corruption("map names no owner for bucket"));
    }
    std::string payload(8, '\0');
    hashkit::EncodeU32(reinterpret_cast<uint8_t*>(payload.data()), bucket);
    hashkit::EncodeU32(reinterpret_cast<uint8_t*>(payload.data() + 4), target);
    Response resp;
    st = SendMigrateTo(*owner, hashkit::net::kMigrateMove, std::move(payload), &resp);
    if (!st.ok()) {
      return Fail("cluster-move", st);
    }
    std::printf("%s (bucket %u: node %u -> node %u)\n", resp.value.c_str(), bucket, owner->id,
                target);
    return 0;
  }
  if (cmd == "cluster-drain" && rest >= 1) {
    // Moves every bucket off the node, one migration at a time (the engine
    // runs one transfer per coordinator), polling the map in between.
    const uint32_t drainee = static_cast<uint32_t>(std::atol(argv[arg]));
    for (;;) {
      ClusterMap map;
      Status st = FetchMap(client.get(), &map);
      if (!st.ok()) {
        return Fail("cluster-drain", st);
      }
      const NodeInfo* source = map.FindNode(drainee);
      if (source == nullptr) {
        return Fail("cluster-drain", Status::NotFound("node not in map"));
      }
      uint32_t bucket = map.bucket_count();
      for (uint32_t b = 0; b < map.bucket_count(); ++b) {
        if (map.OwnerOf(b) == drainee) {
          bucket = b;
          break;
        }
      }
      if (bucket == map.bucket_count()) {
        std::printf("node %u drained (map v%u); cluster-leave %u when ready\n", drainee,
                    map.version, drainee);
        return 0;
      }
      const NodeInfo* target = PickTarget(map, drainee);
      if (target == nullptr) {
        return Fail("cluster-drain", Status::InvalidArgument("no other node to drain to"));
      }
      std::string payload(8, '\0');
      hashkit::EncodeU32(reinterpret_cast<uint8_t*>(payload.data()), bucket);
      hashkit::EncodeU32(reinterpret_cast<uint8_t*>(payload.data() + 4), target->id);
      Response resp;
      st = SendMigrateTo(*source, hashkit::net::kMigrateMove, std::move(payload), &resp);
      // "migration already in progress" (kInvalidArgument) just means wait
      // for the in-flight transfer; anything else is fatal.
      if (!st.ok() && st.code() != hashkit::StatusCode::kInvalidArgument) {
        return Fail("cluster-drain", st);
      }
      if (st.ok()) {
        std::printf("moving bucket %u: node %u -> node %u\n", bucket, drainee, target->id);
      }
      // Wait for the move (or the one already in flight) to land in the map.
      for (int i = 0; i < 300; ++i) {
        SleepMs(100);
        ClusterMap now;
        if (FetchMap(client.get(), &now).ok() && now.version > map.version) {
          break;
        }
      }
    }
  }
  if (cmd == "cluster-leave" && rest >= 1) {
    const uint32_t node_id = static_cast<uint32_t>(std::atol(argv[arg]));
    ClusterMap map;
    Status st = FetchMap(client.get(), &map);
    if (!st.ok()) {
      return Fail("cluster-leave", st);
    }
    // LEAVE must be sent to the leaving node itself.
    const NodeInfo* node = map.FindNode(node_id);
    if (node == nullptr) {
      return Fail("cluster-leave", Status::NotFound("node not in map"));
    }
    std::string payload(4, '\0');
    hashkit::EncodeU32(reinterpret_cast<uint8_t*>(payload.data()), node_id);
    Response resp;
    st = SendMigrateTo(*node, hashkit::net::kMigrateLeave, std::move(payload), &resp);
    if (!st.ok()) {
      return Fail("cluster-leave", st);
    }
    std::printf("%s\n", resp.value.c_str());
    return 0;
  }
  if (cmd == "load") {
    // Pipelined bulk load: batch stdin pairs to amortize round trips.
    constexpr size_t kBatch = 256;
    std::vector<Request> batch;
    std::vector<Response> responses;
    std::string line;
    size_t loaded = 0, failed = 0;
    const auto flush = [&]() -> Status {
      if (batch.empty()) {
        return Status::Ok();
      }
      if (cluster != nullptr) {
        HASHKIT_RETURN_IF_ERROR(cluster->Pipeline(batch, &responses));
      } else {
        HASHKIT_RETURN_IF_ERROR(client->Pipeline(batch, &responses));
      }
      for (const Response& resp : responses) {
        if (resp.status == hashkit::StatusCode::kOk) {
          ++loaded;
        } else {
          ++failed;
        }
      }
      batch.clear();
      return Status::Ok();
    };
    while (std::getline(std::cin, line)) {
      const size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        continue;
      }
      Request req;
      req.op = Opcode::kPut;
      req.key = line.substr(0, tab);
      req.value = line.substr(tab + 1);
      batch.push_back(std::move(req));
      if (batch.size() >= kBatch) {
        const Status st = flush();
        if (!st.ok()) {
          return Fail("load", st);
        }
      }
    }
    Status st = flush();
    if (!st.ok()) {
      return Fail("load", st);
    }
    st = client->Sync();
    if (!st.ok()) {
      return Fail("sync", st);
    }
    std::printf("loaded %zu pairs (%zu failed)\n", loaded, failed);
    return 0;
  }
  return Usage(2);
}
