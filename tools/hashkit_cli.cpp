// hashkit-net command-line client: db_tool's verbs against a live server.
//
//   hashkit_cli [--host=H] [--port=P] put <key> <value>
//   hashkit_cli [--host=H] [--port=P] get <key>
//   hashkit_cli [--host=H] [--port=P] del <key>
//   hashkit_cli [--host=H] [--port=P] dump        (full SCAN)
//   hashkit_cli [--host=H] [--port=P] stats
//   hashkit_cli [--host=H] [--port=P] ping [payload]
//   hashkit_cli [--host=H] [--port=P] sync
//   hashkit_cli [--host=H] [--port=P] load        (key<TAB>value from stdin,
//                                                  pipelined in batches)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/client.h"

using hashkit::Status;
using hashkit::net::Client;
using hashkit::net::Opcode;
using hashkit::net::Request;
using hashkit::net::Response;

namespace {

int Usage(int code) {
  std::fprintf(stderr,
               "usage: hashkit_cli [--host=H] [--port=P] <command>\n"
               "commands: put <key> <value> | get <key> | del <key> |\n"
               "          dump | stats | ping [payload] | sync | load\n"
               "defaults: host 127.0.0.1, port 4691\n");
  return code;
}

int Fail(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

// Renders the server's "key=value" stats text: latency blocks
// (*.latency.<name>.{count,mean_ns,p50_ns,...}) are gathered into one
// table in microseconds; every other line prints verbatim.
void PrintStats(const std::string& text) {
  struct Lat {
    std::map<std::string, double> fields;  // metric suffix -> value
  };
  std::map<std::string, Lat> latency;  // insertion not needed; sorted is fine
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t eq = line.find('=');
    const size_t lat = line.find(".latency.");
    if (eq == std::string::npos || lat == std::string::npos) {
      std::printf("%s\n", line.c_str());
      continue;
    }
    const std::string key = line.substr(0, eq);
    const size_t field_dot = key.rfind('.');
    latency[key.substr(0, field_dot)].fields[key.substr(field_dot + 1)] =
        std::strtod(line.c_str() + eq + 1, nullptr);
  }
  if (latency.empty()) {
    return;
  }
  std::printf("\n%-32s %10s %9s %9s %9s %9s %9s %9s\n", "latency (us)", "count", "mean",
              "p50", "p90", "p99", "p999", "max");
  for (const auto& [name, lat] : latency) {
    const auto us = [&lat](const char* field) {
      const auto it = lat.fields.find(field);
      return it != lat.fields.end() ? it->second / 1000.0 : 0.0;
    };
    const auto count_it = lat.fields.find("count");
    std::printf("%-32s %10.0f %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f\n", name.c_str(),
                count_it != lat.fields.end() ? count_it->second : 0.0, us("mean_ns"),
                us("p50_ns"), us("p90_ns"), us("p99_ns"), us("p999_ns"), us("max_ns"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 4691;
  int arg = 1;
  for (; arg < argc; ++arg) {
    if (std::strncmp(argv[arg], "--host=", 7) == 0) {
      host = argv[arg] + 7;
    } else if (std::strncmp(argv[arg], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[arg] + 7));
    } else if (std::strcmp(argv[arg], "--help") == 0) {
      return Usage(0);
    } else {
      break;
    }
  }
  if (arg >= argc) {
    return Usage(2);
  }
  const std::string cmd = argv[arg++];
  const int rest = argc - arg;

  auto connected = Client::Connect(host, port);
  if (!connected.ok()) {
    return Fail("connect", connected.status());
  }
  auto client = std::move(connected).value();

  if (cmd == "put" && rest >= 2) {
    const Status st = client->Put(argv[arg], argv[arg + 1]);
    return st.ok() ? 0 : Fail("put", st);
  }
  if (cmd == "get" && rest >= 1) {
    std::string value;
    const Status st = client->Get(argv[arg], &value);
    if (!st.ok()) {
      return Fail("get", st);
    }
    std::printf("%s\n", value.c_str());
    return 0;
  }
  if (cmd == "del" && rest >= 1) {
    const Status st = client->Delete(argv[arg]);
    return st.ok() ? 0 : Fail("del", st);
  }
  if (cmd == "dump") {
    std::string key, value;
    Status st = client->Scan(&key, &value, true);
    while (st.ok()) {
      std::printf("%s\t%s\n", key.c_str(), value.c_str());
      st = client->Scan(&key, &value, false);
    }
    return st.IsNotFound() ? 0 : Fail("dump", st);
  }
  if (cmd == "stats") {
    std::string text;
    const Status st = client->Stats(&text);
    if (!st.ok()) {
      return Fail("stats", st);
    }
    PrintStats(text);
    return 0;
  }
  if (cmd == "ping") {
    const Status st = client->Ping(rest >= 1 ? argv[arg] : "ping");
    if (!st.ok()) {
      return Fail("ping", st);
    }
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "sync") {
    const Status st = client->Sync();
    return st.ok() ? 0 : Fail("sync", st);
  }
  if (cmd == "load") {
    // Pipelined bulk load: batch stdin pairs to amortize round trips.
    constexpr size_t kBatch = 256;
    std::vector<Request> batch;
    std::vector<Response> responses;
    std::string line;
    size_t loaded = 0, failed = 0;
    const auto flush = [&]() -> Status {
      if (batch.empty()) {
        return Status::Ok();
      }
      HASHKIT_RETURN_IF_ERROR(client->Pipeline(batch, &responses));
      for (const Response& resp : responses) {
        if (resp.status == hashkit::StatusCode::kOk) {
          ++loaded;
        } else {
          ++failed;
        }
      }
      batch.clear();
      return Status::Ok();
    };
    while (std::getline(std::cin, line)) {
      const size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        continue;
      }
      Request req;
      req.op = Opcode::kPut;
      req.key = line.substr(0, tab);
      req.value = line.substr(tab + 1);
      batch.push_back(std::move(req));
      if (batch.size() >= kBatch) {
        const Status st = flush();
        if (!st.ok()) {
          return Fail("load", st);
        }
      }
    }
    Status st = flush();
    if (!st.ok()) {
      return Fail("load", st);
    }
    st = client->Sync();
    if (!st.ok()) {
      return Fail("sync", st);
    }
    std::printf("loaded %zu pairs (%zu failed)\n", loaded, failed);
    return 0;
  }
  return Usage(2);
}
