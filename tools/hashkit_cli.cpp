// hashkit-net command-line client: db_tool's verbs against a live server.
//
//   hashkit_cli [--host=H] [--port=P] put <key> <value>
//   hashkit_cli [--host=H] [--port=P] get <key>
//   hashkit_cli [--host=H] [--port=P] del <key>
//   hashkit_cli [--host=H] [--port=P] dump        (full SCAN)
//   hashkit_cli [--host=H] [--port=P] stats
//   hashkit_cli [--host=H] [--port=P] ping [payload]
//   hashkit_cli [--host=H] [--port=P] sync
//   hashkit_cli [--host=H] [--port=P] load        (key<TAB>value from stdin,
//                                                  pipelined in batches)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/net/client.h"

using hashkit::Status;
using hashkit::net::Client;
using hashkit::net::Opcode;
using hashkit::net::Request;
using hashkit::net::Response;

namespace {

int Usage(int code) {
  std::fprintf(stderr,
               "usage: hashkit_cli [--host=H] [--port=P] <command>\n"
               "commands: put <key> <value> | get <key> | del <key> |\n"
               "          dump | stats | ping [payload] | sync | load\n"
               "defaults: host 127.0.0.1, port 4691\n");
  return code;
}

int Fail(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 4691;
  int arg = 1;
  for (; arg < argc; ++arg) {
    if (std::strncmp(argv[arg], "--host=", 7) == 0) {
      host = argv[arg] + 7;
    } else if (std::strncmp(argv[arg], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[arg] + 7));
    } else if (std::strcmp(argv[arg], "--help") == 0) {
      return Usage(0);
    } else {
      break;
    }
  }
  if (arg >= argc) {
    return Usage(2);
  }
  const std::string cmd = argv[arg++];
  const int rest = argc - arg;

  auto connected = Client::Connect(host, port);
  if (!connected.ok()) {
    return Fail("connect", connected.status());
  }
  auto client = std::move(connected).value();

  if (cmd == "put" && rest >= 2) {
    const Status st = client->Put(argv[arg], argv[arg + 1]);
    return st.ok() ? 0 : Fail("put", st);
  }
  if (cmd == "get" && rest >= 1) {
    std::string value;
    const Status st = client->Get(argv[arg], &value);
    if (!st.ok()) {
      return Fail("get", st);
    }
    std::printf("%s\n", value.c_str());
    return 0;
  }
  if (cmd == "del" && rest >= 1) {
    const Status st = client->Delete(argv[arg]);
    return st.ok() ? 0 : Fail("del", st);
  }
  if (cmd == "dump") {
    std::string key, value;
    Status st = client->Scan(&key, &value, true);
    while (st.ok()) {
      std::printf("%s\t%s\n", key.c_str(), value.c_str());
      st = client->Scan(&key, &value, false);
    }
    return st.IsNotFound() ? 0 : Fail("dump", st);
  }
  if (cmd == "stats") {
    std::string text;
    const Status st = client->Stats(&text);
    if (!st.ok()) {
      return Fail("stats", st);
    }
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (cmd == "ping") {
    const Status st = client->Ping(rest >= 1 ? argv[arg] : "ping");
    if (!st.ok()) {
      return Fail("ping", st);
    }
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "sync") {
    const Status st = client->Sync();
    return st.ok() ? 0 : Fail("sync", st);
  }
  if (cmd == "load") {
    // Pipelined bulk load: batch stdin pairs to amortize round trips.
    constexpr size_t kBatch = 256;
    std::vector<Request> batch;
    std::vector<Response> responses;
    std::string line;
    size_t loaded = 0, failed = 0;
    const auto flush = [&]() -> Status {
      if (batch.empty()) {
        return Status::Ok();
      }
      HASHKIT_RETURN_IF_ERROR(client->Pipeline(batch, &responses));
      for (const Response& resp : responses) {
        if (resp.status == hashkit::StatusCode::kOk) {
          ++loaded;
        } else {
          ++failed;
        }
      }
      batch.clear();
      return Status::Ok();
    };
    while (std::getline(std::cin, line)) {
      const size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        continue;
      }
      Request req;
      req.op = Opcode::kPut;
      req.key = line.substr(0, tab);
      req.value = line.substr(tab + 1);
      batch.push_back(std::move(req));
      if (batch.size() >= kBatch) {
        const Status st = flush();
        if (!st.ok()) {
          return Fail("load", st);
        }
      }
    }
    Status st = flush();
    if (!st.ok()) {
      return Fail("load", st);
    }
    st = client->Sync();
    if (!st.ok()) {
      return Fail("sync", st);
    }
    std::printf("loaded %zu pairs (%zu failed)\n", loaded, failed);
    return 0;
  }
  return Usage(2);
}
