// hashkit-net server daemon: serves any file-backed KvStore over TCP.
//
//   hashkit_server [--host=H] [--port=P] [--store=KIND] [--path=FILE]
//                  [--shards=N] [--workers=N] [--idle_timeout_ms=N]
//                  [--truncate] [--metrics-port=P]
//                  [--durability=none|async|sync] [--wal-group-commit=N]
//
// With shards > 1 the store opens as a ShardedStore (per-shard ".sN"
// files); with shards <= 1 it is wrapped in SynchronizedStore so multiple
// worker loops can dispatch into it safely.  Runs until SIGINT/SIGTERM,
// then shuts down gracefully (connections closed, store synced).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/server.h"

using hashkit::kv::KvStore;
using hashkit::kv::OpenStore;
using hashkit::kv::StoreKind;
using hashkit::kv::StoreOptions;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

long FlagLong(int argc, char** argv, const char* name, long fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::atol(v) : fallback;
}

int Usage(int code) {
  std::fprintf(stderr,
               "usage: hashkit_server [--host=H] [--port=P] [--store=KIND] [--path=FILE]\n"
               "                      [--shards=N] [--workers=N] [--idle_timeout_ms=N]\n"
               "                      [--truncate] [--metrics-port=P]\n"
               "                      [--durability=none|async|sync] [--wal-group-commit=N]\n"
               "defaults: host 127.0.0.1, port 4691, store hash_disk,\n"
               "          path /tmp/hashkit_server.db, shards 4, workers 2\n"
               "store: hash_disk ndbm sdbm gdbm (file-backed kinds)\n"
               "metrics: --metrics-port=P serves Prometheus-style plaintext metrics\n"
               "         over HTTP on host:P (P=0 picks a free port; omit to disable)\n"
               "durability (hash_disk): none = no write-ahead log (default); async = log\n"
               "         without per-op fsync (crash-consistent, recent ops may be lost);\n"
               "         sync = log fsynced every --wal-group-commit ops (default 1).\n"
               "         SYNC requests are real durability barriers in async/sync modes.\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "help")) {
    return Usage(0);
  }
  const char* store_name = FlagValue(argc, argv, "store");
  StoreKind kind = StoreKind::kHashDisk;
  if (store_name != nullptr) {
    bool found = false;
    for (const StoreKind k : hashkit::kv::kAllStoreKinds) {
      if (hashkit::kv::StoreKindName(k) == store_name) {
        kind = k;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown store kind: %s\n", store_name);
      return Usage(2);
    }
  }

  StoreOptions store_options;
  const char* path = FlagValue(argc, argv, "path");
  store_options.path = path != nullptr ? path : "/tmp/hashkit_server.db";
  store_options.truncate = HasFlag(argc, argv, "truncate");
  store_options.shards = static_cast<uint32_t>(FlagLong(argc, argv, "shards", 4));
  store_options.cachesize = 32 * 1024 * 1024;
  const char* durability = FlagValue(argc, argv, "durability");
  if (durability != nullptr) {
    if (std::strcmp(durability, "none") == 0) {
      store_options.durability = hashkit::Durability::kNone;
    } else if (std::strcmp(durability, "async") == 0) {
      store_options.durability = hashkit::Durability::kAsync;
    } else if (std::strcmp(durability, "sync") == 0) {
      store_options.durability = hashkit::Durability::kSync;
    } else {
      std::fprintf(stderr, "unknown durability mode: %s\n", durability);
      return Usage(2);
    }
  }
  long group_commit = FlagLong(argc, argv, "wal-group-commit", -1);
  if (group_commit < 0) {
    group_commit = FlagLong(argc, argv, "wal_group_commit", -1);
  }
  if (group_commit > 0) {
    store_options.wal_group_commit = static_cast<uint32_t>(group_commit);
  }

  auto opened = OpenStore(kind, store_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open store: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<KvStore> store = std::move(opened).value();
  if (store_options.shards <= 1) {
    // A single store still faces concurrent worker loops.
    store = hashkit::kv::MakeSynchronized(std::move(store));
  }

  hashkit::net::ServerOptions server_options;
  const char* host = FlagValue(argc, argv, "host");
  server_options.host = host != nullptr ? host : "127.0.0.1";
  server_options.port = static_cast<uint16_t>(FlagLong(argc, argv, "port", 4691));
  server_options.workers = static_cast<int>(FlagLong(argc, argv, "workers", 2));
  server_options.idle_timeout_ms =
      static_cast<int>(FlagLong(argc, argv, "idle_timeout_ms", 60000));
  // Both spellings accepted; -1 (absent) leaves the endpoint off.
  long metrics_port = FlagLong(argc, argv, "metrics-port", -1);
  if (metrics_port < 0) {
    metrics_port = FlagLong(argc, argv, "metrics_port", -1);
  }
  server_options.metrics_port = static_cast<int>(metrics_port);

  hashkit::net::Server server(store.get(), server_options);
  const hashkit::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("hashkit_server: %s on %s:%u (%d workers)\n", store->Name().c_str(),
              server_options.host.c_str(), server.port(), server_options.workers);
  if (server.metrics_port() != 0) {
    std::printf("hashkit_server: metrics on http://%s:%u/metrics\n",
                server_options.host.c_str(), server.metrics_port());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("hashkit_server: shutting down\n");
  server.Stop();
  (void)store->Sync();
  return 0;
}
