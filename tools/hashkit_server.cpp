// hashkit-net server daemon: serves any file-backed KvStore over TCP.
//
//   hashkit_server [--host=H] [--port=P] [--store=KIND] [--path=FILE]
//                  [--shards=N] [--cores=N] [--idle_timeout_ms=N]
//                  [--truncate] [--metrics-port=P] [--backlog=N]
//                  [--max-inflight=N] [--overload-policy=shed|defer]
//                  [--batch-ops=N] [--io-uring] [--exclusive-accept]
//                  [--forwarding=auto|on|off]
//                  [--durability=none|async|sync] [--wal-group-commit=N]
//                  [--cluster-node=ID] [--peers=ID@HOST:PORT,...]
//                  [--join=HOST:PORT] [--advertise=HOST:PORT]
//                  [--split-threshold=N] [--gossip-interval-ms=N]
//                  [--wal-archive]
//                  [--replica-of=HOST:PORT] [--replica-poll-ms=N]
//                  [--ttl] [--ttl-sweep-ms=N] [--ttl-sweep-budget=N]
//                  [--eviction=clock|2q|tinylfu] [--memcached-port=P]
//
// With shards > 1 the store opens as a ShardedStore (per-shard ".sN"
// files); with shards <= 1 it is wrapped in SynchronizedStore so multiple
// worker loops can dispatch into it safely.  Runs until SIGINT/SIGTERM,
// then shuts down gracefully (connections closed, store synced).
//
// Cluster mode (--cluster-node): this server becomes one node of an
// LH*-style distributed keyspace (see DESIGN.md "hashkit-cluster").
// Either --peers lists the whole initial membership (every node derives
// the same map), or --join names any live node to join an existing
// cluster.  The map and migration markers persist at <path>.cmap.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/cluster/migration.h"
#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/kv/ttl.h"
#include "src/pagefile/eviction.h"
#include "src/net/replica.h"
#include "src/net/server.h"
#include "src/util/tempfile.h"

using hashkit::kv::KvStore;
using hashkit::kv::OpenStore;
using hashkit::kv::StoreKind;
using hashkit::kv::StoreOptions;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

long FlagLong(int argc, char** argv, const char* name, long fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::atol(v) : fallback;
}

// --peers entries look like "0@127.0.0.1:4691" (id @ advertised address).
bool ParsePeer(const std::string& entry, hashkit::cluster::NodeInfo* out) {
  const size_t at = entry.find('@');
  const size_t colon = entry.rfind(':');
  if (at == std::string::npos || colon == std::string::npos || colon < at + 2) {
    return false;
  }
  const long id = std::atol(entry.substr(0, at).c_str());
  const long port = std::atol(entry.c_str() + colon + 1);
  if (id < 0 || port <= 0 || port > 65535) {
    return false;
  }
  out->id = static_cast<uint32_t>(id);
  out->host = entry.substr(at + 1, colon - at - 1);
  out->port = static_cast<uint16_t>(port);
  return !out->host.empty();
}

int Usage(int code) {
  std::fprintf(stderr,
               "usage: hashkit_server [--host=H] [--port=P] [--store=KIND] [--path=FILE]\n"
               "                      [--shards=N] [--cores=N] [--idle_timeout_ms=N]\n"
               "                      [--truncate] [--metrics-port=P] [--backlog=N]\n"
               "                      [--max-inflight=N] [--overload-policy=shed|defer]\n"
               "                      [--batch-ops=N] [--io-uring] [--exclusive-accept]\n"
               "                      [--forwarding=auto|on|off]\n"
               "                      [--durability=none|async|sync] [--wal-group-commit=N]\n"
               "defaults: host 127.0.0.1, port 4691, store hash_disk,\n"
               "          path /tmp/hashkit_server.db, shards 4, cores 2\n"
               "cores:   worker threads, one event loop + keyspace slice each\n"
               "         (--workers is an accepted alias).  --backlog=N sets the\n"
               "         listen(2) queue depth (default 128).\n"
               "overload: --max-inflight=N caps ops a core has accepted but not yet\n"
               "         answered (default 4096; 0 = unlimited).  Above the cap,\n"
               "         --overload-policy=shed answers OVERLOADED immediately with a\n"
               "         retry-after-ms hint (default); defer pauses reads until the\n"
               "         backlog halves.  --batch-ops=N bounds frames one connection\n"
               "         may feed per event-loop round (default 512).\n"
               "io:      --io-uring submits response writes through a per-core\n"
               "         io_uring when the kernel offers one (falls back to sendmsg);\n"
               "         --exclusive-accept shares one listen fd via EPOLLEXCLUSIVE\n"
               "         instead of per-core SO_REUSEPORT sockets.\n"
               "routing: --forwarding=auto|on|off — auto (default) routes ops to\n"
               "         partition-owner cores only when cores <= hardware threads;\n"
               "         an oversubscribed box runs connection-affine instead.\n"
               "store: hash_disk ndbm sdbm gdbm (file-backed kinds)\n"
               "metrics: --metrics-port=P serves Prometheus-style plaintext metrics\n"
               "         over HTTP on host:P (P=0 picks a free port; omit to disable)\n"
               "durability (hash_disk): none = no write-ahead log (default); async = log\n"
               "         without per-op fsync (crash-consistent, recent ops may be lost);\n"
               "         sync = log fsynced every --wal-group-commit ops (default 1).\n"
               "         SYNC requests are real durability barriers in async/sync modes.\n"
               "cluster: --cluster-node=ID makes this server node ID of an LH* cluster.\n"
               "         --peers=ID@HOST:PORT,... static bootstrap (all nodes list the\n"
               "         same peers, which must include this node's id), or\n"
               "         --join=HOST:PORT to join through any live node.\n"
               "         --advertise=HOST:PORT overrides how peers reach this node\n"
               "         (default: listen host:port).  --split-threshold=N schedules a\n"
               "         cluster split when pairs-per-owned-bucket exceeds N.\n"
               "         --gossip-interval-ms=N pushes the cluster map to every peer\n"
               "         after N idle ms (default 1000; 0 disables), so partitioned\n"
               "         or restarted nodes converge without client traffic.\n"
               "backup:  --wal-archive keeps checkpointed WAL segments next to the\n"
               "         table (<path>.wal.<seq>) for point-in-time recovery.\n"
               "replica: --replica-of=HOST:PORT bootstraps (when <path> is absent)\n"
               "         from the primary's online backup, serves read-only, and\n"
               "         tails the primary's WAL every --replica-poll-ms (default\n"
               "         200).  Forces shards=1; PUT/DEL/SYNC answer UNSUPPORTED.\n"
               "cache:   --ttl enables per-key expiry (PUT+ttl/TOUCH on the binary\n"
               "         protocol, exptime on the memcached shim); a background\n"
               "         sweeper reclaims expired keys every --ttl-sweep-ms (default\n"
               "         1000) in slices of --ttl-sweep-budget entries (default\n"
               "         4096).  --eviction=clock|2q|tinylfu picks the buffer-pool\n"
               "         replacement policy (default clock).  --memcached-port=P\n"
               "         serves the memcached text protocol on host:P (P=0 picks a\n"
               "         free port; incompatible with --cluster-node).\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "help")) {
    return Usage(0);
  }
  const char* store_name = FlagValue(argc, argv, "store");
  StoreKind kind = StoreKind::kHashDisk;
  if (store_name != nullptr) {
    bool found = false;
    for (const StoreKind k : hashkit::kv::kAllStoreKinds) {
      if (hashkit::kv::StoreKindName(k) == store_name) {
        kind = k;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown store kind: %s\n", store_name);
      return Usage(2);
    }
  }

  StoreOptions store_options;
  const char* path = FlagValue(argc, argv, "path");
  store_options.path = path != nullptr ? path : "/tmp/hashkit_server.db";
  store_options.truncate = HasFlag(argc, argv, "truncate");
  store_options.shards = static_cast<uint32_t>(FlagLong(argc, argv, "shards", 4));
  store_options.cachesize = 32 * 1024 * 1024;
  const char* durability = FlagValue(argc, argv, "durability");
  if (durability != nullptr) {
    if (std::strcmp(durability, "none") == 0) {
      store_options.durability = hashkit::Durability::kNone;
    } else if (std::strcmp(durability, "async") == 0) {
      store_options.durability = hashkit::Durability::kAsync;
    } else if (std::strcmp(durability, "sync") == 0) {
      store_options.durability = hashkit::Durability::kSync;
    } else {
      std::fprintf(stderr, "unknown durability mode: %s\n", durability);
      return Usage(2);
    }
  }
  long group_commit = FlagLong(argc, argv, "wal-group-commit", -1);
  if (group_commit < 0) {
    group_commit = FlagLong(argc, argv, "wal_group_commit", -1);
  }
  if (group_commit > 0) {
    store_options.wal_group_commit = static_cast<uint32_t>(group_commit);
  }
  store_options.wal_archive =
      HasFlag(argc, argv, "wal-archive") || HasFlag(argc, argv, "wal_archive");
  store_options.ttl = HasFlag(argc, argv, "ttl");
  const char* eviction = FlagValue(argc, argv, "eviction");
  if (eviction != nullptr &&
      !hashkit::ParseEvictionPolicy(eviction, &store_options.eviction)) {
    std::fprintf(stderr, "unknown eviction policy: %s\n", eviction);
    return Usage(2);
  }

  // Replica mode: bootstrap from the primary's online backup when the
  // local table is absent, then serve read-only and tail the primary's
  // WAL.  One WAL means one shard; the store needs its own log so the
  // applied LSN survives restarts.
  const char* replica_of = FlagValue(argc, argv, "replica-of");
  std::string primary_host;
  uint16_t primary_port = 0;
  if (replica_of != nullptr) {
    const std::string addr = replica_of;
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      std::fprintf(stderr, "bad --replica-of (want HOST:PORT): %s\n", replica_of);
      return Usage(2);
    }
    primary_host = addr.substr(0, colon);
    primary_port = static_cast<uint16_t>(std::atol(addr.c_str() + colon + 1));
    store_options.shards = 1;
    if (store_options.durability == hashkit::Durability::kNone) {
      store_options.durability = hashkit::Durability::kAsync;
    }
    FILE* probe = std::fopen(store_options.path.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
    } else {
      auto stale = hashkit::StaleArtifactsFor(store_options.path);
      if (!stale.empty()) {
        std::fprintf(stderr, "stale artifact in the way (db_tool clean): %s\n",
                     stale.front().c_str());
        return 1;
      }
      auto bootstrap = hashkit::net::Client::Connect(primary_host, primary_port);
      if (!bootstrap.ok()) {
        std::fprintf(stderr, "replica bootstrap connect: %s\n",
                     bootstrap.status().ToString().c_str());
        return 1;
      }
      auto manifest =
          hashkit::net::DownloadBackup(bootstrap.value().get(), store_options.path);
      if (!manifest.ok()) {
        std::fprintf(stderr, "replica bootstrap: %s\n",
                     manifest.status().ToString().c_str());
        return 1;
      }
      std::printf("hashkit_server: bootstrapped replica from %s (lsn %llu)\n",
                  replica_of,
                  static_cast<unsigned long long>(manifest.value().lsn));
    }
  }

  auto opened = OpenStore(kind, store_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open store: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<KvStore> store = std::move(opened).value();
  if (store_options.shards <= 1) {
    // A single store still faces concurrent worker loops.
    store = hashkit::kv::MakeSynchronized(std::move(store));
  }

  hashkit::net::ServerOptions server_options;
  const char* host = FlagValue(argc, argv, "host");
  server_options.host = host != nullptr ? host : "127.0.0.1";
  server_options.port = static_cast<uint16_t>(FlagLong(argc, argv, "port", 4691));
  // --cores is the thread-per-core spelling; --workers stays as an alias.
  long cores = FlagLong(argc, argv, "cores", -1);
  if (cores < 0) {
    cores = FlagLong(argc, argv, "workers", 2);
  }
  server_options.workers = static_cast<int>(cores);
  server_options.backlog = static_cast<int>(FlagLong(argc, argv, "backlog", 128));
  server_options.idle_timeout_ms =
      static_cast<int>(FlagLong(argc, argv, "idle_timeout_ms", 60000));
  long max_inflight = FlagLong(argc, argv, "max-inflight", -1);
  if (max_inflight < 0) {
    max_inflight = FlagLong(argc, argv, "max_inflight", 4096);
  }
  server_options.max_inflight = static_cast<size_t>(max_inflight);
  const char* overload_policy = FlagValue(argc, argv, "overload-policy");
  if (overload_policy != nullptr) {
    if (std::strcmp(overload_policy, "shed") == 0) {
      server_options.overload_policy = hashkit::net::ServerOptions::OverloadPolicy::kShed;
    } else if (std::strcmp(overload_policy, "defer") == 0) {
      server_options.overload_policy = hashkit::net::ServerOptions::OverloadPolicy::kDefer;
    } else {
      std::fprintf(stderr, "unknown overload policy: %s\n", overload_policy);
      return Usage(2);
    }
  }
  long batch_ops = FlagLong(argc, argv, "batch-ops", -1);
  if (batch_ops < 0) {
    batch_ops = FlagLong(argc, argv, "batch_ops", 512);
  }
  server_options.batch_ops = static_cast<int>(batch_ops);
  server_options.io_uring =
      HasFlag(argc, argv, "io-uring") || HasFlag(argc, argv, "io_uring");
  const char* forwarding = FlagValue(argc, argv, "forwarding");
  if (forwarding != nullptr) {
    if (std::strcmp(forwarding, "auto") == 0) {
      server_options.forwarding = hashkit::net::ServerOptions::Forwarding::kAuto;
    } else if (std::strcmp(forwarding, "on") == 0) {
      server_options.forwarding = hashkit::net::ServerOptions::Forwarding::kOn;
    } else if (std::strcmp(forwarding, "off") == 0) {
      server_options.forwarding = hashkit::net::ServerOptions::Forwarding::kOff;
    } else {
      std::fprintf(stderr, "unknown forwarding mode: %s\n", forwarding);
      return Usage(2);
    }
  }
  server_options.exclusive_accept =
      HasFlag(argc, argv, "exclusive-accept") || HasFlag(argc, argv, "exclusive_accept");
  // Both spellings accepted; -1 (absent) leaves the endpoint off.
  long metrics_port = FlagLong(argc, argv, "metrics-port", -1);
  if (metrics_port < 0) {
    metrics_port = FlagLong(argc, argv, "metrics_port", -1);
  }
  server_options.metrics_port = static_cast<int>(metrics_port);
  long memcached_port = FlagLong(argc, argv, "memcached-port", -1);
  if (memcached_port < 0) {
    memcached_port = FlagLong(argc, argv, "memcached_port", -1);
  }
  server_options.memcached_port = static_cast<int>(memcached_port);
  server_options.read_only = replica_of != nullptr;

  // Cluster mode: the node is created before the server (the server holds
  // the hooks pointer) but started after it, once the bound port is known.
  std::unique_ptr<hashkit::cluster::ClusterNode> cluster_node;
  std::vector<hashkit::cluster::NodeInfo> peers;
  std::string join_seed;
  const char* cluster_id = FlagValue(argc, argv, "cluster-node");
  if (cluster_id != nullptr && replica_of != nullptr) {
    std::fprintf(stderr, "--cluster-node and --replica-of are mutually exclusive\n");
    return Usage(2);
  }
  if (cluster_id != nullptr) {
    hashkit::cluster::ClusterNodeOptions cluster_options;
    cluster_options.node_id = static_cast<uint32_t>(std::atol(cluster_id));
    cluster_options.map_path = store_options.path + ".cmap";
    cluster_options.split_threshold =
        static_cast<uint64_t>(FlagLong(argc, argv, "split-threshold", 0));
    long gossip = FlagLong(argc, argv, "gossip-interval-ms", -1);
    if (gossip < 0) {
      gossip = FlagLong(argc, argv, "gossip_interval_ms", 1000);
    }
    cluster_options.gossip_interval_ms = static_cast<uint32_t>(gossip);
    const char* peers_flag = FlagValue(argc, argv, "peers");
    const char* join_flag = FlagValue(argc, argv, "join");
    if (peers_flag != nullptr) {
      std::string list = peers_flag;
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        hashkit::cluster::NodeInfo peer;
        if (!ParsePeer(list.substr(pos, comma - pos), &peer)) {
          std::fprintf(stderr, "bad --peers entry: %s\n", list.substr(pos, comma - pos).c_str());
          return Usage(2);
        }
        peers.push_back(std::move(peer));
        pos = comma + 1;
      }
    }
    if (join_flag != nullptr) {
      join_seed = join_flag;
    }
    if (peers.empty() && join_seed.empty()) {
      std::fprintf(stderr, "--cluster-node needs --peers or --join\n");
      return Usage(2);
    }
    // How peers reach this node: the --advertise override, or the listen
    // address.  Port 0 (kernel-assigned) needs an explicit --advertise
    // because the map must carry a reachable port before Start.
    cluster_options.advertise_host = server_options.host;
    cluster_options.advertise_port = server_options.port;
    const char* advertise = FlagValue(argc, argv, "advertise");
    if (advertise != nullptr) {
      const std::string adv = advertise;
      const size_t colon = adv.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bad --advertise (want HOST:PORT): %s\n", advertise);
        return Usage(2);
      }
      cluster_options.advertise_host = adv.substr(0, colon);
      cluster_options.advertise_port = static_cast<uint16_t>(std::atol(adv.c_str() + colon + 1));
    }
    if (cluster_options.advertise_port == 0) {
      std::fprintf(stderr, "--cluster-node with --port=0 needs --advertise=HOST:PORT\n");
      return Usage(2);
    }
    cluster_node =
        std::make_unique<hashkit::cluster::ClusterNode>(store.get(), cluster_options);
    server_options.cluster = cluster_node.get();
  }

  // Background TTL sweeper on the final (wrapped) store handle, so sweep
  // slices take the same synchronization path as served traffic.
  std::unique_ptr<hashkit::kv::TtlSweeper> ttl_sweeper;
  if (store_options.ttl) {
    hashkit::kv::TtlSweeperOptions sweep_options;
    long sweep_ms = FlagLong(argc, argv, "ttl-sweep-ms", -1);
    if (sweep_ms < 0) {
      sweep_ms = FlagLong(argc, argv, "ttl_sweep_ms", 1000);
    }
    sweep_options.interval_ms = static_cast<int>(sweep_ms);
    long sweep_budget = FlagLong(argc, argv, "ttl-sweep-budget", -1);
    if (sweep_budget < 0) {
      sweep_budget = FlagLong(argc, argv, "ttl_sweep_budget", 4096);
    }
    sweep_options.budget = static_cast<size_t>(sweep_budget);
    ttl_sweeper = std::make_unique<hashkit::kv::TtlSweeper>(store.get(), sweep_options);
    ttl_sweeper->Start();
  }

  hashkit::net::Server server(store.get(), server_options);
  const hashkit::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("hashkit_server: %s on %s:%u (%d cores, eviction %s%s)\n",
              store->Name().c_str(), server_options.host.c_str(), server.port(),
              server_options.workers,
              std::string(hashkit::EvictionPolicyName(store_options.eviction)).c_str(),
              store_options.ttl ? ", ttl" : "");
  if (server.metrics_port() != 0) {
    std::printf("hashkit_server: metrics on http://%s:%u/metrics\n",
                server_options.host.c_str(), server.metrics_port());
  }
  if (server.memcached_port() != 0) {
    std::printf("hashkit_server: memcached protocol on %s:%u\n",
                server_options.host.c_str(), server.memcached_port());
  }
  if (cluster_node != nullptr) {
    const hashkit::Status cst = cluster_node->Start(peers, join_seed);
    if (!cst.ok()) {
      std::fprintf(stderr, "cluster start: %s\n", cst.ToString().c_str());
      server.Stop();
      return 1;
    }
    std::printf("hashkit_server: cluster node %s, map v%u (%zu nodes)\n", cluster_id,
                cluster_node->MapSnapshot().version, cluster_node->MapSnapshot().nodes.size());
  }

  std::unique_ptr<hashkit::net::Replica> replica;
  if (replica_of != nullptr) {
    hashkit::net::ReplicaOptions replica_options;
    replica_options.primary_host = primary_host;
    replica_options.primary_port = primary_port;
    replica_options.poll_interval_ms =
        static_cast<int>(FlagLong(argc, argv, "replica-poll-ms", 200));
    replica = std::make_unique<hashkit::net::Replica>(store.get(), replica_options);
    const hashkit::Status rst = replica->Start();
    if (!rst.ok()) {
      std::fprintf(stderr, "replica start: %s\n", rst.ToString().c_str());
      server.Stop();
      return 1;
    }
    std::printf("hashkit_server: read-only replica of %s (lsn %llu)\n", replica_of,
                static_cast<unsigned long long>(replica->last_applied_lsn()));
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("hashkit_server: shutting down\n");
  if (ttl_sweeper != nullptr) {
    ttl_sweeper->Stop();  // before the server: no sweeps against a closing store
  }
  if (replica != nullptr) {
    replica->Stop();
  }
  if (cluster_node != nullptr) {
    cluster_node->Stop();  // engine first; a pending migration resumes on restart
  }
  server.Stop();
  (void)store->Sync();
  return 0;
}
