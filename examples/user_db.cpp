// hashkit example: a password-file lookup service — the paper's second
// evaluation workload as an application.
//
// The paper's intro argues that small databases like /etc/passwd deserve
// caching rather than dbm's syscall-per-access: this example builds the
// two-records-per-account database (login -> entry remainder, uid ->
// whole entry), serves a burst of getpwnam/getpwuid-style lookups, and
// prints the I/O the buffer pool saved.
//
//   $ ./user_db [dbpath]

#include <cstdio>
#include <string>

#include "src/core/hash_table.h"
#include "src/util/random.h"
#include "src/workload/passwd.h"
#include "src/workload/timing.h"

using hashkit::HashOptions;
using hashkit::HashTable;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/hashkit_userdb.db";

  const auto passwd = hashkit::workload::MakePasswdWorkload(300);

  HashOptions options;
  options.bsize = 256;  // small pairs, small table: small pages
  options.ffactor = 8;
  options.cachesize = 256 * 1024;  // hold the whole table (paper: cache the passwd file)
  auto opened = HashTable::Open(path, options, /*truncate=*/true);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(opened).value();

  for (const auto& record : passwd.records) {
    if (const auto st = db->Put(record.key, record.value); !st.ok()) {
      std::fprintf(stderr, "put failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  (void)db->Sync();
  std::printf("loaded %llu passwd records\n", static_cast<unsigned long long>(db->size()));

  // getpwnam: look up by login (even-indexed records).
  std::string entry;
  const auto& sample = passwd.records[42 * 2];
  if (db->Get(sample.key, &entry).ok()) {
    std::printf("getpwnam(\"%s\") -> %s\n", sample.key.c_str(), entry.c_str());
  }
  // getpwuid: look up by uid (odd-indexed records).
  if (db->Get("142", &entry).ok()) {
    std::printf("getpwuid(142)   -> %s\n", entry.c_str());
  }

  // A lookup burst: 100k random getpwnam/getpwuid calls.
  hashkit::Rng rng(7);
  const uint64_t reads_before = db->file_stats().reads;
  const auto burst = hashkit::workload::MeasureOnce([&] {
    for (int i = 0; i < 100000; ++i) {
      const auto& record = passwd.records[rng.Uniform(passwd.records.size())];
      std::string value;
      (void)db->Get(record.key, &value);
    }
  });
  std::printf("100k lookups: %s\n", hashkit::workload::FormatSample(burst).c_str());
  std::printf("backend reads during burst: %llu (the table stayed cached)\n",
              static_cast<unsigned long long>(db->file_stats().reads - reads_before));
  return 0;
}
