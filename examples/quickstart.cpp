// hashkit quickstart: create a disk-resident hash table, store and fetch
// key/data pairs, scan it, reopen it.
//
//   $ ./quickstart [path]
//
// This walks through the native interface end to end; the other examples
// show realistic workloads and the compatibility interfaces.

#include <cstdio>
#include <string>

#include "src/core/hash_table.h"

using hashkit::HashOptions;
using hashkit::HashTable;
using hashkit::Status;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/hashkit_quickstart.db";

  // 1. Create a table.  Defaults (bsize 256, ffactor 8, 64 KB cache) suit
  //    small pairs; tune them per the paper's equation (1) for your data.
  HashOptions options;
  options.bsize = 256;
  options.ffactor = 8;
  options.nelem = 1000;  // size hint: pre-sizes the table (Figure 6)
  auto opened = HashTable::Open(path, options, /*truncate=*/true);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto table = std::move(opened).value();

  // 2. Store pairs.  Inserts never fail because of key collisions or pair
  //    size -- both were failure modes of ndbm.
  for (int i = 0; i < 1000; ++i) {
    const Status st = table->Put("user:" + std::to_string(i), "balance=" + std::to_string(i * 10));
    if (!st.ok()) {
      std::fprintf(stderr, "put failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const std::string big_value(100000, '#');
  (void)table->Put("big-blob", big_value);  // larger than any page: stored via overflow chains

  // 3. Fetch.
  std::string value;
  if (table->Get("user:42", &value).ok()) {
    std::printf("user:42 -> %s\n", value.c_str());
  }
  if (table->Get("big-blob", &value).ok()) {
    std::printf("big-blob -> %zu bytes\n", value.size());
  }

  // 4. No-overwrite mode and deletion.
  const Status dup = table->Put("user:42", "overwritten?", /*overwrite=*/false);
  std::printf("insert-only put of existing key: %s\n", dup.ToString().c_str());
  (void)table->Delete("user:999");

  // 5. Sequential scan (hash order, every pair exactly once).
  size_t count = 0;
  std::string k, v;
  Status st = table->Seq(&k, &v, /*first=*/true);
  while (st.ok()) {
    ++count;
    st = table->Seq(&k, &v, false);
  }
  std::printf("scan found %zu pairs (table reports %llu)\n", count,
              static_cast<unsigned long long>(table->size()));

  // 6. Flush and reopen: the table is an ordinary file.
  if (const Status sync = table->Sync(); !sync.ok()) {
    std::fprintf(stderr, "sync failed: %s\n", sync.ToString().c_str());
    return 1;
  }
  table.reset();  // close
  auto reopened = HashTable::Open(path, HashOptions{});
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n", reopened.status().ToString().c_str());
    return 1;
  }
  table = std::move(reopened).value();
  std::printf("reopened: %llu pairs, bsize=%u, ffactor=%u\n",
              static_cast<unsigned long long>(table->size()), table->meta().bsize,
              table->meta().ffactor);

  // 7. Structural self-check.
  const Status integrity = table->CheckIntegrity();
  std::printf("integrity: %s\n", integrity.ToString().c_str());
  return integrity.ok() ? 0 : 1;
}
