// hashkit example: a compiler/loader symbol table.
//
// The paper's conclusion: "Applications such as the loader, compiler, and
// mail, which currently implement their own hashing routines, should be
// modified to use the generic routines."  This example does exactly that —
// an hsearch-style in-memory symbol table built on the package, with the
// features System V hsearch lacked: growth past nelem, multiple tables at
// once (one scope per table), and spill-to-disk transparency.
//
//   $ ./symbol_table

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/hsearch_compat.h"
#include "src/util/random.h"

using hashkit::hsearch::Action;
using hashkit::hsearch::Entry;
using hashkit::hsearch::Table;

namespace {

struct Symbol {
  std::string name;
  uint32_t address;
  bool global;
};

}  // namespace

int main() {
  // One table per lexical scope — impossible with the single global table
  // hsearch embeds in its interface.
  std::vector<std::unique_ptr<Table>> scopes;
  std::vector<std::vector<std::unique_ptr<Symbol>>> storage;

  hashkit::Rng rng(99);
  auto push_scope = [&] {
    scopes.push_back(std::move(Table::Create(64).value()));
    storage.emplace_back();
  };
  auto define = [&](const std::string& name, uint32_t address, bool global) {
    auto symbol = std::make_unique<Symbol>(Symbol{name, address, global});
    Entry result;
    (void)scopes.back()->Search({name, symbol.get()}, Action::kEnter, &result);
    storage.back().push_back(std::move(symbol));
  };
  // Inner-to-outer scope resolution.
  auto resolve = [&](const std::string& name) -> const Symbol* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      Entry result;
      if ((*it)->Search({name, nullptr}, Action::kFind, &result).ok()) {
        return static_cast<const Symbol*>(result.data);
      }
    }
    return nullptr;
  };

  push_scope();  // file scope
  define("main", 0x1000, true);
  define("printf", 0x2000, true);
  // A big compilation unit: 50k generated local symbols (the table was
  // created with nelem=64; growth past it is the package's enhancement).
  for (int i = 0; i < 50000; ++i) {
    define("local_" + std::to_string(i) + "_" + rng.AsciiString(6),
           0x4000 + static_cast<uint32_t>(i), false);
  }
  std::printf("file scope holds %zu symbols (created with nelem=64)\n", scopes.back()->size());

  push_scope();  // function scope shadows file scope
  define("printf", 0x9999, false);  // a local override
  const Symbol* inner = resolve("printf");
  std::printf("printf resolves to 0x%x in the inner scope\n", inner->address);
  const Symbol* main_sym = resolve("main");
  std::printf("main resolves to 0x%x through the outer scope\n", main_sym->address);

  scopes.pop_back();  // leave the function scope
  storage.pop_back();
  const Symbol* outer = resolve("printf");
  std::printf("printf resolves to 0x%x after the scope closes\n", outer->address);

  return inner->address == 0x9999 && outer->address == 0x2000 ? 0 : 1;
}
