// hashkit example: a mail-spool index built from all three access methods
// working together — the paper's closing pitch ("Applications such as
// the loader, compiler, and mail ... should be modified to use the
// generic routines") made concrete.
//
//   * message bodies    -> variable-length recno (append-only log)
//   * message-id -> recno -> hash table (exact-match lookups)
//   * date-key -> recno  -> btree (ordered scans: "messages from June")
//
//   $ ./mail_index

#include <cstdio>
#include <string>

#include "src/btree/btree.h"
#include "src/core/hash_table.h"
#include "src/recno/recno.h"
#include "src/util/random.h"

using hashkit::HashOptions;
using hashkit::HashTable;
using hashkit::Rng;

namespace {

std::string DateKey(int year, int month, int day, uint64_t serial) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d#%06llu", year, month, day,
                static_cast<unsigned long long>(serial));
  return buf;
}

std::string EncodeRecno(uint64_t recno) {
  std::string s(8, '\0');
  for (int i = 7; i >= 0; --i) {
    s[i] = static_cast<char>(recno & 0xff);
    recno >>= 8;
  }
  return s;
}

uint64_t DecodeRecno(const std::string& s) {
  uint64_t recno = 0;
  for (const char c : s) {
    recno = (recno << 8) | static_cast<uint8_t>(c);
  }
  return recno;
}

}  // namespace

int main() {
  // The three access methods, all memory-resident for the demo.
  hashkit::btree::BtOptions bt_options;
  bt_options.page_size = 2048;
  auto bodies = std::move(hashkit::recno::VarRecno::OpenInMemory(bt_options).value());
  auto by_id = std::move(HashTable::OpenInMemory(HashOptions{}).value());
  auto by_date = std::move(hashkit::btree::BTree::OpenInMemory(bt_options).value());

  // Ingest a year of mail.
  Rng rng(2026);
  uint64_t serial = 0;
  for (int month = 1; month <= 12; ++month) {
    const int messages = 40 + static_cast<int>(rng.Uniform(40));
    for (int m = 0; m < messages; ++m) {
      const int day = 1 + static_cast<int>(rng.Uniform(28));
      const std::string message_id =
          "<" + rng.AsciiString(12) + "@" + rng.AsciiString(6) + ".example>";
      const std::string body = "From: " + rng.AsciiString(8) + "@example\nSubject: " +
                               rng.AsciiString(20) + "\n\n" + rng.AsciiString(rng.Range(50, 800));
      const uint64_t recno = bodies->Append(body).value();
      (void)by_id->Put(message_id, EncodeRecno(recno));
      (void)by_date->Put(DateKey(1991, month, day, serial++), EncodeRecno(recno));
      if (serial == 100) {
        // Remember one id for the point-lookup demo below.
        (void)by_id->Put("<demo-message@example>", EncodeRecno(recno));
      }
    }
  }
  std::printf("indexed %llu messages across 12 months\n",
              static_cast<unsigned long long>(bodies->Present()));

  // Exact-match: message-id -> body, via the hash table.
  std::string encoded;
  if (by_id->Get("<demo-message@example>", &encoded).ok()) {
    std::string body;
    (void)bodies->Get(DecodeRecno(encoded), &body);
    std::printf("by-id lookup: %zu-byte body, starts \"%.20s...\"\n", body.size(),
                body.c_str());
  }

  // Range query: every message from June, via the btree.
  auto cursor = by_date->NewCursor();
  (void)cursor.Seek("1991-06-");
  std::string key;
  std::string value;
  size_t june = 0;
  while (cursor.Next(&key, &value).ok() && key < "1991-07-") {
    ++june;
  }
  std::printf("btree range scan: %zu messages in June 1991\n", june);

  // The hash table cannot answer that query without a full scan -- the
  // access methods really are complementary, as the paper's package
  // design implies.
  std::string k, v;
  size_t scanned = 0;
  auto st = by_id->Seq(&k, &v, true);
  while (st.ok()) {
    ++scanned;
    st = by_id->Seq(&k, &v, false);
  }
  std::printf("(hash equivalent would scan all %zu index entries)\n", scanned);
  return june > 0 ? 0 : 1;
}
