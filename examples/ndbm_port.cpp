// hashkit example: porting an ndbm application.
//
// The paper ships ndbm compatibility routines so existing programs can be
// relinked against the new package.  This example is written the way a
// classic ndbm program would be — store/fetch/delete/firstkey/nextkey with
// datums — and runs identically against (a) the historical ndbm algorithm
// (our faithful clone) and (b) the new package's ndbm-compatible
// interface, then prints where the behaviours differ: the new package
// accepts the oversized record that real ndbm must reject.
//
//   $ ./ndbm_port [dbpath-prefix]

#include <cstdio>
#include <string>

#include "src/baselines/ndbm/ndbm.h"
#include "src/core/ndbm_compat.h"

using hashkit::ndbm::Datum;
using hashkit::ndbm::StoreMode;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "/tmp/hashkit_ndbm_port";

  // --- The same application logic, old library first. ---
  auto old_db = std::move(
      hashkit::baseline::NdbmClone::Open(prefix + "_old", 1024, /*truncate=*/true).value());
  for (int i = 0; i < 100; ++i) {
    const std::string key = "record" + std::to_string(i);
    (void)old_db->Store(key, "data-" + std::to_string(i), /*replace=*/true);
  }
  std::string value;
  (void)old_db->Fetch("record7", &value);
  std::printf("[old ndbm]  record7 -> %s\n", value.c_str());

  const std::string oversized(2000, 'x');  // > 1024-byte block
  const auto old_status = old_db->Store("oversized", oversized, true);
  std::printf("[old ndbm]  storing a 2000-byte record: %s\n", old_status.ToString().c_str());

  // --- Identical logic against the new package's compat interface. ---
  auto new_db = std::move(hashkit::ndbm::Db::Open(prefix + "_new").value());
  for (int i = 0; i < 100; ++i) {
    const std::string key = "record" + std::to_string(i);
    (void)new_db->Store(Datum(key), Datum("data-" + std::to_string(i)), StoreMode::kReplace);
  }
  const Datum fetched = new_db->Fetch(Datum(std::string("record7")));
  std::printf("[new hash]  record7 -> %.*s\n", static_cast<int>(fetched.dsize), fetched.dptr);

  const int rc = new_db->Store(Datum(std::string("oversized")), Datum(oversized),
                               StoreMode::kReplace);
  std::printf("[new hash]  storing a 2000-byte record: %s\n",
              rc == 0 ? "OK (big pairs supported)" : "failed");

  // firstkey/nextkey works the same way in both.
  size_t old_count = 0;
  std::string k;
  auto st = old_db->Seq(&k, nullptr, true);
  while (st.ok()) {
    ++old_count;
    st = old_db->Seq(&k, nullptr, false);
  }
  size_t new_count = 0;
  for (Datum d = new_db->Firstkey(); !d.null(); d = new_db->Nextkey()) {
    ++new_count;
  }
  std::printf("scan: old=%zu keys, new=%zu keys (new includes the oversized record)\n",
              old_count, new_count);
  return 0;
}
