// hashkit example: a command-line database tool over the uniform KvStore
// interface — usable with any store in the repository, in the spirit of
// the paper's "generic database access package" whose access methods
// "appear identical to the application layer".
//
//   db_tool <store> <path> put <key> <value>
//   db_tool <store> <path> get <key>
//   db_tool <store> <path> del <key>
//   db_tool <store> <path> dump
//   db_tool <store> <path> stat
//   db_tool <store> <path> load        (key<TAB>value lines from stdin)
//   db_tool <store> <path> verify      (hash_disk: recover + integrity check)
//   db_tool <store> <path> recover     (hash_disk: replay the WAL, report)
//   db_tool <store> <path> upgrade     (hash_disk: migrate format v1 -> v2)
//
// <store> is one of: hash_disk ndbm sdbm gdbm
// (the memory-resident stores have nothing to reopen, so the tool is
// file-backed only).  Running with no arguments demonstrates the tool on
// itself.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/hash_table.h"
#include "src/kv/kv_store.h"

using hashkit::Status;
using hashkit::kv::KvStore;
using hashkit::kv::OpenStore;
using hashkit::kv::StoreKind;
using hashkit::kv::StoreOptions;

namespace {

bool ParseKind(const std::string& name, StoreKind* kind) {
  for (const StoreKind k : hashkit::kv::kAllStoreKinds) {
    if (name == hashkit::kv::StoreKindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

int Usage(std::FILE* out, int code) {
  std::fprintf(out,
               "usage: db_tool <store> <path> put <key> <value>\n"
               "       db_tool <store> <path> get <key>\n"
               "       db_tool <store> <path> del <key>\n"
               "       db_tool <store> <path> dump|stat|load\n"
               "       db_tool <store> <path> verify|recover|upgrade   (hash_disk only)\n"
               "       db_tool --help\n"
               "store: hash_disk ndbm sdbm gdbm (file-backed kinds)\n"
               "load reads key<TAB>value lines from stdin.\n"
               "verify replays any write-ahead log, then runs a full structural\n"
               "integrity check (on format-v2 tables this includes the per-page\n"
               "fingerprint tag arrays); recover replays the log and reports what\n"
               "it did.  Both exit 0 when the table is sound, 1 otherwise.\n"
               "upgrade rebuilds a format-v1 table as v2 via an atomic rename.\n"
               "With no arguments, runs a self-demonstration.\n");
  return code;
}

int Usage() { return Usage(stderr, 2); }

// Exact operand counts per subcommand; anything else is a usage error with
// a pointed message rather than silent fallthrough.
bool OperandCountOk(const std::string& cmd, int argc, int* expected) {
  if (cmd == "put") {
    *expected = 2;
  } else if (cmd == "get" || cmd == "del") {
    *expected = 1;
  } else if (cmd == "dump" || cmd == "stat" || cmd == "load" || cmd == "verify" ||
             cmd == "recover" || cmd == "upgrade") {
    *expected = 0;
  } else {
    return false;  // unknown command; *expected untouched
  }
  return argc == *expected;
}

int RunCommand(KvStore& store, const std::string& cmd, int argc, char** argv) {
  if (cmd == "put" && argc >= 2) {
    const Status st = store.Put(argv[0], argv[1]);
    if (!st.ok()) {
      std::fprintf(stderr, "put: %s\n", st.ToString().c_str());
      return 1;
    }
    return store.Sync().ok() ? 0 : 1;
  }
  if (cmd == "get" && argc >= 1) {
    std::string value;
    const Status st = store.Get(argv[0], &value);
    if (!st.ok()) {
      std::fprintf(stderr, "get: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", value.c_str());
    return 0;
  }
  if (cmd == "del" && argc >= 1) {
    const Status st = store.Delete(argv[0]);
    if (!st.ok()) {
      std::fprintf(stderr, "del: %s\n", st.ToString().c_str());
      return 1;
    }
    return store.Sync().ok() ? 0 : 1;
  }
  if (cmd == "dump") {
    std::string key;
    std::string value;
    Status st = store.Scan(&key, &value, true);
    while (st.ok()) {
      std::printf("%s\t%s\n", key.c_str(), value.c_str());
      st = store.Scan(&key, &value, false);
    }
    return st.IsNotFound() ? 0 : 1;
  }
  if (cmd == "stat") {
    std::printf("store: %s\n", store.Name().c_str());
    std::printf("pairs: %llu\n", static_cast<unsigned long long>(store.Size()));
    const auto caps = store.Caps();
    std::printf(
        "caps: persistent=%d deletes=%d scans=%d unlimited_pair=%d grows=%d "
        "concurrent_reads=%d\n",
        caps.persistent, caps.deletes, caps.scans, caps.unlimited_pair, caps.grows,
        caps.concurrent_reads);
    return 0;
  }
  if (cmd == "load") {
    std::string line;
    size_t loaded = 0;
    while (std::getline(std::cin, line)) {
      const size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        continue;
      }
      if (store.Put(line.substr(0, tab), line.substr(tab + 1)).ok()) {
        ++loaded;
      }
    }
    std::printf("loaded %zu pairs\n", loaded);
    return store.Sync().ok() ? 0 : 1;
  }
  return Usage();
}

// verify/recover bypass the KvStore layer: they open the HashTable
// directly so recovery runs exactly as a normal open would (replay
// committed WAL batches, discard torn tails) and the structural checker is
// reachable.  Only hash_disk tables have this machinery.
int RunMaintenance(const std::string& store_name, const std::string& path,
                   const std::string& cmd) {
  if (store_name != "hash_disk") {
    std::fprintf(stderr, "db_tool: '%s' is only supported for hash_disk\n", cmd.c_str());
    return 2;
  }
  if (::access(path.c_str(), F_OK) != 0) {
    std::fprintf(stderr, "db_tool: no such table: %s\n", path.c_str());
    return 1;
  }
  if (cmd == "upgrade") {
    auto upgraded = hashkit::UpgradeTableFormat(path);
    if (!upgraded.ok()) {
      std::fprintf(stderr, "upgrade: %s\n", upgraded.status().ToString().c_str());
      return 1;
    }
    if (upgraded.value().already_current) {
      std::printf("format: already v2, nothing to do\n");
      return 0;
    }
    std::printf("upgraded to format v2 (%llu pairs copied)\n",
                static_cast<unsigned long long>(upgraded.value().keys_copied));
    // Fall through to the verify path below so the rebuilt table gets the
    // same structural + tag-array check a plain `verify` would run.
  }
  hashkit::HashOptions options;
  auto opened = hashkit::HashTable::Open(path, options, /*truncate=*/false);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s: open failed: %s\n", cmd.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  auto& table = *opened.value();
  std::printf("format: v%u\n", table.meta().version);
  const auto& recovery = table.recovery();
  std::printf("wal: %s\n", recovery.wal_found ? "replayed" : "none");
  if (recovery.wal_found) {
    std::printf("wal batches replayed: %llu\n",
                static_cast<unsigned long long>(recovery.batches_applied));
    std::printf("wal pages replayed: %llu\n",
                static_cast<unsigned long long>(recovery.pages_applied));
    std::printf("wal torn tail discarded: %s\n", recovery.torn_tail ? "yes" : "no");
  }
  if (cmd == "recover") {
    std::printf("pairs: %llu\n", static_cast<unsigned long long>(table.size()));
  }
  const Status check = table.CheckIntegrity();
  if (!check.ok()) {
    std::fprintf(stderr, "integrity: FAILED: %s\n", check.ToString().c_str());
    return 1;
  }
  std::printf("integrity: ok (%llu pairs, %u buckets)\n",
              static_cast<unsigned long long>(table.size()), table.bucket_count());
  return 0;
}

// Self-demonstration when run with no arguments.
int Demo() {
  const std::string path = "/tmp/hashkit_db_tool_demo.db";
  std::remove(path.c_str());
  StoreOptions options;
  options.path = path;
  options.truncate = true;
  auto opened = OpenStore(StoreKind::kHashDisk, options);
  if (!opened.ok()) {
    return 1;
  }
  auto store = std::move(opened).value();
  std::printf("$ db_tool hash_disk %s put greeting 'hello, 1991'\n", path.c_str());
  (void)store->Put("greeting", "hello, 1991");
  (void)store->Put("author1", "Margo Seltzer");
  (void)store->Put("author2", "Ozan Yigit");
  (void)store->Sync();
  std::printf("$ db_tool hash_disk %s get greeting\n", path.c_str());
  std::string value;
  (void)store->Get("greeting", &value);
  std::printf("%s\n", value.c_str());
  std::printf("$ db_tool hash_disk %s dump\n", path.c_str());
  std::string key;
  Status st = store->Scan(&key, &value, true);
  while (st.ok()) {
    std::printf("%s\t%s\n", key.c_str(), value.c_str());
    st = store->Scan(&key, &value, false);
  }
  std::printf("$ db_tool hash_disk %s stat\n", path.c_str());
  std::printf("store: %s\npairs: %llu\n", store->Name().c_str(),
              static_cast<unsigned long long>(store->Size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0)) {
    return Usage(stdout, 0);
  }
  if (argc < 2) {
    return Demo();
  }
  if (argc < 4) {
    std::fprintf(stderr, "db_tool: expected <store> <path> <command>\n");
    return Usage();
  }
  StoreKind kind;
  if (!ParseKind(argv[1], &kind)) {
    std::fprintf(stderr, "db_tool: unknown store kind '%s'\n", argv[1]);
    return Usage();
  }
  const std::string cmd = argv[3];
  int expected = 0;
  if (!OperandCountOk(cmd, argc - 4, &expected)) {
    if (cmd != "put" && cmd != "get" && cmd != "del" && cmd != "dump" && cmd != "stat" &&
        cmd != "load" && cmd != "verify" && cmd != "recover" && cmd != "upgrade") {
      std::fprintf(stderr, "db_tool: unknown command '%s'\n", cmd.c_str());
    } else {
      std::fprintf(stderr, "db_tool: '%s' takes exactly %d operand%s (got %d)\n", cmd.c_str(),
                   expected, expected == 1 ? "" : "s", argc - 4);
    }
    return Usage();
  }
  if (cmd == "verify" || cmd == "recover" || cmd == "upgrade") {
    return RunMaintenance(argv[1], argv[2], cmd);
  }
  StoreOptions options;
  options.path = argv[2];
  options.truncate = false;  // tools never clobber existing data
  auto opened = OpenStore(kind, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  if (!opened.value()->Caps().persistent) {
    std::fprintf(stderr, "db_tool: store kind '%s' is memory-resident; nothing would survive "
                         "this process — use a file-backed kind\n",
                 argv[1]);
    return 2;
  }
  return RunCommand(*opened.value(), cmd, argc - 4, argv + 4);
}
