// hashkit example: a command-line database tool over the uniform KvStore
// interface — usable with any store in the repository, in the spirit of
// the paper's "generic database access package" whose access methods
// "appear identical to the application layer".
//
//   db_tool <store> <path> put <key> <value>
//   db_tool <store> <path> get <key>
//   db_tool <store> <path> del <key>
//   db_tool <store> <path> dump
//   db_tool <store> <path> stat
//   db_tool <store> <path> load        (key<TAB>value lines from stdin)
//   db_tool <store> <path> verify      (hash_disk: recover + integrity check)
//   db_tool <store> <path> recover     (hash_disk: replay the WAL, report)
//   db_tool <store> <path> upgrade     (hash_disk: migrate format v1 -> v2)
//   db_tool <store> <path> backup <host:port>   (hash_disk: online backup)
//   db_tool <store> <path> restore <to_lsn>     (hash_disk: PITR from archive)
//   db_tool <store> <path> clean      (remove stale temp artifacts)
//
// <store> is one of: hash_disk ndbm sdbm gdbm
// (the memory-resident stores have nothing to reopen, so the tool is
// file-backed only).  Running with no arguments demonstrates the tool on
// itself.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/hash_table.h"
#include "src/kv/kv_store.h"
#include "src/net/replica.h"
#include "src/util/tempfile.h"
#include "src/wal/archive.h"

using hashkit::Status;
using hashkit::kv::KvStore;
using hashkit::kv::OpenStore;
using hashkit::kv::StoreKind;
using hashkit::kv::StoreOptions;

namespace {

bool ParseKind(const std::string& name, StoreKind* kind) {
  for (const StoreKind k : hashkit::kv::kAllStoreKinds) {
    if (name == hashkit::kv::StoreKindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

int Usage(std::FILE* out, int code) {
  std::fprintf(out,
               "usage: db_tool <store> <path> put <key> <value>\n"
               "       db_tool <store> <path> get <key>\n"
               "       db_tool <store> <path> del <key>\n"
               "       db_tool <store> <path> dump|stat|load\n"
               "       db_tool <store> <path> verify|recover|upgrade   (hash_disk only)\n"
               "       db_tool <store> <path> backup <host:port>       (hash_disk only)\n"
               "       db_tool <store> <path> restore <to_lsn|latest>  (hash_disk only)\n"
               "       db_tool <store> <path> clean\n"
               "       db_tool --help\n"
               "store: hash_disk ndbm sdbm gdbm (file-backed kinds)\n"
               "load reads key<TAB>value lines from stdin.\n"
               "verify replays any write-ahead log, then runs a full structural\n"
               "integrity check (on format-v2 tables this includes the per-page\n"
               "fingerprint tag arrays); recover replays the log and reports what\n"
               "it did.  Both exit 0 when the table is sound, 1 otherwise.\n"
               "upgrade rebuilds a format-v1 table as v2 via an atomic rename.\n"
               "backup streams a live server's checkpoint image and WAL tail into\n"
               "<path> (+<path>.wal) without blocking its writers.  restore replays\n"
               "archived WAL segments (<path>.wal.<seq>, see --wal-archive) plus the\n"
               "live log onto <path>, stopping at <to_lsn>.  clean removes stale\n"
               "temp artifacts (.tmp/.upgrade/.cmap.tmp) a crashed writer left;\n"
               "verify, recover, backup, and restore refuse to run while any exist.\n"
               "With no arguments, runs a self-demonstration.\n");
  return code;
}

int Usage() { return Usage(stderr, 2); }

// Exact operand counts per subcommand; anything else is a usage error with
// a pointed message rather than silent fallthrough.
bool OperandCountOk(const std::string& cmd, int argc, int* expected) {
  if (cmd == "put") {
    *expected = 2;
  } else if (cmd == "get" || cmd == "del") {
    *expected = 1;
  } else if (cmd == "backup" || cmd == "restore") {
    *expected = 1;
  } else if (cmd == "dump" || cmd == "stat" || cmd == "load" || cmd == "verify" ||
             cmd == "recover" || cmd == "upgrade" || cmd == "clean") {
    *expected = 0;
  } else {
    return false;  // unknown command; *expected untouched
  }
  return argc == *expected;
}

int RunCommand(KvStore& store, const std::string& cmd, int argc, char** argv) {
  if (cmd == "put" && argc >= 2) {
    const Status st = store.Put(argv[0], argv[1]);
    if (!st.ok()) {
      std::fprintf(stderr, "put: %s\n", st.ToString().c_str());
      return 1;
    }
    return store.Sync().ok() ? 0 : 1;
  }
  if (cmd == "get" && argc >= 1) {
    std::string value;
    const Status st = store.Get(argv[0], &value);
    if (!st.ok()) {
      std::fprintf(stderr, "get: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", value.c_str());
    return 0;
  }
  if (cmd == "del" && argc >= 1) {
    const Status st = store.Delete(argv[0]);
    if (!st.ok()) {
      std::fprintf(stderr, "del: %s\n", st.ToString().c_str());
      return 1;
    }
    return store.Sync().ok() ? 0 : 1;
  }
  if (cmd == "dump") {
    std::string key;
    std::string value;
    Status st = store.Scan(&key, &value, true);
    while (st.ok()) {
      std::printf("%s\t%s\n", key.c_str(), value.c_str());
      st = store.Scan(&key, &value, false);
    }
    return st.IsNotFound() ? 0 : 1;
  }
  if (cmd == "stat") {
    std::printf("store: %s\n", store.Name().c_str());
    std::printf("pairs: %llu\n", static_cast<unsigned long long>(store.Size()));
    const auto caps = store.Caps();
    std::printf(
        "caps: persistent=%d deletes=%d scans=%d unlimited_pair=%d grows=%d "
        "concurrent_reads=%d\n",
        caps.persistent, caps.deletes, caps.scans, caps.unlimited_pair, caps.grows,
        caps.concurrent_reads);
    return 0;
  }
  if (cmd == "load") {
    std::string line;
    size_t loaded = 0;
    while (std::getline(std::cin, line)) {
      const size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        continue;
      }
      if (store.Put(line.substr(0, tab), line.substr(tab + 1)).ok()) {
        ++loaded;
      }
    }
    std::printf("loaded %zu pairs\n", loaded);
    return store.Sync().ok() ? 0 : 1;
  }
  return Usage();
}

// verify/recover bypass the KvStore layer: they open the HashTable
// directly so recovery runs exactly as a normal open would (replay
// committed WAL batches, discard torn tails) and the structural checker is
// reachable.  Only hash_disk tables have this machinery.
int RunMaintenance(const std::string& store_name, const std::string& path,
                   const std::string& cmd) {
  if (store_name != "hash_disk") {
    std::fprintf(stderr, "db_tool: '%s' is only supported for hash_disk\n", cmd.c_str());
    return 2;
  }
  if (::access(path.c_str(), F_OK) != 0) {
    std::fprintf(stderr, "db_tool: no such table: %s\n", path.c_str());
    return 1;
  }
  if (cmd == "verify" || cmd == "recover") {
    // A stale temp file means a writer (upgrade, cluster persist, backup
    // download) died mid-flight; repairing or blessing the table while it
    // sits there risks mistaking the torn artifact for data.
    const auto stale = hashkit::StaleArtifactsFor(path);
    if (!stale.empty()) {
      std::fprintf(stderr,
                   "%s: refusing: stale temp artifact %s exists "
                   "(run `db_tool hash_disk %s clean` after confirming no "
                   "writer is live)\n",
                   cmd.c_str(), stale.front().c_str(), path.c_str());
      return 1;
    }
  }
  if (cmd == "upgrade") {
    auto upgraded = hashkit::UpgradeTableFormat(path);
    if (!upgraded.ok()) {
      std::fprintf(stderr, "upgrade: %s\n", upgraded.status().ToString().c_str());
      return 1;
    }
    if (upgraded.value().already_current) {
      std::printf("format: already v2, nothing to do\n");
      return 0;
    }
    std::printf("upgraded to format v2 (%llu pairs copied)\n",
                static_cast<unsigned long long>(upgraded.value().keys_copied));
    // Fall through to the verify path below so the rebuilt table gets the
    // same structural + tag-array check a plain `verify` would run.
  }
  hashkit::HashOptions options;
  auto opened = hashkit::HashTable::Open(path, options, /*truncate=*/false);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s: open failed: %s\n", cmd.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  auto& table = *opened.value();
  std::printf("format: v%u\n", table.meta().version);
  const auto& recovery = table.recovery();
  std::printf("wal: %s\n", recovery.wal_found ? "replayed" : "none");
  if (recovery.wal_found) {
    std::printf("wal batches replayed: %llu\n",
                static_cast<unsigned long long>(recovery.batches_applied));
    std::printf("wal pages replayed: %llu\n",
                static_cast<unsigned long long>(recovery.pages_applied));
    std::printf("wal torn tail discarded: %s\n", recovery.torn_tail ? "yes" : "no");
  }
  if (cmd == "recover") {
    std::printf("pairs: %llu\n", static_cast<unsigned long long>(table.size()));
  }
  const Status check = table.CheckIntegrity();
  if (!check.ok()) {
    std::fprintf(stderr, "integrity: FAILED: %s\n", check.ToString().c_str());
    return 1;
  }
  std::printf("integrity: ok (%llu pairs, %u buckets)\n",
              static_cast<unsigned long long>(table.size()), table.bucket_count());
  return 0;
}

// backup/restore/clean: online operations on the WAL (hashkit-mvcc).
// backup needs no local table (it creates one); restore repairs one in
// place from the archive; clean removes torn temp artifacts.
int RunOnline(const std::string& store_name, const std::string& path, const std::string& cmd,
              int argc, char** argv) {
  (void)argc;  // operand counts were validated in main
  if (cmd == "clean") {
    const auto stale = hashkit::StaleArtifactsFor(path);
    if (stale.empty()) {
      std::printf("clean: nothing stale next to %s\n", path.c_str());
      return 0;
    }
    const Status st = hashkit::RemoveStaleArtifacts(path);
    if (!st.ok()) {
      std::fprintf(stderr, "clean: %s\n", st.ToString().c_str());
      return 1;
    }
    for (const std::string& artifact : stale) {
      std::printf("clean: removed %s\n", artifact.c_str());
    }
    return 0;
  }
  if (store_name != "hash_disk") {
    std::fprintf(stderr, "db_tool: '%s' is only supported for hash_disk\n", cmd.c_str());
    return 2;
  }
  if (cmd == "backup") {
    const std::string addr = argv[0];
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      std::fprintf(stderr, "backup: want <host:port>, got '%s'\n", addr.c_str());
      return 2;
    }
    auto client = hashkit::net::Client::Connect(
        addr.substr(0, colon), static_cast<uint16_t>(std::atol(addr.c_str() + colon + 1)));
    if (!client.ok()) {
      std::fprintf(stderr, "backup: connect: %s\n", client.status().ToString().c_str());
      return 1;
    }
    auto manifest = hashkit::net::DownloadBackup(client.value().get(), path);
    if (!manifest.ok()) {
      std::fprintf(stderr, "backup: %s\n", manifest.status().ToString().c_str());
      return 1;
    }
    std::printf("backup: %llu pages of %u bytes, consistent as of lsn %llu\n",
                static_cast<unsigned long long>(manifest.value().page_count),
                manifest.value().page_size,
                static_cast<unsigned long long>(manifest.value().lsn));
    std::printf("backup: wrote %s and %s.wal\n", path.c_str(), path.c_str());
    return 0;
  }
  // restore
  if (::access(path.c_str(), F_OK) != 0) {
    std::fprintf(stderr, "restore: no such table: %s\n", path.c_str());
    return 1;
  }
  const auto stale = hashkit::StaleArtifactsFor(path);
  if (!stale.empty()) {
    std::fprintf(stderr,
                 "restore: refusing: stale temp artifact %s exists "
                 "(run `db_tool hash_disk %s clean` first)\n",
                 stale.front().c_str(), path.c_str());
    return 1;
  }
  uint64_t to_lsn = UINT64_MAX;
  if (std::strcmp(argv[0], "latest") != 0) {
    char* end = nullptr;
    to_lsn = std::strtoull(argv[0], &end, 10);
    if (end == argv[0] || *end != '\0') {
      std::fprintf(stderr, "restore: want a decimal LSN or 'latest', got '%s'\n", argv[0]);
      return 2;
    }
  }
  auto applied = hashkit::wal::RestoreToLsn(path, to_lsn);
  if (!applied.ok()) {
    std::fprintf(stderr, "restore: %s\n", applied.status().ToString().c_str());
    return 1;
  }
  std::printf("restore: applied through lsn %llu\n",
              static_cast<unsigned long long>(applied.value()));
  // The restored table should pass the same checks `verify` runs.
  return RunMaintenance(store_name, path, "verify");
}

// Self-demonstration when run with no arguments.
int Demo() {
  const std::string path = "/tmp/hashkit_db_tool_demo.db";
  std::remove(path.c_str());
  StoreOptions options;
  options.path = path;
  options.truncate = true;
  auto opened = OpenStore(StoreKind::kHashDisk, options);
  if (!opened.ok()) {
    return 1;
  }
  auto store = std::move(opened).value();
  std::printf("$ db_tool hash_disk %s put greeting 'hello, 1991'\n", path.c_str());
  (void)store->Put("greeting", "hello, 1991");
  (void)store->Put("author1", "Margo Seltzer");
  (void)store->Put("author2", "Ozan Yigit");
  (void)store->Sync();
  std::printf("$ db_tool hash_disk %s get greeting\n", path.c_str());
  std::string value;
  (void)store->Get("greeting", &value);
  std::printf("%s\n", value.c_str());
  std::printf("$ db_tool hash_disk %s dump\n", path.c_str());
  std::string key;
  Status st = store->Scan(&key, &value, true);
  while (st.ok()) {
    std::printf("%s\t%s\n", key.c_str(), value.c_str());
    st = store->Scan(&key, &value, false);
  }
  std::printf("$ db_tool hash_disk %s stat\n", path.c_str());
  std::printf("store: %s\npairs: %llu\n", store->Name().c_str(),
              static_cast<unsigned long long>(store->Size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0)) {
    return Usage(stdout, 0);
  }
  if (argc < 2) {
    return Demo();
  }
  if (argc < 4) {
    std::fprintf(stderr, "db_tool: expected <store> <path> <command>\n");
    return Usage();
  }
  StoreKind kind;
  if (!ParseKind(argv[1], &kind)) {
    std::fprintf(stderr, "db_tool: unknown store kind '%s'\n", argv[1]);
    return Usage();
  }
  const std::string cmd = argv[3];
  int expected = 0;
  if (!OperandCountOk(cmd, argc - 4, &expected)) {
    if (cmd != "put" && cmd != "get" && cmd != "del" && cmd != "dump" && cmd != "stat" &&
        cmd != "load" && cmd != "verify" && cmd != "recover" && cmd != "upgrade" &&
        cmd != "backup" && cmd != "restore" && cmd != "clean") {
      std::fprintf(stderr, "db_tool: unknown command '%s'\n", cmd.c_str());
    } else {
      std::fprintf(stderr, "db_tool: '%s' takes exactly %d operand%s (got %d)\n", cmd.c_str(),
                   expected, expected == 1 ? "" : "s", argc - 4);
    }
    return Usage();
  }
  if (cmd == "verify" || cmd == "recover" || cmd == "upgrade") {
    return RunMaintenance(argv[1], argv[2], cmd);
  }
  if (cmd == "backup" || cmd == "restore" || cmd == "clean") {
    return RunOnline(argv[1], argv[2], cmd, argc - 4, argv + 4);
  }
  StoreOptions options;
  options.path = argv[2];
  options.truncate = false;  // tools never clobber existing data
  auto opened = OpenStore(kind, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  if (!opened.value()->Caps().persistent) {
    std::fprintf(stderr, "db_tool: store kind '%s' is memory-resident; nothing would survive "
                         "this process — use a file-backed kind\n",
                 argv[1]);
    return 2;
  }
  return RunCommand(*opened.value(), cmd, argc - 4, argv + 4);
}
