# ctest smoke test for db_tool: exercises every subcommand (put, get, del,
# dump, stat, load) plus --help and the argument-validation error paths
# against a real hash_disk file.  Driven as
#   cmake -DDB_TOOL=<binary> -DWORK_DIR=<dir> -P db_tool_smoke.cmake
# and registered from examples/CMakeLists.txt.

if(NOT DEFINED DB_TOOL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DDB_TOOL=<bin> -DWORK_DIR=<dir> -P db_tool_smoke.cmake")
endif()

set(DB "${WORK_DIR}/db_tool_smoke.db")
file(REMOVE "${DB}")

function(run_expect_rc expect_rc)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "expected rc=${expect_rc}, got rc=${rc} for: ${ARGN}\n${out}\n${err}")
  endif()
  set(LAST_OUT "${out}" PARENT_SCOPE)
endfunction()

function(expect_output_contains needle)
  if(NOT LAST_OUT MATCHES "${needle}")
    message(FATAL_ERROR "expected output to contain '${needle}', got:\n${LAST_OUT}")
  endif()
endfunction()

# --help succeeds and prints usage.
run_expect_rc(0 "${DB_TOOL}" --help)
expect_output_contains("usage: db_tool")

# put / get round trip.
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" put greeting "hello, 1991")
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" put author seltzer-yigit)
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" get greeting)
expect_output_contains("hello, 1991")

# dump shows both pairs.
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" dump)
expect_output_contains("greeting")
expect_output_contains("author")

# stat reports the store and pair count.
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" stat)
expect_output_contains("pairs: 2")

# load from stdin (tab-separated), then verify via get.
file(WRITE "${WORK_DIR}/db_tool_smoke.input" "k1\tv1\nk2\tv2\n")
execute_process(COMMAND "${DB_TOOL}" hash_disk "${DB}" load
                INPUT_FILE "${WORK_DIR}/db_tool_smoke.input"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "load failed rc=${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "loaded 2 pairs")
  message(FATAL_ERROR "expected 'loaded 2 pairs', got:\n${out}")
endif()
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" get k2)
expect_output_contains("v2")

# del removes, get then fails with rc 1.
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" del greeting)
run_expect_rc(1 "${DB_TOOL}" hash_disk "${DB}" get greeting)

# verify runs the structural integrity check (no WAL here -> "wal: none").
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" verify)
expect_output_contains("wal: none")
expect_output_contains("integrity: ok")

# recover additionally reports the pair count (3 = author + k1 + k2).
run_expect_rc(0 "${DB_TOOL}" hash_disk "${DB}" recover)
expect_output_contains("pairs: 3")
expect_output_contains("integrity: ok")

# Both are hash_disk-only (rc 2) and take no operands.
run_expect_rc(2 "${DB_TOOL}" ndbm "${DB}" verify)
run_expect_rc(2 "${DB_TOOL}" hash_disk "${DB}" recover extra-operand)

# Validation: unknown store, unknown command, wrong operand counts, and
# memory-resident kinds are usage errors (rc 2).
run_expect_rc(2 "${DB_TOOL}" no_such_store "${DB}" stat)
run_expect_rc(2 "${DB_TOOL}" hash_disk "${DB}" frobnicate)
run_expect_rc(2 "${DB_TOOL}" hash_disk "${DB}" put only-a-key)
run_expect_rc(2 "${DB_TOOL}" hash_disk "${DB}" get)
run_expect_rc(2 "${DB_TOOL}" hash_disk "${DB}" dump extra-operand)
run_expect_rc(2 "${DB_TOOL}" hash_mem "${DB}" stat)

file(REMOVE "${DB}" "${WORK_DIR}/db_tool_smoke.input")
message(STATUS "db_tool smoke: all subcommands OK")
