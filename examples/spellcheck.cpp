// hashkit example: a spell-checker dictionary — the paper's motivating
// dictionary workload as an application.
//
// Builds a disk-resident hash table from a word list (the synthetic
// dictionary generator standing in for /usr/share/dict/words), then
// spell-checks a document: every word is one keyed lookup.  This is the
// access pattern that made dbm's one-disk-access-per-lookup design matter,
// and that the new package accelerates with its buffer pool.
//
//   $ ./spellcheck [dbpath]

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/hash_table.h"
#include "src/util/random.h"
#include "src/workload/dictionary.h"
#include "src/workload/timing.h"

using hashkit::HashOptions;
using hashkit::HashTable;
using hashkit::Rng;

namespace {

// A fake "document": mostly dictionary words, some misspellings.
std::vector<std::string> MakeDocument(const std::vector<std::string>& words, size_t length,
                                      double typo_rate, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> document;
  document.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    // Word popularity is Zipf-distributed, like real text.
    std::string word = words[rng.Zipf(words.size(), 0.9)];
    if (rng.Bernoulli(typo_rate)) {
      word[rng.Uniform(word.size())] = static_cast<char>('a' + rng.Uniform(26));
    }
    document.push_back(std::move(word));
  }
  return document;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/hashkit_spellcheck.db";

  std::printf("building dictionary database...\n");
  const auto words = hashkit::workload::GenerateDictionaryWords();

  HashOptions options;
  options.bsize = 1024;  // the paper's recommendation for disk-based tables
  options.ffactor = 32;
  options.nelem = static_cast<uint32_t>(words.size());
  options.cachesize = 1024 * 1024;
  auto opened = HashTable::Open(path, options, /*truncate=*/true);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto dict = std::move(opened).value();

  const auto build = hashkit::workload::MeasureOnce([&] {
    for (const std::string& word : words) {
      (void)dict->Put(word, "");  // presence is all a spell-checker needs
    }
    (void)dict->Sync();
  });
  std::printf("loaded %zu words: %s\n", words.size(),
              hashkit::workload::FormatSample(build).c_str());

  // Spell-check a 200k-word document.
  const auto document = MakeDocument(words, 200000, /*typo_rate=*/0.03, /*seed=*/2024);
  size_t misspelled = 0;
  const auto check = hashkit::workload::MeasureOnce([&] {
    for (const std::string& word : document) {
      if (!dict->Contains(word)) {
        ++misspelled;
      }
    }
  });
  std::printf("checked %zu words, %zu misspelled: %s\n", document.size(), misspelled,
              hashkit::workload::FormatSample(check).c_str());
  std::printf("buffer pool: %llu hits, %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(dict->pool_stats().hits),
              static_cast<unsigned long long>(dict->pool_stats().misses),
              100.0 * static_cast<double>(dict->pool_stats().hits) /
                  static_cast<double>(dict->pool_stats().hits + dict->pool_stats().misses));
  return 0;
}
