// Figure 5's closing observation, reproduced: "rereading the file from
// disk was slightly faster if a larger bucket size and fill factor were
// used (1K bucket size and 32 fill factor).  This follows intuitively from
// the improved efficiency of performing 1K reads from the disk rather than
// 256 byte reads. In general, performance for disk based tables is best
// when the page size is approximately 1K."
//
// We build the dictionary table at each geometry, close it, reopen with a
// cold buffer pool, and time reading every key, reporting backend page
// reads alongside.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const int runs = RunsFromArgs(argc, argv, 3);
  const auto records = DictionaryRecords();
  std::printf("Figure 5 follow-up: cold-cache reread of the dictionary table by "
              "geometry (%d-run averages)\n\n", runs);
  PrintCsvHeader("fig5_reread,bsize,ffactor,read_user,read_sys,read_elapsed,page_reads");

  struct Geometry {
    uint32_t bsize;
    uint32_t ffactor;
  };
  const Geometry geometries[] = {{128, 8}, {256, 8}, {256, 16}, {512, 16},
                                 {1024, 32}, {4096, 64}, {8192, 128}};

  std::printf("%6s %8s %10s %10s %10s %12s\n", "bsize", "ffactor", "user", "sys", "elapsed",
              "page reads");
  for (const Geometry& g : geometries) {
    const std::string path = BenchPath("fig5rr");
    {
      HashOptions opts;
      opts.bsize = g.bsize;
      opts.ffactor = g.ffactor;
      opts.nelem = static_cast<uint32_t>(records.size());
      opts.cachesize = 4 * 1024 * 1024;
      auto table = std::move(HashTable::Open(path, opts, true).value());
      for (const auto& r : records) {
        (void)table->Put(r.key, r.value);
      }
      (void)table->Sync();
    }

    uint64_t page_reads = 0;
    const auto sample = workload::MeasureAveraged(
        runs, [] {},
        [&] {
          HashOptions opts;
          opts.cachesize = 4 * 1024 * 1024;
          auto table = std::move(HashTable::Open(path, opts).value());  // cold pool
          std::string value;
          for (const auto& r : records) {
            (void)table->Get(r.key, &value);
          }
          page_reads = table->file_stats().reads;
        });

    std::printf("%6u %8u %10.3f %10.3f %10.3f %12llu\n", g.bsize, g.ffactor, sample.user_sec,
                sample.sys_sec, sample.elapsed_sec,
                static_cast<unsigned long long>(page_reads));
    char csv[160];
    std::snprintf(csv, sizeof(csv), "fig5_reread,%u,%u,%.4f,%.4f,%.4f,%llu", g.bsize,
                  g.ffactor, sample.user_sec, sample.sys_sec, sample.elapsed_sec,
                  static_cast<unsigned long long>(page_reads));
    PrintCsv(csv);
    RemoveBenchFiles(path);
  }
  std::printf("\n(Fewer, larger reads at 1K+ pages vs many small reads at 128-256B —\n"
              "the paper's disk-table recommendation of ~1K pages.)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
