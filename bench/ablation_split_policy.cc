// Ablation A1: the paper's hybrid split policy against its two parents —
// dynahash's controlled-only splitting (fill factor) and dbm-style
// uncontrolled-only splitting (page overflow).
//
// The hybrid is the contribution: controlled splitting keeps space
// utilization tied to the fill factor, uncontrolled splitting caps
// overflow-chain growth when the fill factor is set badly.  This bench
// shows each policy's table shape and timings over the dictionary data
// set at a well-chosen and a badly-chosen fill factor.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace bench {
namespace {

const char* PolicyName(SplitPolicy policy) {
  switch (policy) {
    case SplitPolicy::kHybrid:
      return "hybrid";
    case SplitPolicy::kControlledOnly:
      return "controlled";
    case SplitPolicy::kUncontrolledOnly:
      return "uncontrolled";
  }
  return "?";
}

int Main(int argc, char** argv) {
  const int runs = RunsFromArgs(argc, argv, 1);
  const auto records = DictionaryRecords();

  std::printf("Ablation A1: split policy (dictionary, bsize 256, in-memory)\n\n");
  PrintCsvHeader(
      "ablation_split,ffactor,policy,insert_user_sec,read_user_sec,buckets,live_ovfl,"
      "chain_pages_per_bucket");
  std::printf("%8s %-13s %12s %12s %9s %10s %12s\n", "ffactor", "policy", "insert(u)",
              "read(u)", "buckets", "live ovfl", "chain/bkt");

  for (const uint32_t ffactor : {8u, 128u}) {
    for (const SplitPolicy policy : {SplitPolicy::kHybrid, SplitPolicy::kControlledOnly,
                                     SplitPolicy::kUncontrolledOnly}) {
      HashOptions opts;
      opts.bsize = 256;
      opts.ffactor = ffactor;
      opts.cachesize = 4 * 1024 * 1024;
      opts.split_policy = policy;

      workload::TimingSample insert_time;
      workload::TimingSample read_time;
      uint32_t buckets = 0;
      uint64_t live_ovfl = 0;
      for (int run = 0; run < runs; ++run) {
        auto table = std::move(HashTable::OpenInMemory(opts).value());
        insert_time += workload::MeasureOnce([&] {
          for (const auto& r : records) {
            (void)table->Put(r.key, r.value);
          }
        });
        std::string value;
        read_time += workload::MeasureOnce([&] {
          for (const auto& r : records) {
            (void)table->Get(r.key, &value);
          }
        });
        buckets = table->bucket_count();
        live_ovfl = table->stats().ovfl_pages_alloced - table->stats().ovfl_pages_freed;
      }
      insert_time = insert_time / runs;
      read_time = read_time / runs;
      const double chain = static_cast<double>(live_ovfl) / buckets;

      std::printf("%8u %-13s %12.3f %12.3f %9u %10llu %12.2f\n", ffactor, PolicyName(policy),
                  insert_time.user_sec, read_time.user_sec, buckets,
                  static_cast<unsigned long long>(live_ovfl), chain);
      char csv[200];
      std::snprintf(csv, sizeof(csv), "ablation_split,%u,%s,%.4f,%.4f,%u,%llu,%.3f", ffactor,
                    PolicyName(policy), insert_time.user_sec, read_time.user_sec, buckets,
                    static_cast<unsigned long long>(live_ovfl), chain);
      PrintCsv(csv);
    }
    std::printf("\n");
  }
  std::printf("Expected: at ffactor 8 all three agree; at ffactor 128 controlled-only\n"
              "piles pages onto chains (slow reads) while hybrid stays flat.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
