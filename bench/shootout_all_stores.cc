// Baseline cross-check: every store in the repository on one workload.
//
// The paper compares its package against ndbm and hsearch and asserts sdbm
// and gdbm "are expected to perform similarly to ndbm".  This bench puts
// all six implementations side by side on a dictionary subset: create,
// read, and sequential scan.

#include <cstdio>
#include <functional>
#include <string>

#include "bench/bench_common.h"
#include "src/baselines/dynahash/dynahash.h"
#include "src/kv/kv_store.h"
#include "src/baselines/gdbm/gdbm.h"
#include "src/baselines/hsearch/hsearch.h"
#include "src/baselines/ndbm/ndbm.h"
#include "src/baselines/sdbm/sdbm.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace bench {
namespace {

struct Row {
  std::string store;
  workload::TimingSample create;
  workload::TimingSample read;
  workload::TimingSample seq;
  bool has_seq = true;
};

int Main(int argc, char** argv) {
  const int runs = RunsFromArgs(argc, argv, 1);
  const size_t count = 10000;
  const auto records = DictionaryRecords(count);
  std::printf("Store shootout: %zu dictionary records, %d run(s); user seconds\n\n", count,
              runs);

  std::vector<Row> rows;

  // --- new package, disk ---
  {
    Row row{"hash (disk)", {}, {}, {}};
    const std::string path = BenchPath("shoot_hash");
    for (int run = 0; run < runs; ++run) {
      RemoveBenchFiles(path);
      HashOptions opts;
      opts.bsize = 1024;
      opts.ffactor = 32;
      opts.cachesize = 1024 * 1024;
      std::unique_ptr<HashTable> table;
      row.create += workload::MeasureOnce([&] {
        table = std::move(HashTable::Open(path, opts, true).value());
        for (const auto& r : records) {
          (void)table->Put(r.key, r.value);
        }
        (void)table->Sync();
      });
      std::string v;
      row.read += workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)table->Get(r.key, &v);
        }
      });
      std::string k;
      row.seq += workload::MeasureOnce([&] {
        Status st = table->Seq(&k, &v, true);
        while (st.ok()) {
          st = table->Seq(&k, &v, false);
        }
      });
    }
    RemoveBenchFiles(path);
    rows.push_back(row);
  }

  // --- new package, memory ---
  {
    Row row{"hash (mem)", {}, {}, {}};
    for (int run = 0; run < runs; ++run) {
      HashOptions opts;
      opts.bsize = 256;
      opts.ffactor = 8;
      opts.cachesize = 4 * 1024 * 1024;
      std::unique_ptr<HashTable> table;
      row.create += workload::MeasureOnce([&] {
        table = std::move(HashTable::OpenInMemory(opts).value());
        for (const auto& r : records) {
          (void)table->Put(r.key, r.value);
        }
      });
      std::string v;
      row.read += workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)table->Get(r.key, &v);
        }
      });
      std::string k;
      row.seq += workload::MeasureOnce([&] {
        Status st = table->Seq(&k, &v, true);
        while (st.ok()) {
          st = table->Seq(&k, &v, false);
        }
      });
    }
    rows.push_back(row);
  }

  // --- new package, memory, sharded 8 ways (single-threaded here: shows
  // the partitioning overhead; concurrent_throughput shows the payoff) ---
  {
    Row row{"hash (mem x8)", {}, {}, {}};
    for (int run = 0; run < runs; ++run) {
      kv::StoreOptions options;
      options.page_size = 256;
      options.ffactor = 8;
      options.nelem = static_cast<uint32_t>(count);
      options.cachesize = 4 * 1024 * 1024;
      options.shards = 8;
      std::unique_ptr<kv::KvStore> store;
      row.create += workload::MeasureOnce([&] {
        store = std::move(kv::OpenStore(kv::StoreKind::kHashMemory, options).value());
        for (const auto& r : records) {
          (void)store->Put(r.key, r.value);
        }
      });
      std::string v;
      row.read += workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)store->Get(r.key, &v);
        }
      });
      std::string k;
      row.seq += workload::MeasureOnce([&] {
        Status st = store->Scan(&k, &v, true);
        while (st.ok()) {
          st = store->Scan(&k, &v, false);
        }
      });
    }
    rows.push_back(row);
  }

  // --- dbm-family clones ---
  const auto run_dbm = [&](const std::string& name,
                           const std::function<std::unique_ptr<baseline::DbmBase>(
                               const std::string&)>& open) {
    Row row{name, {}, {}, {}};
    const std::string path = BenchPath("shoot_" + name.substr(0, 4));
    for (int run = 0; run < runs; ++run) {
      RemoveBenchFiles(path);
      std::unique_ptr<baseline::DbmBase> db;
      row.create += workload::MeasureOnce([&] {
        db = open(path);
        for (const auto& r : records) {
          (void)db->Store(r.key, r.value, true);
        }
        (void)db->Sync();
      });
      std::string v;
      row.read += workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)db->Fetch(r.key, &v);
        }
      });
      std::string k;
      row.seq += workload::MeasureOnce([&] {
        Status st = db->Seq(&k, &v, true);
        while (st.ok()) {
          st = db->Seq(&k, &v, false);
        }
      });
    }
    RemoveBenchFiles(path);
    rows.push_back(row);
  };
  run_dbm("ndbm", [](const std::string& path) -> std::unique_ptr<baseline::DbmBase> {
    return std::move(baseline::NdbmClone::Open(path, 1024, true).value());
  });
  run_dbm("sdbm", [](const std::string& path) -> std::unique_ptr<baseline::DbmBase> {
    return std::move(baseline::SdbmClone::Open(path, 1024, true).value());
  });

  // --- gdbm clone ---
  {
    Row row{"gdbm", {}, {}, {}};
    const std::string path = BenchPath("shoot_gdbm");
    for (int run = 0; run < runs; ++run) {
      RemoveBenchFiles(path);
      std::unique_ptr<baseline::GdbmClone> db;
      row.create += workload::MeasureOnce([&] {
        db = std::move(baseline::GdbmClone::Open(path, 1024, true).value());
        for (const auto& r : records) {
          (void)db->Store(r.key, r.value, true);
        }
        (void)db->Sync();
      });
      std::string v;
      row.read += workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)db->Fetch(r.key, &v);
        }
      });
      std::string k;
      row.seq += workload::MeasureOnce([&] {
        Status st = db->Seq(&k, &v, true);
        while (st.ok()) {
          st = db->Seq(&k, &v, false);
        }
      });
    }
    RemoveBenchFiles(path);
    rows.push_back(row);
  }

  // --- memory-resident baselines (no persistent form, no seq) ---
  {
    Row row{"hsearch", {}, {}, {}, /*has_seq=*/false};
    for (int run = 0; run < runs; ++run) {
      std::unique_ptr<baseline::SysvHsearch> table;
      row.create += workload::MeasureOnce([&] {
        table = std::move(baseline::SysvHsearch::Create(records.size() * 2).value());
        for (const auto& r : records) {
          (void)table->Enter(r.key, const_cast<std::string*>(&r.value));
        }
      });
      void* data = nullptr;
      row.read += workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)table->Find(r.key, &data);
        }
      });
    }
    rows.push_back(row);
  }
  {
    Row row{"dynahash", {}, {}, {}, /*has_seq=*/false};
    for (int run = 0; run < runs; ++run) {
      std::unique_ptr<baseline::Dynahash> table;
      row.create += workload::MeasureOnce([&] {
        table = std::move(baseline::Dynahash::Create(16).value());
        for (const auto& r : records) {
          (void)table->Enter(r.key, const_cast<std::string*>(&r.value));
        }
      });
      void* data = nullptr;
      row.read += workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)table->Find(r.key, &data);
        }
      });
    }
    rows.push_back(row);
  }

  PrintCsvHeader("shootout,store,create_user,read_user,seq_user");
  std::printf("%-12s %12s %12s %12s\n", "store", "create(u)", "read(u)", "seq(u)");
  for (Row& row : rows) {
    row.create = row.create / runs;
    row.read = row.read / runs;
    row.seq = row.seq / runs;
    if (row.has_seq) {
      std::printf("%-12s %12.3f %12.3f %12.3f\n", row.store.c_str(), row.create.user_sec,
                  row.read.user_sec, row.seq.user_sec);
    } else {
      std::printf("%-12s %12.3f %12.3f %12s\n", row.store.c_str(), row.create.user_sec,
                  row.read.user_sec, "n/a");
    }
    char csv[160];
    std::snprintf(csv, sizeof(csv), "shootout,%s,%.4f,%.4f,%.4f", row.store.c_str(),
                  row.create.user_sec, row.read.user_sec, row.has_seq ? row.seq.user_sec : -1.0);
    PrintCsv(csv);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
