// Shared plumbing for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (see DESIGN.md §5 for the experiment index).  Conventions:
//   * runs with no arguments and sensible defaults; `--runs=N` overrides
//     the averaging count (the paper averaged five runs);
//   * prints both a human-readable table shaped like the paper's figure
//     and machine-readable CSV lines prefixed with "csv,".

#ifndef HASHKIT_BENCH_BENCH_COMMON_H_
#define HASHKIT_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "src/workload/dictionary.h"
#include "src/workload/passwd.h"
#include "src/workload/timing.h"

namespace hashkit {
namespace bench {

// Key/value records shared by all stores in a comparison.
struct Record {
  std::string key;
  std::string value;
};

std::vector<Record> DictionaryRecords(size_t count = workload::kPaperDictionarySize);
std::vector<Record> PasswdRecords(size_t accounts = workload::kPaperAccountCount);

// Parses --runs=N (default `fallback`).
int RunsFromArgs(int argc, char** argv, int fallback);

// A scratch file path under TMPDIR; removes leftovers (incl. .pag/.dir).
std::string BenchPath(const std::string& tag);
void RemoveBenchFiles(const std::string& path);

// The five timings of the paper's disk suite (Figure 8).
struct SuiteTiming {
  workload::TimingSample create;
  workload::TimingSample read;
  workload::TimingSample verify;
  workload::TimingSample seq;        // keys only (ndbm semantics)
  workload::TimingSample seq_data;   // keys + data
};

// Prints one Figure-8-style block: TEST / user / sys / elapsed rows with
// the paper's improvement percentage (100 * (old-new) / old).
void PrintComparisonRow(const std::string& test, const workload::TimingSample& new_time,
                        const workload::TimingSample& old_time);

void PrintCsvHeader(const std::string& columns);
void PrintCsv(const std::string& row);

}  // namespace bench
}  // namespace hashkit

#endif  // HASHKIT_BENCH_BENCH_COMMON_H_
