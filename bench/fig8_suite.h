// The Figure 8 test suites, shared by fig8a (dictionary) and fig8b
// (password database).
//
// Besides the paper's user/system/elapsed rows we report backend page
// reads and writes: on 1991 hardware the system-time rows were a direct
// proxy for file I/O, while a modern OS page cache hides most of it, so
// the I/O counts are the hardware-independent form of the paper's
// system-time argument (ndbm touches the file on nearly every operation,
// the new package's buffer pool does not).
//
// Disk-based suite (hash vs ndbm; bsize 1024, ffactor 32):
//   CREATE  — enter every pair, flush the file to disk
//   READ    — one lookup per key
//   VERIFY  — one lookup per key, data compared to what was stored
//   SEQ     — retrieve all keys sequentially (ndbm returns keys only)
//   SEQ+DATA— sequential retrieval including data (ndbm needs a second
//             call per key; the new package returns both in one)
//
// In-memory suite (hash vs hsearch; bsize 256, ffactor 8):
//   CREATE/READ — build the table from all pairs, then retrieve each, then
//                 destroy it.  hsearch stores pointers into
//                 application-owned memory; the new package copies pairs
//                 into its own pages (and swaps to temp files when the
//                 pool overflows), exactly the tradeoff the paper
//                 discusses for the memory-resident test.

#ifndef HASHKIT_BENCH_FIG8_SUITE_H_
#define HASHKIT_BENCH_FIG8_SUITE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/hsearch/hsearch.h"
#include "src/baselines/ndbm/ndbm.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace bench {

struct IoCounts {
  uint64_t reads = 0;
  uint64_t writes = 0;
};

inline SuiteTiming RunHashDiskSuite(const std::vector<Record>& records, int runs,
                                    const std::string& tag, IoCounts* io = nullptr) {
  SuiteTiming timing;
  const std::string path = BenchPath(tag);
  HashOptions opts;
  opts.bsize = 1024;
  opts.ffactor = 32;
  opts.cachesize = 1024 * 1024;

  for (int run = 0; run < runs; ++run) {
    RemoveBenchFiles(path);
    std::unique_ptr<HashTable> table;
    timing.create += workload::MeasureOnce([&] {
      table = std::move(HashTable::Open(path, opts, /*truncate=*/true).value());
      for (const auto& r : records) {
        (void)table->Put(r.key, r.value);
      }
      (void)table->Sync();
    });
    std::string value;
    timing.read += workload::MeasureOnce([&] {
      for (const auto& r : records) {
        (void)table->Get(r.key, &value);
      }
    });
    size_t mismatches = 0;
    timing.verify += workload::MeasureOnce([&] {
      for (const auto& r : records) {
        (void)table->Get(r.key, &value);
        if (value != r.value) {
          ++mismatches;
        }
      }
    });
    if (mismatches != 0) {
      std::fprintf(stderr, "VERIFY FAILED: %zu mismatches\n", mismatches);
    }
    // The native interface always returns key and data together, so the
    // same run serves both SEQ rows.
    std::string key;
    timing.seq += workload::MeasureOnce([&] {
      Status st = table->Seq(&key, &value, true);
      while (st.ok()) {
        st = table->Seq(&key, &value, false);
      }
    });
    timing.seq_data = timing.seq;
    if (io != nullptr && run == 0) {
      io->reads = table->file_stats().reads;
      io->writes = table->file_stats().writes;
    }
    RemoveBenchFiles(path);
  }
  const auto d = static_cast<double>(runs);
  return {timing.create / d, timing.read / d, timing.verify / d, timing.seq / d,
          timing.seq_data / d};
}

inline SuiteTiming RunNdbmDiskSuite(const std::vector<Record>& records, int runs,
                                    const std::string& tag, IoCounts* io = nullptr) {
  SuiteTiming timing;
  const std::string path = BenchPath(tag);

  for (int run = 0; run < runs; ++run) {
    RemoveBenchFiles(path);
    std::unique_ptr<baseline::NdbmClone> db;
    timing.create += workload::MeasureOnce([&] {
      db = std::move(baseline::NdbmClone::Open(path, 1024, /*truncate=*/true).value());
      for (const auto& r : records) {
        (void)db->Store(r.key, r.value, /*replace=*/true);
      }
      (void)db->Sync();
    });
    std::string value;
    timing.read += workload::MeasureOnce([&] {
      for (const auto& r : records) {
        (void)db->Fetch(r.key, &value);
      }
    });
    size_t mismatches = 0;
    timing.verify += workload::MeasureOnce([&] {
      for (const auto& r : records) {
        (void)db->Fetch(r.key, &value);
        if (value != r.value) {
          ++mismatches;
        }
      }
    });
    if (mismatches != 0) {
      std::fprintf(stderr, "NDBM VERIFY FAILED: %zu mismatches\n", mismatches);
    }
    std::string key;
    // SEQ: keys only, as ndbm's firstkey/nextkey does not return data.
    timing.seq += workload::MeasureOnce([&] {
      Status st = db->Seq(&key, nullptr, true);
      while (st.ok()) {
        st = db->Seq(&key, nullptr, false);
      }
    });
    // SEQ+DATA: the second call per key the paper describes.
    timing.seq_data += workload::MeasureOnce([&] {
      Status st = db->Seq(&key, nullptr, true);
      while (st.ok()) {
        (void)db->Fetch(key, &value);
        st = db->Seq(&key, nullptr, false);
      }
    });
    if (io != nullptr && run == 0) {
      io->reads = db->file_stats().reads;
      io->writes = db->file_stats().writes;
    }
    RemoveBenchFiles(path);
  }
  const auto d = static_cast<double>(runs);
  return {timing.create / d, timing.read / d, timing.verify / d, timing.seq / d,
          timing.seq_data / d};
}

// In-memory CREATE/READ for the new package.
inline workload::TimingSample RunHashMemorySuite(const std::vector<Record>& records, int runs) {
  workload::TimingSample total;
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = 8;
  opts.cachesize = 1024 * 1024;
  for (int run = 0; run < runs; ++run) {
    total += workload::MeasureOnce([&] {
      auto table = std::move(HashTable::OpenInMemory(opts).value());
      for (const auto& r : records) {
        (void)table->Put(r.key, r.value);
      }
      std::string value;
      for (const auto& r : records) {
        (void)table->Get(r.key, &value);
      }
      // destroyed at scope exit
    });
  }
  return total / static_cast<double>(runs);
}

// In-memory CREATE/READ for System V hsearch.
inline workload::TimingSample RunHsearchSuite(const std::vector<Record>& records, int runs) {
  workload::TimingSample total;
  for (int run = 0; run < runs; ++run) {
    total += workload::MeasureOnce([&] {
      // hcreate(nelem) with the exact final count, the way applications
      // used it: System V rounds to the next prime, so the table runs at
      // ~100% load and the probe chains blow up — the paper's documented
      // hsearch shortcoming ("if this size is set too low, performance
      // degradation ... may result"), and the reason its hsearch numbers
      // are so poor.
      auto table = std::move(baseline::SysvHsearch::Create(records.size()).value());
      // hsearch requires the application to own key and data memory; the
      // records vector plays that role, as the paper's test did.
      for (const auto& r : records) {
        (void)table->Enter(r.key, const_cast<std::string*>(&r.value));
      }
      void* data = nullptr;
      for (const auto& r : records) {
        (void)table->Find(r.key, &data);
      }
    });
  }
  return total / static_cast<double>(runs);
}

inline void RunFig8(const char* title, const std::vector<Record>& records, int runs,
                    const std::string& tag) {
  std::printf("%s\n", title);
  std::printf("%zu records, %d-run averages; columns: hash, old, %%improvement\n\n",
              records.size(), runs);

  std::printf("--- disk-based: hash vs ndbm (bsize 1024, ffactor 32) ---\n");
  IoCounts hash_io;
  IoCounts ndbm_io;
  const SuiteTiming hash_disk = RunHashDiskSuite(records, runs, tag + "_hash", &hash_io);
  const SuiteTiming ndbm = RunNdbmDiskSuite(records, runs, tag + "_ndbm", &ndbm_io);
  PrintComparisonRow("CREATE", hash_disk.create, ndbm.create);
  PrintComparisonRow("READ", hash_disk.read, ndbm.read);
  PrintComparisonRow("VERIFY", hash_disk.verify, ndbm.verify);
  PrintComparisonRow("SEQUENTIAL (keys only for ndbm)", hash_disk.seq, ndbm.seq);
  PrintComparisonRow("SEQUENTIAL (with data retrieval)", hash_disk.seq_data, ndbm.seq_data);
  std::printf("backend page I/O over the whole suite (1991's system time, hardware-free):\n");
  std::printf("  hash: %llu reads, %llu writes   ndbm: %llu reads, %llu writes\n",
              static_cast<unsigned long long>(hash_io.reads),
              static_cast<unsigned long long>(hash_io.writes),
              static_cast<unsigned long long>(ndbm_io.reads),
              static_cast<unsigned long long>(ndbm_io.writes));

  std::printf("\n--- memory-resident: hash vs hsearch (bsize 256, ffactor 8) ---\n");
  const workload::TimingSample hash_mem = RunHashMemorySuite(records, runs);
  const workload::TimingSample hsearch = RunHsearchSuite(records, runs);
  PrintComparisonRow("CREATE/READ", hash_mem, hsearch);

  PrintCsvHeader(tag + ",test,store,user_sec,sys_sec,elapsed_sec");
  const auto csv = [&](const char* test, const char* store,
                       const workload::TimingSample& sample) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s,%s,%s,%.4f,%.4f,%.4f", tag.c_str(), test, store,
                  sample.user_sec, sample.sys_sec, sample.elapsed_sec);
    PrintCsv(line);
  };
  csv("create", "hash", hash_disk.create);
  csv("create", "ndbm", ndbm.create);
  csv("read", "hash", hash_disk.read);
  csv("read", "ndbm", ndbm.read);
  csv("verify", "hash", hash_disk.verify);
  csv("verify", "ndbm", ndbm.verify);
  csv("seq", "hash", hash_disk.seq);
  csv("seq", "ndbm", ndbm.seq);
  csv("seq_data", "hash", hash_disk.seq_data);
  csv("seq_data", "ndbm", ndbm.seq_data);
  csv("create_read_mem", "hash", hash_mem);
  csv("create_read_mem", "hsearch", hsearch);
}

}  // namespace bench
}  // namespace hashkit

#endif  // HASHKIT_BENCH_FIG8_SUITE_H_
