// hashkit-cache: bundled memcached text-protocol load driver — the
// fallback for boxes without memtier_benchmark.  Speaks exactly the ASCII
// subset the shim serves (set/get with flags, noreply off), counts every
// reply byte-for-byte, and exits nonzero on ANY protocol error, so CI can
// assert "a stock memcached client completes get/set against
// --memcached-port with zero protocol errors" without external tools.
//
// Two modes:
//   * --port=N: drive an already-running server's memcached listener
//     (e.g. `hashkit_server --ttl --memcached-port 11211`).
//   * no --port: self-serve — spin an in-process Server (memory store,
//     TTL on) and drive its listener over loopback, so the driver also
//     works as a standalone smoke test.
//
// Flags: --keys=N (default 2000), --ops=N (default 20000), --theta=Z
// (Zipf skew, default 0.99), --ratio=R (get fraction, default 0.9),
// --quick (small defaults for CI).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/server.h"
#include "src/util/random.h"

namespace hashkit {
namespace bench {
namespace {

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

double FlagDouble(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

// A blocking text-protocol connection with a recv timeout.
class McConn {
 public:
  bool Connect(const char* host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return false;
    }
    timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host, &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~McConn() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      if (n <= 0) {
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until the buffer ends with `terminator`; empty on EOF/timeout.
  std::string ReadUntil(const std::string& terminator) {
    std::string reply;
    char buf[8192];
    while (reply.size() < terminator.size() ||
           reply.compare(reply.size() - terminator.size(), terminator.size(),
                         terminator) != 0) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        return std::string();
      }
      reply.append(buf, static_cast<size_t>(n));
    }
    return reply;
  }

 private:
  int fd_ = -1;
};

int Main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "quick");
  const uint64_t keys = FlagU64(argc, argv, "keys", quick ? 200 : 2000);
  const uint64_t ops = FlagU64(argc, argv, "ops", quick ? 2000 : 20'000);
  const double theta = FlagDouble(argc, argv, "theta", 0.99);
  const double get_ratio = FlagDouble(argc, argv, "ratio", 0.9);
  uint16_t port = static_cast<uint16_t>(FlagU64(argc, argv, "port", 0));

  // Self-serve when no --port was given.
  std::unique_ptr<kv::KvStore> store;
  std::unique_ptr<net::Server> server;
  if (port == 0) {
    kv::StoreOptions store_options;
    store_options.ttl = true;
    auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open store: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    store = kv::MakeSynchronized(std::move(opened).value());
    net::ServerOptions server_options;
    server_options.port = 0;
    server_options.memcached_port = 0;
    const auto started = [&] {
      server = std::make_unique<net::Server>(store.get(), server_options);
      return server->Start();
    }();
    if (!started.ok()) {
      std::fprintf(stderr, "start server: %s\n", started.ToString().c_str());
      return 1;
    }
    port = server->memcached_port();
    std::printf("self-serving on 127.0.0.1:%u\n", port);
  }

  McConn conn;
  if (!conn.Connect("127.0.0.1", port)) {
    std::fprintf(stderr, "cannot connect to 127.0.0.1:%u\n", port);
    return 1;
  }

  const auto key_of = [](uint64_t i) { return "memkey-" + std::to_string(i); };
  const auto value_of = [](uint64_t i) {
    return "value-" + std::to_string(i) + "-" + std::string(16 + i % 48, 'x');
  };

  uint64_t sets = 0, gets = 0, hits = 0, misses = 0, protocol_errors = 0;

  // Preload every key once, then run the skewed mixed phase.
  for (uint64_t i = 0; i < keys; ++i) {
    const std::string value = value_of(i);
    const std::string cmd = "set " + key_of(i) + " 0 0 " + std::to_string(value.size()) +
                            "\r\n" + value + "\r\n";
    if (!conn.Send(cmd) || conn.ReadUntil("\r\n") != "STORED\r\n") {
      ++protocol_errors;
    }
    ++sets;
  }

  Rng rng(0xcafe);
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t k = theta > 0 ? rng.Zipf(keys, theta) : rng.Next() % keys;
    if (rng.NextDouble() < get_ratio) {
      const std::string key = key_of(k);
      if (!conn.Send("get " + key + "\r\n")) {
        ++protocol_errors;
        break;
      }
      const std::string reply = conn.ReadUntil("END\r\n");
      ++gets;
      if (reply == "END\r\n") {
        ++misses;
      } else if (reply.rfind("VALUE " + key + " 0 ", 0) == 0) {
        ++hits;
      } else {
        ++protocol_errors;
      }
    } else {
      const std::string value = value_of(k);
      const std::string cmd = "set " + key_of(k) + " 0 0 " +
                              std::to_string(value.size()) + "\r\n" + value + "\r\n";
      ++sets;
      if (!conn.Send(cmd) || conn.ReadUntil("\r\n") != "STORED\r\n") {
        ++protocol_errors;
      }
    }
  }

  if (server != nullptr) {
    server->Stop();
  }

  const double hit_rate = gets > 0 ? static_cast<double>(hits) / static_cast<double>(gets)
                                   : 0.0;
  std::printf("sets=%llu gets=%llu hits=%llu misses=%llu hit_rate=%.3f "
              "protocol_errors=%llu\n",
              static_cast<unsigned long long>(sets), static_cast<unsigned long long>(gets),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), hit_rate,
              static_cast<unsigned long long>(protocol_errors));
  return protocol_errors == 0 ? 0 : 2;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
