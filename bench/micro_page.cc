// Ablation A4: on-page layout microbenchmarks — pair insertion, lookup
// scanning, and deletion compaction, across page sizes.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/core/page.h"
#include "src/util/random.h"

namespace hashkit {
namespace {

void BM_PageAddPair(benchmark::State& state) {
  const auto page_size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(page_size);
  const std::string key = "benchmark-key";
  const std::string value = "benchmark-value-bytes";
  for (auto _ : state) {
    PageView::Init(buf.data(), page_size, PageType::kBucket);
    PageView view(buf.data(), page_size);
    while (view.FitsPair(key.size(), value.size())) {
      view.AddPair(key, value);
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>((page_size - 8) / (4 + key.size() + value.size())));
}
BENCHMARK(BM_PageAddPair)->Arg(256)->Arg(1024)->Arg(8192);

void BM_PageScanEntries(benchmark::State& state) {
  const auto page_size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(page_size);
  PageView::Init(buf.data(), page_size, PageType::kBucket);
  PageView view(buf.data(), page_size);
  Rng rng(1);
  while (view.FitsPair(12, 8)) {
    view.AddPair(rng.AsciiString(12), rng.AsciiString(8));
  }
  const uint16_t n = view.nentries();
  for (auto _ : state) {
    size_t total = 0;
    for (uint16_t i = 0; i < n; ++i) {
      total += view.Entry(i).key.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PageScanEntries)->Arg(256)->Arg(1024)->Arg(8192);

void BM_PageRemoveCompaction(benchmark::State& state) {
  const auto page_size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buf(page_size);
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    PageView::Init(buf.data(), page_size, PageType::kBucket);
    PageView view(buf.data(), page_size);
    while (view.FitsPair(12, 8)) {
      view.AddPair(rng.AsciiString(12), rng.AsciiString(8));
    }
    state.ResumeTiming();
    while (view.nentries() > 0) {
      view.RemoveEntry(0);  // worst case: compacts everything behind it
    }
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_PageRemoveCompaction)->Arg(256)->Arg(1024);

void BM_PageBigStub(benchmark::State& state) {
  std::vector<uint8_t> buf(256);
  const std::string prefix(32, 'p');
  for (auto _ : state) {
    PageView::Init(buf.data(), buf.size(), PageType::kBucket);
    PageView view(buf.data(), buf.size());
    view.AddBigStub(0x0802, 0xabcdef01, 100000, 200000, prefix);
    benchmark::DoNotOptimize(view.Entry(0).hash);
  }
}
BENCHMARK(BM_PageBigStub);

}  // namespace
}  // namespace hashkit

BENCHMARK_MAIN();
