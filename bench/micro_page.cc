// Ablation A4: on-page layout microbenchmarks — pair insertion, lookup
// scanning, probe filtering, and deletion compaction, across page sizes
// and on-page formats (v1 plain slotted vs v2 fingerprint-tagged).
//
// Besides the google-benchmark timers, `--sweep_only` (or running to
// completion) executes a table-level GET sweep over format {1,2} ×
// hit ratio {100,50,0}% × fill factor {8,64} × threads {1,2} on an
// in-memory table, and writes one JSON record per cell to
// BENCH_page.json, including the table's tag-filter counters and the
// compiled tag-scan implementation (sse2/neon/swar8).  The miss-heavy
// and high-ffactor (long overflow chain) cells are where the v2 tag
// array should pay off: most keys on a page are rejected by a byte
// compare instead of a full key memcmp.
//
// Flags: --sweep_only       skip the google-benchmark suite
//        --ops=N            GET operations per sweep cell (default 200000)
//        --keys=N           resident keys per table (default 20000)
//        --max_threads=N    cap on the thread sweep (default 2)

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/hash_table.h"
#include "src/core/page.h"
#include "src/util/random.h"

namespace hashkit {
namespace {

// ---------------------------------------------------------------------------
// Page-level microbenchmarks.  range(0) = page size, range(1) = format.

void BM_PageAddPair(benchmark::State& state) {
  const auto page_size = static_cast<size_t>(state.range(0));
  const auto format = static_cast<uint32_t>(state.range(1));
  std::vector<uint8_t> buf(page_size);
  const std::string key = "benchmark-key";
  const std::string value = "benchmark-value-bytes";
  for (auto _ : state) {
    PageView::Init(buf.data(), page_size, PageType::kBucket);
    PageView view(buf.data(), page_size, format);
    uint8_t tag = 0;
    while (view.FitsPair(key.size(), value.size())) {
      view.AddPair(key, value, ++tag);
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>((page_size - 8) / (4 + key.size() + value.size())));
}
BENCHMARK(BM_PageAddPair)
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Args({8192, 1})
    ->Args({256, 2})
    ->Args({1024, 2})
    ->Args({8192, 2});

void BM_PageScanEntries(benchmark::State& state) {
  const auto page_size = static_cast<size_t>(state.range(0));
  const auto format = static_cast<uint32_t>(state.range(1));
  std::vector<uint8_t> buf(page_size);
  PageView::Init(buf.data(), page_size, PageType::kBucket);
  PageView view(buf.data(), page_size, format);
  Rng rng(1);
  while (view.FitsPair(12, 8)) {
    view.AddPair(rng.AsciiString(12), rng.AsciiString(8),
                 static_cast<uint8_t>(rng.Uniform(256)));
  }
  const uint16_t n = view.nentries();
  for (auto _ : state) {
    size_t total = 0;
    for (uint16_t i = 0; i < n; ++i) {
      total += view.Entry(i).key.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PageScanEntries)
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Args({8192, 1})
    ->Args({256, 2})
    ->Args({1024, 2})
    ->Args({8192, 2});

// The v2 payoff in isolation: find the (single) entry carrying a probe tag
// on a full page.  v1 has no tags, so every probe walks all n entries and
// compares keys; v2 narrows to the tag matches first.
void BM_PageProbe(benchmark::State& state) {
  const auto page_size = static_cast<size_t>(state.range(0));
  const auto format = static_cast<uint32_t>(state.range(1));
  std::vector<uint8_t> buf(page_size);
  PageView::Init(buf.data(), page_size, PageType::kBucket);
  PageView view(buf.data(), page_size, format);
  Rng rng(7);
  std::vector<std::string> keys;
  // Spread tags 1..n over entries; probe for the last-inserted key, whose
  // entry sits at the end of the index, i.e. a worst-case linear scan.
  uint8_t tag = 0;
  while (view.FitsPair(12, 8)) {
    keys.push_back(rng.AsciiString(12));
    view.AddPair(keys.back(), rng.AsciiString(8), ++tag);
  }
  const std::string needle = keys.back();
  const uint8_t needle_tag = tag;
  size_t hits = 0;
  for (auto _ : state) {
    TagCandidates scan = format >= kPageFormatV2 ? view.FindCandidates(needle_tag)
                                                 : TagCandidates(view.nentries());
    for (uint16_t i = scan.Next(); i != kNoEntry; i = scan.Next()) {
      const EntryRef entry = view.Entry(i);
      if (entry.key.size() == needle.size() &&
          std::memcmp(entry.key.data(), needle.data(), needle.size()) == 0) {
        ++hits;
        break;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(format >= kPageFormatV2 ? TagCandidates::ImplName() : "linear");
}
BENCHMARK(BM_PageProbe)
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Args({8192, 1})
    ->Args({256, 2})
    ->Args({1024, 2})
    ->Args({8192, 2});

void BM_PageRemoveCompaction(benchmark::State& state) {
  const auto page_size = static_cast<size_t>(state.range(0));
  const auto format = static_cast<uint32_t>(state.range(1));
  std::vector<uint8_t> buf(page_size);
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    PageView::Init(buf.data(), page_size, PageType::kBucket);
    PageView view(buf.data(), page_size, format);
    while (view.FitsPair(12, 8)) {
      view.AddPair(rng.AsciiString(12), rng.AsciiString(8),
                   static_cast<uint8_t>(rng.Uniform(256)));
    }
    state.ResumeTiming();
    while (view.nentries() > 0) {
      view.RemoveEntry(0);  // worst case: compacts everything behind it
    }
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_PageRemoveCompaction)->Args({256, 1})->Args({1024, 1})->Args({256, 2})->Args({1024, 2});

void BM_PageBigStub(benchmark::State& state) {
  std::vector<uint8_t> buf(256);
  const std::string prefix(32, 'p');
  for (auto _ : state) {
    PageView::Init(buf.data(), buf.size(), PageType::kBucket);
    PageView view(buf.data(), buf.size());
    view.AddBigStub(0x0802, 0xabcdef01, 100000, 200000, prefix);
    benchmark::DoNotOptimize(view.Entry(0).hash);
  }
}
BENCHMARK(BM_PageBigStub);

// ---------------------------------------------------------------------------
// Table-level GET sweep: where the tag filter, SWAR probe, and prefetch
// actually meet the buffer pool.

struct SweepCell {
  uint32_t format;
  int threads;
  uint32_t ffactor;
  int hit_pct;
  size_t ops;
  double elapsed_sec;
  double ops_per_sec;
  uint64_t tag_filter_skips;
  uint64_t tag_filter_candidates;
  uint64_t tag_filter_false_hits;
};

long FlagFromArgs(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

std::string SweepKey(size_t i) { return "sweep-key-" + std::to_string(i); }

SweepCell RunSweepCell(uint32_t format, int nthreads, uint32_t ffactor, int hit_pct,
                       size_t nkeys, size_t total_ops) {
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = ffactor;
  // High ffactor only yields long overflow chains under controlled-only
  // splits; hybrid would split on page overflow and flatten the chains.
  opts.split_policy =
      ffactor > 8 ? SplitPolicy::kControlledOnly : SplitPolicy::kHybrid;
  opts.cachesize = 32 * 1024 * 1024;  // everything resident: isolate CPU cost
  opts.format_version = format;
  auto table = std::move(HashTable::OpenInMemory(opts).value());

  Rng load_rng(11);
  for (size_t i = 0; i < nkeys; ++i) {
    const Status st = table->Put(SweepKey(i), load_rng.ByteString(24));
    if (!st.ok()) {
      std::fprintf(stderr, "sweep load failed: %s\n", st.ToString().c_str());
      return {};
    }
  }
  const HashTableStats warm = table->StatsSnapshot();

  std::atomic<bool> go{false};
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    const size_t begin = total_ops * t / nthreads;
    const size_t end = total_ops * (t + 1) / nthreads;
    threads.emplace_back([&, t, begin, end] {
      Rng rng(0x9e3779b9u + static_cast<uint64_t>(t));
      uint64_t local = 0;
      std::string value;
      while (!go.load(std::memory_order_acquire)) {
      }
      for (size_t i = begin; i < end; ++i) {
        // Misses probe keys past the resident range: same buckets, no match.
        const bool hit = static_cast<int>(rng.Uniform(100)) < hit_pct;
        const size_t k = hit ? rng.Uniform(nkeys) : nkeys + rng.Uniform(nkeys);
        const Status st = table->Get(SweepKey(k), &value);
        local += st.ok() ? value.size() : 1;
      }
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const HashTableStats stats = table->StatsSnapshot();
  return {format,
          nthreads,
          ffactor,
          hit_pct,
          total_ops,
          elapsed,
          elapsed > 0 ? static_cast<double>(total_ops) / elapsed : 0.0,
          stats.tag_filter_skips - warm.tag_filter_skips,
          stats.tag_filter_candidates - warm.tag_filter_candidates,
          stats.tag_filter_false_hits - warm.tag_filter_false_hits};
}

void WriteSweepJson(const std::vector<SweepCell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    std::fprintf(f,
                 "  {\"format\": %u, \"threads\": %d, \"ffactor\": %u, \"hit_pct\": %d, "
                 "\"ops\": %zu, \"elapsed_sec\": %.6f, \"ops_per_sec\": %.0f, "
                 "\"tag_filter_skips\": %llu, \"tag_filter_candidates\": %llu, "
                 "\"tag_filter_false_hits\": %llu, \"tag_scan\": \"%s\"}%s\n",
                 c.format, c.threads, c.ffactor, c.hit_pct, c.ops, c.elapsed_sec, c.ops_per_sec,
                 static_cast<unsigned long long>(c.tag_filter_skips),
                 static_cast<unsigned long long>(c.tag_filter_candidates),
                 static_cast<unsigned long long>(c.tag_filter_false_hits),
                 TagCandidates::ImplName(), i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu cells to %s\n", cells.size(), path);
}

int RunSweep(size_t ops, size_t nkeys, int max_threads) {
  std::printf("\nTable GET sweep: bsize 256, %zu keys, %zu ops/cell, tag scan impl: %s\n",
              nkeys, ops, TagCandidates::ImplName());
  std::printf("%6s %7s %8s %7s %14s %16s %12s\n", "format", "threads", "ffactor", "hit%",
              "ops/sec", "tag_skips", "false_hits");

  const uint32_t formats[] = {1, 2};
  const uint32_t ffactors[] = {8, 64};
  const int hit_targets[] = {100, 50, 0};
  const int thread_counts[] = {1, 2};

  std::vector<SweepCell> cells;
  for (const uint32_t format : formats) {
    for (const uint32_t ffactor : ffactors) {
      for (const int hit_pct : hit_targets) {
        for (const int threads : thread_counts) {
          if (threads > max_threads) {
            continue;
          }
          const SweepCell cell = RunSweepCell(format, threads, ffactor, hit_pct, nkeys, ops);
          std::printf("%6u %7d %8u %7d %14.0f %16llu %12llu\n", cell.format, cell.threads,
                      cell.ffactor, cell.hit_pct, cell.ops_per_sec,
                      static_cast<unsigned long long>(cell.tag_filter_skips),
                      static_cast<unsigned long long>(cell.tag_filter_false_hits));
          cells.push_back(cell);
        }
      }
    }
  }

  // Headline: single-threaded v2-over-v1 on the chain-heavy miss cell, the
  // workload the tag array exists for.
  double v1 = 0.0, v2 = 0.0;
  for (const SweepCell& c : cells) {
    if (c.threads == 1 && c.ffactor == 64 && c.hit_pct == 0) {
      (c.format == 1 ? v1 : v2) = c.ops_per_sec;
    }
  }
  if (v1 > 0 && v2 > 0) {
    std::printf("miss-heavy long-chain cell (ffactor 64, 1 thread): v2 is %.2fx v1\n", v2 / v1);
  }

  WriteSweepJson(cells, "BENCH_page.json");
  return 0;
}

}  // namespace
}  // namespace hashkit

int main(int argc, char** argv) {
  const auto ops = static_cast<size_t>(hashkit::FlagFromArgs(argc, argv, "ops", 200000));
  const auto nkeys = static_cast<size_t>(hashkit::FlagFromArgs(argc, argv, "keys", 20000));
  const int max_threads =
      static_cast<int>(hashkit::FlagFromArgs(argc, argv, "max_threads", 2));
  const bool sweep_only = hashkit::HasFlag(argc, argv, "sweep_only");

  if (!sweep_only) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
  }
  return hashkit::RunSweep(ops, nkeys, max_threads);
}
