// Ablation A2 (quality half): collision behaviour of the hash-function
// suite on the paper's dictionary keys.
//
// The paper: "The default function for the package is the one which
// offered the best performance in terms of cycles executed per call (it
// did not produce the fewest collisions although it was within a small
// percentage of the function that produced the fewest collisions)."
// This bench reproduces that comparison: 32-bit collisions and
// bucket-level clustering per function, on dictionary and sequential
// keys.  (Cycles per call are measured by micro_hash_funcs, the
// google-benchmark half.)

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/hash_funcs.h"

namespace hashkit {
namespace bench {
namespace {

struct Quality {
  size_t collisions32;   // pairs sharing a full 32-bit value
  double max_over_mean;  // worst bucket load vs mean, 1024 buckets
};

Quality Measure(HashFn fn, const std::vector<Record>& records) {
  std::set<uint32_t> seen;
  std::vector<size_t> buckets(1024, 0);
  size_t collisions = 0;
  for (const auto& r : records) {
    const uint32_t h = fn(r.key.data(), r.key.size());
    if (!seen.insert(h).second) {
      ++collisions;
    }
    ++buckets[h & 1023];
  }
  size_t max_load = 0;
  for (const size_t load : buckets) {
    max_load = std::max(max_load, load);
  }
  const double mean = static_cast<double>(records.size()) / 1024.0;
  return {collisions, static_cast<double>(max_load) / mean};
}

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const auto dict = DictionaryRecords();
  std::vector<Record> sequential(dict.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    sequential[i].key = "key" + std::to_string(i);
  }

  std::printf("Ablation A2: hash function quality (%zu dictionary keys / sequential keys)\n\n",
              dict.size());
  PrintCsvHeader(
      "ablation_hashq,function,dict_collisions,dict_skew,seq_collisions,seq_skew");
  std::printf("%-12s %16s %10s %16s %10s\n", "function", "dict col(32b)", "dict skew",
              "seq col(32b)", "seq skew");

  for (const HashFuncId id : kAllHashFuncIds) {
    const HashFn fn = GetHashFunc(id);
    const Quality on_dict = Measure(fn, dict);
    const Quality on_seq = Measure(fn, sequential);
    std::printf("%-12s %16zu %10.2f %16zu %10.2f\n", std::string(HashFuncName(id)).c_str(),
                on_dict.collisions32, on_dict.max_over_mean, on_seq.collisions32,
                on_seq.max_over_mean);
    char csv[160];
    std::snprintf(csv, sizeof(csv), "ablation_hashq,%s,%zu,%.3f,%zu,%.3f",
                  std::string(HashFuncName(id)).c_str(), on_dict.collisions32,
                  on_dict.max_over_mean, on_seq.collisions32, on_seq.max_over_mean);
    PrintCsv(csv);
  }
  std::printf("\n(skew = most-loaded bucket / mean over 1024 low-bit buckets; identity4 is\n"
              "the deliberately bad user-supplied function the package guards against.)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
