// Figure 8b: timing results for the password database (~300 accounts, two
// records per account: login -> entry remainder, uid -> whole entry).
//
// The paper notes this database is small enough that most rows measure
// near zero; the create test is dominated by flushing the file, where the
// new package still wins on user and system time.

#include "bench/fig8_suite.h"

int main(int argc, char** argv) {
  const int runs = hashkit::bench::RunsFromArgs(argc, argv, 5);
  const auto records = hashkit::bench::PasswdRecords();
  hashkit::bench::RunFig8("Figure 8b: password database", records, runs, "fig8b");
  return 0;
}
