// Loopback throughput sweep for hashkit-net.
//
// Serves a sharded in-memory store from an in-process epoll server and
// sweeps client threads x pipeline depth over 127.0.0.1, mixing 80% GET /
// 20% PUT per batch.  Pipeline depth 1 shows the raw round-trip cost;
// deeper pipelines amortize it — the sweep quantifies how much of the
// in-process throughput (bench/concurrent_throughput) survives the wire.
// Results land in BENCH_net.json with a schema-stable row per cell:
//   {threads, pipeline_depth, ops, elapsed_sec, requests_per_sec,
//    mean_us, p50_us, p90_us, p99_us, p999_us}
// The *_us fields are client-observed batch round-trip percentiles (one
// sample per Pipeline call), merged across the cell's client threads.
//
// Flags: --ops=N per-cell request target (default 40000),
//        --max_threads=N cap on the thread sweep (default 8),
//        --workers=N server worker loops (default 2),
//        --shards=N store shards (default 8),
//        --cluster-nodes=N run the sweep against an N-node in-process
//        LH* cluster instead (clients route via ClusterClient; results go
//        to BENCH_cluster.json and quantify the distributed addressing
//        overhead against the single-node numbers),
//        --overload=MULT run the admission-control sweep instead: calibrate
//        the saturated rate closed-loop, then offer {1, 2, 5, MULT}x that
//        rate from paced clients against a server with a deliberately small
//        per-core inflight bound (--max-inflight, default 32) and shed
//        policy.  Rows {mult, offered_rps, achieved_rps, ok_rps, shed_rate,
//        p50_us, p99_us, batches, batched_ops} land in BENCH_server.json;
//        the batch counters are the server-side deltas for the cell, so a
//        mean batch size > 1 is visible directly as batched_ops / batches.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/cluster_client.h"
#include "src/cluster/migration.h"
#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/util/histogram.h"
#include "src/workload/timing.h"

namespace hashkit {
namespace bench {
namespace {

struct Cell {
  int threads;
  int depth;
  size_t ops;
  double elapsed_sec;
  double requests_per_sec;
  PercentileSummary rtt;  // batch round-trip, ns (printed/serialized in us)
};

long FlagFromArgs(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

// Each client thread drives `ops` requests in batches of `depth`: 80% GET,
// 20% PUT, keys cycling through a preloaded space.  Every Pipeline call's
// round trip lands in `*rtt` (single-threaded: one snapshot per thread,
// merged by the caller after join).
void RunClient(uint16_t port, int thread_id, size_t ops, int depth, size_t keyspace,
               std::atomic<uint64_t>* errors, HistogramSnapshot* rtt) {
  auto connected = net::Client::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    errors->fetch_add(ops);
    return;
  }
  auto client = std::move(connected).value();
  std::vector<net::Request> batch;
  std::vector<net::Response> responses;
  size_t sent = 0;
  uint64_t cursor = static_cast<uint64_t>(thread_id) * 7919;
  while (sent < ops) {
    batch.clear();
    while (batch.size() < static_cast<size_t>(depth) && sent + batch.size() < ops) {
      net::Request req;
      const uint64_t k = cursor++ % keyspace;
      if (cursor % 5 == 0) {
        req.op = net::Opcode::kPut;
        req.key = "key" + std::to_string(k);
        req.value = "updated" + std::to_string(cursor);
      } else {
        req.op = net::Opcode::kGet;
        req.key = "key" + std::to_string(k);
      }
      batch.push_back(std::move(req));
    }
    const uint64_t t0 = MonotonicNanos();
    if (!client->Pipeline(batch, &responses).ok()) {
      errors->fetch_add(ops - sent);
      return;
    }
    rtt->Record(MonotonicNanos() - t0);
    for (const net::Response& resp : responses) {
      if (resp.status != StatusCode::kOk && resp.status != StatusCode::kNotFound) {
        errors->fetch_add(1);
      }
    }
    sent += batch.size();
  }
}

// Cluster-mode client thread: same 80/20 mix, but each batch goes through
// ClusterClient::Pipeline, which groups requests by owning node and pays
// any MOVED corrections inline — the realistic distributed client cost.
void RunClusterClient(const std::string& seed, int thread_id, size_t ops, int depth,
                      size_t keyspace, std::atomic<uint64_t>* errors,
                      std::atomic<uint64_t>* moved, HistogramSnapshot* rtt) {
  auto connected = cluster::ClusterClient::Connect({seed});
  if (!connected.ok()) {
    errors->fetch_add(ops);
    return;
  }
  auto client = std::move(connected).value();
  std::vector<net::Request> batch;
  std::vector<net::Response> responses;
  size_t sent = 0;
  uint64_t cursor = static_cast<uint64_t>(thread_id) * 7919;
  while (sent < ops) {
    batch.clear();
    while (batch.size() < static_cast<size_t>(depth) && sent + batch.size() < ops) {
      net::Request req;
      const uint64_t k = cursor++ % keyspace;
      if (cursor % 5 == 0) {
        req.op = net::Opcode::kPut;
        req.key = "key" + std::to_string(k);
        req.value = "updated" + std::to_string(cursor);
      } else {
        req.op = net::Opcode::kGet;
        req.key = "key" + std::to_string(k);
      }
      batch.push_back(std::move(req));
    }
    const uint64_t t0 = MonotonicNanos();
    if (!client->Pipeline(batch, &responses).ok()) {
      errors->fetch_add(ops - sent);
      return;
    }
    rtt->Record(MonotonicNanos() - t0);
    for (const net::Response& resp : responses) {
      if (resp.status != StatusCode::kOk && resp.status != StatusCode::kNotFound) {
        errors->fetch_add(1);
      }
    }
    sent += batch.size();
  }
  moved->fetch_add(client->stats().moved_corrections);
}

int ClusterMain(size_t ops, int max_threads, int workers, int nodes_count) {
  constexpr size_t kKeyspace = 10000;
  struct Node {
    std::unique_ptr<kv::KvStore> store;
    std::unique_ptr<cluster::ClusterNode> cnode;
    std::unique_ptr<net::Server> server;
  };
  std::vector<Node> nodes(static_cast<size_t>(nodes_count));
  std::vector<cluster::NodeInfo> peers;
  for (size_t i = 0; i < nodes.size(); ++i) {
    kv::StoreOptions store_options;
    store_options.nelem = kKeyspace * 2;
    auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "store open failed: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    nodes[i].store = kv::MakeSynchronized(std::move(opened).value());
    cluster::ClusterNodeOptions cluster_options;
    cluster_options.node_id = static_cast<uint32_t>(i);
    nodes[i].cnode =
        std::make_unique<cluster::ClusterNode>(nodes[i].store.get(), cluster_options);
    net::ServerOptions server_options;
    server_options.port = 0;
    server_options.workers = workers;
    server_options.cluster = nodes[i].cnode.get();
    nodes[i].server = std::make_unique<net::Server>(nodes[i].store.get(), server_options);
    if (const Status st = nodes[i].server->Start(); !st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    cluster::NodeInfo info;
    info.id = static_cast<uint32_t>(i);
    info.host = "127.0.0.1";
    info.port = nodes[i].server->port();
    peers.push_back(std::move(info));
  }
  for (Node& node : nodes) {
    if (const Status st = node.cnode->Start(peers); !st.ok()) {
      std::fprintf(stderr, "cluster start failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const std::string seed = peers[0].host + ":" + std::to_string(peers[0].port);
  {
    auto connected = cluster::ClusterClient::Connect({seed});
    if (!connected.ok()) {
      std::fprintf(stderr, "preload failed: %s\n", connected.status().ToString().c_str());
      return 1;
    }
    for (size_t k = 0; k < kKeyspace; ++k) {
      (void)(*connected)->Put("key" + std::to_string(k), "initial" + std::to_string(k));
    }
  }

  std::printf("Cluster throughput sweep: %d LH* nodes on loopback, %zu requests/cell,\n"
              "80/20 get/put, %d workers/node; hardware threads: %u\n\n",
              nodes_count, ops, workers, std::thread::hardware_concurrency());

  const int thread_counts[] = {1, 2, 4, 8};
  const int depths[] = {1, 8, 32};
  std::vector<Cell> cells;
  PrintCsvHeader("cluster,threads,pipeline_depth,requests_per_sec");
  std::printf("%8s %8s %8s %16s %10s %10s %8s\n", "threads", "depth", "ops", "requests/sec",
              "rtt_p50_us", "rtt_p99_us", "moved");
  for (const int nthreads : thread_counts) {
    if (nthreads > max_threads) {
      continue;
    }
    for (const int depth : depths) {
      const size_t per_thread = ops / static_cast<size_t>(nthreads);
      const size_t total = per_thread * static_cast<size_t>(nthreads);
      std::atomic<uint64_t> errors{0};
      std::atomic<uint64_t> moved{0};
      std::vector<std::thread> threads;
      std::vector<HistogramSnapshot> rtts(static_cast<size_t>(nthreads));
      double elapsed = 0.0;
      {
        const auto sample = workload::MeasureOnce([&] {
          for (int t = 0; t < nthreads; ++t) {
            threads.emplace_back(RunClusterClient, seed, t, per_thread, depth, kKeyspace,
                                 &errors, &moved, &rtts[static_cast<size_t>(t)]);
          }
          for (auto& thread : threads) {
            thread.join();
          }
        });
        elapsed = sample.elapsed_sec;
      }
      if (errors.load() > 0) {
        std::fprintf(stderr, "cell t=%d d=%d: %llu errors\n", nthreads, depth,
                     static_cast<unsigned long long>(errors.load()));
      }
      HistogramSnapshot rtt;
      for (const HistogramSnapshot& h : rtts) {
        rtt.MergeFrom(h);
      }
      const PercentileSummary rtt_summary = Summarize(rtt);
      const double rps = elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0;
      std::printf("%8d %8d %8zu %16.0f %10.1f %10.1f %8llu\n", nthreads, depth, total, rps,
                  static_cast<double>(rtt_summary.p50) / 1000.0,
                  static_cast<double>(rtt_summary.p99) / 1000.0,
                  static_cast<unsigned long long>(moved.load()));
      char csv[120];
      std::snprintf(csv, sizeof(csv), "cluster,%d,%d,%.0f", nthreads, depth, rps);
      PrintCsv(csv);
      cells.push_back({nthreads, depth, total, elapsed, rps, rtt_summary});
    }
  }
  for (Node& node : nodes) {
    node.cnode->Stop();
    node.server->Stop();
  }

  std::FILE* f = std::fopen("BENCH_cluster.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cluster.json\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "  {\"nodes\": %d, \"threads\": %d, \"pipeline_depth\": %d, \"ops\": %zu, "
                 "\"elapsed_sec\": %.6f, \"requests_per_sec\": %.0f, "
                 "\"mean_us\": %.1f, \"p50_us\": %.1f, \"p90_us\": %.1f, "
                 "\"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
                 nodes_count, c.threads, c.depth, c.ops, c.elapsed_sec, c.requests_per_sec,
                 c.rtt.mean / 1000.0, static_cast<double>(c.rtt.p50) / 1000.0,
                 static_cast<double>(c.rtt.p90) / 1000.0,
                 static_cast<double>(c.rtt.p99) / 1000.0,
                 static_cast<double>(c.rtt.p999) / 1000.0,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu cells to BENCH_cluster.json\n", cells.size());
  return 0;
}

// Paced client for the overload sweep: sends `nbatches` pipelines of
// `depth`, each released no earlier than its slot on a fixed cadence
// (thread-local open-loop schedule).  Latency samples are batch round
// trips from the actual send; the offered-vs-achieved gap in the row
// captures any pacing shortfall separately, so a client that cannot
// physically offer the rate shows up as achieved < offered rather than
// as a fake latency explosion.  kOverloaded responses count as `shed`,
// not errors — they are the admission controller doing its job.
void RunPacedClient(uint16_t port, int thread_id, size_t nbatches, int depth,
                    double batch_interval_ns, size_t keyspace,
                    std::atomic<uint64_t>* ok, std::atomic<uint64_t>* shed,
                    std::atomic<uint64_t>* errors, HistogramSnapshot* rtt) {
  auto connected = net::Client::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    errors->fetch_add(nbatches * static_cast<size_t>(depth));
    return;
  }
  auto client = std::move(connected).value();
  std::vector<net::Request> batch;
  std::vector<net::Response> responses;
  uint64_t cursor = static_cast<uint64_t>(thread_id) * 7919;
  const uint64_t t0 = MonotonicNanos();
  for (size_t b = 0; b < nbatches; ++b) {
    const uint64_t scheduled =
        t0 + static_cast<uint64_t>(static_cast<double>(b) * batch_interval_ns);
    while (MonotonicNanos() < scheduled) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    batch.clear();
    for (int i = 0; i < depth; ++i) {
      net::Request req;
      const uint64_t k = cursor++ % keyspace;
      if (cursor % 5 == 0) {
        req.op = net::Opcode::kPut;
        req.key = "key" + std::to_string(k);
        req.value = "updated" + std::to_string(cursor);
      } else {
        req.op = net::Opcode::kGet;
        req.key = "key" + std::to_string(k);
      }
      batch.push_back(std::move(req));
    }
    const uint64_t sent = MonotonicNanos();
    if (!client->Pipeline(batch, &responses).ok()) {
      errors->fetch_add((nbatches - b) * static_cast<size_t>(depth));
      return;
    }
    rtt->Record(MonotonicNanos() - sent);
    for (const net::Response& resp : responses) {
      if (resp.status == StatusCode::kOk || resp.status == StatusCode::kNotFound) {
        ok->fetch_add(1);
      } else if (resp.status == StatusCode::kOverloaded) {
        shed->fetch_add(1);
      } else {
        errors->fetch_add(1);
      }
    }
  }
}

// Admission-control sweep (--overload=MULT): one server with a small
// per-core inflight bound and shed policy; calibrate the saturated rate
// closed-loop at a depth shallow enough not to trip the bound, then offer
// multiples of it from paced deep-pipeline clients.  The interesting
// outputs are shed_rate climbing with the multiple while p99 stays flat —
// bounded latency under 10x offered load is the thread-per-core batching
// + shedding claim this rig exists to check.
int OverloadMain(size_t ops, int max_threads, int workers, uint32_t shards,
                 long max_inflight, double max_mult) {
  constexpr size_t kKeyspace = 10000;

  kv::StoreOptions store_options;
  store_options.shards = shards;
  store_options.nelem = kKeyspace * 2;
  store_options.cachesize = 32 * 1024 * 1024;
  auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, store_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "store open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(opened).value();
  for (size_t k = 0; k < kKeyspace; ++k) {
    (void)store->Put("key" + std::to_string(k), "initial" + std::to_string(k));
  }

  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = workers;
  server_options.max_inflight = static_cast<size_t>(max_inflight);
  server_options.overload_policy = net::ServerOptions::OverloadPolicy::kShed;
  net::Server server(store.get(), server_options);
  if (const Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Calibration: closed-loop, shallow pipelines (stays under the inflight
  // bound), as many threads as the sweep will use.
  const int nthreads = std::min(8, max_threads);
  const int kCalDepth = 8;
  double baseline_rps = 0.0;
  {
    const size_t per_thread = ops / static_cast<size_t>(nthreads);
    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> threads;
    std::vector<HistogramSnapshot> rtts(static_cast<size_t>(nthreads));
    const auto sample = workload::MeasureOnce([&] {
      for (int t = 0; t < nthreads; ++t) {
        threads.emplace_back(RunClient, server.port(), t, per_thread, kCalDepth,
                             kKeyspace, &errors, &rtts[static_cast<size_t>(t)]);
      }
      for (auto& thread : threads) {
        thread.join();
      }
    });
    const size_t total = per_thread * static_cast<size_t>(nthreads);
    baseline_rps = sample.elapsed_sec > 0
                       ? static_cast<double>(total) / sample.elapsed_sec
                       : 0.0;
    if (errors.load() > 0 || baseline_rps <= 0.0) {
      std::fprintf(stderr, "calibration failed (%llu errors)\n",
                   static_cast<unsigned long long>(errors.load()));
      server.Stop();
      return 1;
    }
  }
  std::printf("Overload sweep: saturated baseline %.0f req/s "
              "(%d threads, depth %d, %d workers, max_inflight %ld, shed)\n\n",
              baseline_rps, nthreads, kCalDepth, workers, max_inflight);

  std::vector<double> mults = {1.0, 2.0, 5.0};
  if (std::find(mults.begin(), mults.end(), max_mult) == mults.end()) {
    mults.push_back(max_mult);
  }
  std::sort(mults.begin(), mults.end());
  while (!mults.empty() && mults.back() > max_mult) {
    mults.pop_back();
  }

  struct OverloadRow {
    double mult;
    double offered_rps;
    double achieved_rps;
    double ok_rps;
    double shed_rate;
    PercentileSummary rtt;
    uint64_t batches;
    uint64_t batched_ops;
  };
  std::vector<OverloadRow> rows;

  const int kDepth = 32;  // deep pipelines: many ops decode per epoll round
  PrintCsvHeader("overload,mult,offered_rps,achieved_rps,shed_rate");
  std::printf("%6s %14s %14s %14s %10s %10s %10s %10s\n", "mult", "offered/s",
              "achieved/s", "ok/s", "shed_rate", "p50_us", "p99_us", "batchsz");
  for (const double mult : mults) {
    const double offered = baseline_rps * mult;
    const double per_thread_rps = offered / nthreads;
    const double batch_interval_ns = 1e9 * kDepth / per_thread_rps;
    const size_t nbatches =
        std::max<size_t>(1, ops / static_cast<size_t>(nthreads) / kDepth);
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> threads;
    std::vector<HistogramSnapshot> rtts(static_cast<size_t>(nthreads));
    const uint64_t batches0 = server.stats().batches.load();
    const uint64_t batched0 = server.stats().batched_ops.load();
    const auto sample = workload::MeasureOnce([&] {
      for (int t = 0; t < nthreads; ++t) {
        threads.emplace_back(RunPacedClient, server.port(), t, nbatches, kDepth,
                             batch_interval_ns, kKeyspace, &ok, &shed, &errors,
                             &rtts[static_cast<size_t>(t)]);
      }
      for (auto& thread : threads) {
        thread.join();
      }
    });
    if (errors.load() > 0) {
      std::fprintf(stderr, "overload mult=%.0f: %llu errors\n", mult,
                   static_cast<unsigned long long>(errors.load()));
    }
    HistogramSnapshot rtt;
    for (const HistogramSnapshot& h : rtts) {
      rtt.MergeFrom(h);
    }
    OverloadRow row;
    row.mult = mult;
    row.offered_rps = offered;
    const uint64_t answered = ok.load() + shed.load();
    row.achieved_rps = sample.elapsed_sec > 0
                           ? static_cast<double>(answered) / sample.elapsed_sec
                           : 0.0;
    row.ok_rps = sample.elapsed_sec > 0
                     ? static_cast<double>(ok.load()) / sample.elapsed_sec
                     : 0.0;
    row.shed_rate =
        answered > 0 ? static_cast<double>(shed.load()) / answered : 0.0;
    row.rtt = Summarize(rtt);
    row.batches = server.stats().batches.load() - batches0;
    row.batched_ops = server.stats().batched_ops.load() - batched0;
    const double mean_batch =
        row.batches > 0 ? static_cast<double>(row.batched_ops) / row.batches : 0.0;
    std::printf("%6.1f %14.0f %14.0f %14.0f %10.3f %10.1f %10.1f %10.1f\n",
                row.mult, row.offered_rps, row.achieved_rps, row.ok_rps,
                row.shed_rate, static_cast<double>(row.rtt.p50) / 1000.0,
                static_cast<double>(row.rtt.p99) / 1000.0, mean_batch);
    char csv[120];
    std::snprintf(csv, sizeof(csv), "overload,%.1f,%.0f,%.0f,%.3f", row.mult,
                  row.offered_rps, row.achieved_rps, row.shed_rate);
    PrintCsv(csv);
    rows.push_back(row);
  }

  // Acceptance evidence: the server-side batching lines straight from
  // STATS (batch_size mean > 1 under multi-connection load).
  const std::string stats_text = server.RenderStatsText();
  std::printf("\nserver STATS batching lines:\n");
  size_t pos = 0;
  while (pos < stats_text.size()) {
    size_t eol = stats_text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = stats_text.size();
    }
    const std::string line = stats_text.substr(pos, eol - pos);
    if (line.rfind("server.batch", 0) == 0 || line.rfind("server.ops_", 0) == 0) {
      std::printf("  %s\n", line.c_str());
    }
    pos = eol + 1;
  }
  server.Stop();

  std::FILE* f = std::fopen("BENCH_server.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const OverloadRow& r = rows[i];
    std::fprintf(f,
                 "  {\"mult\": %.1f, \"offered_rps\": %.0f, \"achieved_rps\": %.0f, "
                 "\"ok_rps\": %.0f, \"shed_rate\": %.4f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"batches\": %llu, \"batched_ops\": %llu}%s\n",
                 r.mult, r.offered_rps, r.achieved_rps, r.ok_rps, r.shed_rate,
                 static_cast<double>(r.rtt.p50) / 1000.0,
                 static_cast<double>(r.rtt.p99) / 1000.0,
                 static_cast<unsigned long long>(r.batches),
                 static_cast<unsigned long long>(r.batched_ops),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu rows to BENCH_server.json\n", rows.size());
  return 0;
}

int Main(int argc, char** argv) {
  const size_t ops = static_cast<size_t>(FlagFromArgs(argc, argv, "ops", 40000));
  const int max_threads = static_cast<int>(FlagFromArgs(argc, argv, "max_threads", 8));
  const int workers = static_cast<int>(FlagFromArgs(argc, argv, "workers", 2));
  const uint32_t shards = static_cast<uint32_t>(FlagFromArgs(argc, argv, "shards", 8));
  long cluster_nodes = FlagFromArgs(argc, argv, "cluster-nodes", 0);
  if (cluster_nodes == 0) {
    cluster_nodes = FlagFromArgs(argc, argv, "cluster_nodes", 0);
  }
  if (cluster_nodes >= 2) {
    return ClusterMain(ops, max_threads, workers, static_cast<int>(cluster_nodes));
  }
  const long overload = FlagFromArgs(argc, argv, "overload", 0);
  if (overload > 0) {
    long max_inflight = FlagFromArgs(argc, argv, "max-inflight", 0);
    if (max_inflight == 0) {
      max_inflight = FlagFromArgs(argc, argv, "max_inflight", 32);
    }
    return OverloadMain(ops, max_threads, workers, shards, max_inflight,
                        static_cast<double>(overload));
  }
  constexpr size_t kKeyspace = 10000;

  kv::StoreOptions store_options;
  store_options.shards = shards;
  store_options.nelem = kKeyspace * 2;
  store_options.cachesize = 32 * 1024 * 1024;
  auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, store_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "store open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(opened).value();
  for (size_t k = 0; k < kKeyspace; ++k) {
    (void)store->Put("key" + std::to_string(k), "initial" + std::to_string(k));
  }

  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = workers;
  net::Server server(store.get(), server_options);
  const Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("Net throughput sweep: %zu requests/cell over loopback, 80/20 get/put,\n"
              "store %s, %d server workers; hardware threads: %u\n\n",
              ops, store->Name().c_str(), workers, std::thread::hardware_concurrency());

  const int thread_counts[] = {1, 2, 4, 8};
  const int depths[] = {1, 8, 32};
  std::vector<Cell> cells;
  PrintCsvHeader("net,threads,pipeline_depth,requests_per_sec");
  std::printf("%8s %8s %8s %16s %10s %10s\n", "threads", "depth", "ops", "requests/sec",
              "rtt_p50_us", "rtt_p99_us");
  for (const int nthreads : thread_counts) {
    if (nthreads > max_threads) {
      continue;
    }
    for (const int depth : depths) {
      const size_t per_thread = ops / static_cast<size_t>(nthreads);
      const size_t total = per_thread * static_cast<size_t>(nthreads);
      std::atomic<uint64_t> errors{0};
      std::vector<std::thread> threads;
      std::vector<HistogramSnapshot> rtts(static_cast<size_t>(nthreads));
      double elapsed = 0.0;
      {
        const auto sample = workload::MeasureOnce([&] {
          for (int t = 0; t < nthreads; ++t) {
            threads.emplace_back(RunClient, server.port(), t, per_thread, depth, kKeyspace,
                                 &errors, &rtts[static_cast<size_t>(t)]);
          }
          for (auto& thread : threads) {
            thread.join();
          }
        });
        elapsed = sample.elapsed_sec;
      }
      if (errors.load() > 0) {
        std::fprintf(stderr, "cell t=%d d=%d: %llu errors\n", nthreads, depth,
                     static_cast<unsigned long long>(errors.load()));
      }
      HistogramSnapshot rtt;
      for (const HistogramSnapshot& h : rtts) {
        rtt.MergeFrom(h);
      }
      const PercentileSummary rtt_summary = Summarize(rtt);
      const double rps = elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0;
      std::printf("%8d %8d %8zu %16.0f %10.1f %10.1f\n", nthreads, depth, total, rps,
                  static_cast<double>(rtt_summary.p50) / 1000.0,
                  static_cast<double>(rtt_summary.p99) / 1000.0);
      char csv[120];
      std::snprintf(csv, sizeof(csv), "net,%d,%d,%.0f", nthreads, depth, rps);
      PrintCsv(csv);
      cells.push_back({nthreads, depth, total, elapsed, rps, rtt_summary});
    }
  }
  server.Stop();

  // Headline: what pipelining is worth at the widest client count.
  double depth1 = 0.0, depth32 = 0.0;
  for (const Cell& c : cells) {
    if (c.threads == std::min(8, max_threads)) {
      if (c.depth == 1) {
        depth1 = c.requests_per_sec;
      } else if (c.depth == 32) {
        depth32 = c.requests_per_sec;
      }
    }
  }
  if (depth1 > 0) {
    std::printf("\npipelining at max threads: depth32/depth1 = %.2fx\n", depth32 / depth1);
  }

  std::FILE* f = std::fopen("BENCH_net.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_net.json\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "  {\"threads\": %d, \"pipeline_depth\": %d, \"ops\": %zu, "
                 "\"elapsed_sec\": %.6f, \"requests_per_sec\": %.0f, "
                 "\"mean_us\": %.1f, \"p50_us\": %.1f, \"p90_us\": %.1f, "
                 "\"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
                 c.threads, c.depth, c.ops, c.elapsed_sec, c.requests_per_sec,
                 c.rtt.mean / 1000.0, static_cast<double>(c.rtt.p50) / 1000.0,
                 static_cast<double>(c.rtt.p90) / 1000.0,
                 static_cast<double>(c.rtt.p99) / 1000.0,
                 static_cast<double>(c.rtt.p999) / 1000.0,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu cells to BENCH_net.json\n", cells.size());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
