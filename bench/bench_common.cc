#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hashkit {
namespace bench {

std::vector<Record> DictionaryRecords(size_t count) {
  const auto workload = workload::MakeDictionaryWorkload(count);
  std::vector<Record> records(count);
  for (size_t i = 0; i < count; ++i) {
    records[i].key = workload.keys[i];
    records[i].value = workload.values[i];
  }
  return records;
}

std::vector<Record> PasswdRecords(size_t accounts) {
  const auto workload = workload::MakePasswdWorkload(accounts);
  std::vector<Record> records(workload.records.size());
  for (size_t i = 0; i < workload.records.size(); ++i) {
    records[i].key = workload.records[i].key;
    records[i].value = workload.records[i].value;
  }
  return records;
}

int RunsFromArgs(int argc, char** argv, int fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      const int runs = std::atoi(argv[i] + 7);
      if (runs > 0) {
        return runs;
      }
    }
  }
  return fallback;
}

std::string BenchPath(const std::string& tag) {
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/hashkit_bench_" + tag;
  RemoveBenchFiles(path);
  return path;
}

void RemoveBenchFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".pag").c_str());
  std::remove((path + ".dir").c_str());
}

void PrintComparisonRow(const std::string& test, const workload::TimingSample& new_time,
                        const workload::TimingSample& old_time) {
  std::printf("%s\n", test.c_str());
  const auto row = [](const char* label, double new_sec, double old_sec) {
    std::printf("  %-8s %8.3f %8.3f %7.0f%%\n", label, new_sec, old_sec,
                workload::PercentImprovement(old_sec, new_sec));
  };
  row("user", new_time.user_sec, old_time.user_sec);
  row("sys", new_time.sys_sec, old_time.sys_sec);
  row("elapsed", new_time.elapsed_sec, old_time.elapsed_sec);
}

void PrintCsvHeader(const std::string& columns) { std::printf("csv,%s\n", columns.c_str()); }

void PrintCsv(const std::string& row) { std::printf("csv,%s\n", row.c_str()); }

}  // namespace bench
}  // namespace hashkit
