// Ablation A6: System V hsearch's compile-time variants, run head to head
// — the paper catalogs DIV (division hashing + linear probing), BRENT
// (insertion-time rearrangement) and CHAINED (+SORTUP/SORTDOWN) as the
// options AT&T-source users could build.  We measure probe counts and
// times across load factors on the dictionary keys.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/hsearch/hsearch.h"

namespace hashkit {
namespace bench {
namespace {

struct Variant {
  const char* name;
  baseline::HsearchConfig config;
};

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const auto records = DictionaryRecords(20000);
  std::printf("Ablation A6: hsearch variants on %zu keys (probes per successful find)\n\n",
              records.size());
  PrintCsvHeader("ablation_hsearch,variant,load,enter_user,find_user,probes_per_find");

  const Variant variants[] = {
      {"double_hash", {}},
      {"div_linear",
       {baseline::HsearchHash::kDivision, baseline::HsearchCollision::kDoubleHash,
        baseline::HsearchChainOrder::kFront, 2}},
      {"brent",
       {baseline::HsearchHash::kMultiplicative, baseline::HsearchCollision::kBrent,
        baseline::HsearchChainOrder::kFront, 2}},
      {"chained",
       {baseline::HsearchHash::kMultiplicative, baseline::HsearchCollision::kChained,
        baseline::HsearchChainOrder::kFront, 2}},
      {"chained_sortup",
       {baseline::HsearchHash::kMultiplicative, baseline::HsearchCollision::kChained,
        baseline::HsearchChainOrder::kSortUp, 2}},
  };

  std::printf("%-15s %6s %12s %12s %16s\n", "variant", "load", "enter(u)", "find(u)",
              "probes/find");
  for (const double load : {0.5, 0.9, 0.99}) {
    for (const Variant& variant : variants) {
      const auto capacity = static_cast<size_t>(static_cast<double>(records.size()) / load);
      auto table = std::move(baseline::SysvHsearch::Create(capacity, variant.config).value());
      const auto enter = workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)table->Enter(r.key, const_cast<std::string*>(&r.value));
        }
      });
      const uint64_t probes_before = table->stats().probes;
      void* data = nullptr;
      const auto find = workload::MeasureOnce([&] {
        for (const auto& r : records) {
          (void)table->Find(r.key, &data);
        }
      });
      const double probes_per_find =
          static_cast<double>(table->stats().probes - probes_before) /
          static_cast<double>(records.size());
      std::printf("%-15s %6.2f %12.4f %12.4f %16.2f\n", variant.name, load, enter.user_sec,
                  find.user_sec, probes_per_find);
      char csv[160];
      std::snprintf(csv, sizeof(csv), "ablation_hsearch,%s,%.2f,%.4f,%.4f,%.3f", variant.name,
                    load, enter.user_sec, find.user_sec, probes_per_find);
      PrintCsv(csv);
    }
    std::printf("\n");
  }
  std::printf("Expected: Brent's rearrangement pays at high load (shorter probe chains\n"
              "than plain double hashing); chained variants stay flat at the cost of\n"
              "per-node allocation; DIV's linear probing clusters at high load.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
