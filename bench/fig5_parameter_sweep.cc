// Figures 5a / 5b / 5c: system, elapsed, and user time for the dictionary
// data set as bucket size and fill factor vary, with a 1 MB buffer pool.
//
// Paper setup: 24474 dictionary keys, data = ASCII "1".."24474"; create a
// new table whose ultimate size is known in advance, enter every pair,
// retrieve every pair; page sizes 128..8192, fill factors 1..128; HP
// 9000/370 under 4.3BSD-Reno.  Expected shape: for every bucket size,
// times fall steeply as the fill factor rises until equation (1)
// ((avg_pair + 4) * ffactor >= bsize) is satisfied, then flatten; the best
// combined tradeoff sits near bsize=256 / ffactor=8.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const int runs = RunsFromArgs(argc, argv, 1);
  const auto records = DictionaryRecords();
  double avg_pair = 0;
  for (const auto& r : records) {
    avg_pair += static_cast<double>(r.key.size() + r.value.size());
  }
  avg_pair /= static_cast<double>(records.size());

  std::printf("Figure 5 parameter sweep: dictionary (%zu keys, avg pair %.1f bytes), "
              "1M buffer pool, create+read, size known in advance\n\n",
              records.size(), avg_pair);
  PrintCsvHeader("fig5,bsize,ffactor,user_sec,sys_sec,elapsed_sec,eq1_satisfied");

  const uint32_t bsizes[] = {128, 256, 512, 1024, 4096, 8192};
  const uint32_t ffactors[] = {1, 2, 4, 8, 16, 32, 64, 128};

  std::printf("%6s %8s %10s %10s %10s  %s\n", "bsize", "ffactor", "user", "sys", "elapsed",
              "eq1");
  for (const uint32_t bsize : bsizes) {
    for (const uint32_t ffactor : ffactors) {
      const std::string path = BenchPath("fig5");
      HashOptions opts;
      opts.bsize = bsize;
      opts.ffactor = ffactor;
      opts.nelem = static_cast<uint32_t>(records.size());
      opts.cachesize = 1024 * 1024;

      const auto sample = workload::MeasureAveraged(
          runs, [&] { RemoveBenchFiles(path); },
          [&] {
            auto table = std::move(HashTable::Open(path, opts, /*truncate=*/true).value());
            for (const auto& r : records) {
              (void)table->Put(r.key, r.value);
            }
            std::string value;
            for (const auto& r : records) {
              (void)table->Get(r.key, &value);
            }
            (void)table->Sync();
          });

      const bool eq1 = (avg_pair + 4.0) * ffactor >= bsize;
      std::printf("%6u %8u %10.3f %10.3f %10.3f  %s\n", bsize, ffactor, sample.user_sec,
                  sample.sys_sec, sample.elapsed_sec, eq1 ? "yes" : "no");
      char csv[160];
      std::snprintf(csv, sizeof(csv), "fig5,%u,%u,%.4f,%.4f,%.4f,%d", bsize, ffactor,
                    sample.user_sec, sample.sys_sec, sample.elapsed_sec, eq1 ? 1 : 0);
      PrintCsv(csv);
      RemoveBenchFiles(path);
    }
    std::printf("\n");
  }
  std::printf("Read the columns as the paper's figures: 5a=sys, 5b=elapsed, 5c=user.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
