// Ablation A3: buffer-pool microbenchmarks — the hit path, the
// miss+eviction path, and overflow-chain maintenance.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/page_file.h"

namespace hashkit {
namespace {

constexpr size_t kPage = 256;

void BM_PoolHit(benchmark::State& state) {
  auto file = MakeMemPageFile(kPage);
  BufferPool pool(file.get(), kPage * 64);
  { auto warm = std::move(pool.Get(7, true).value()); }
  for (auto _ : state) {
    auto ref = std::move(pool.Get(7).value());
    benchmark::DoNotOptimize(ref.data());
  }
}
BENCHMARK(BM_PoolHit);

void BM_PoolMissWithEviction(benchmark::State& state) {
  auto file = MakeMemPageFile(kPage);
  BufferPool pool(file.get(), kPage * 16);
  // Pre-write pages so misses read real content.
  std::vector<uint8_t> page(kPage, 1);
  for (uint64_t p = 0; p < 64; ++p) {
    (void)file->WritePage(p, page);
  }
  uint64_t next = 0;
  for (auto _ : state) {
    auto ref = std::move(pool.Get(next).value());  // cycling 64 pages in a 16-frame pool
    benchmark::DoNotOptimize(ref.data());
    next = (next + 1) % 64;
  }
}
BENCHMARK(BM_PoolMissWithEviction);

void BM_PoolDirtyEvictionWriteback(benchmark::State& state) {
  auto file = MakeMemPageFile(kPage);
  BufferPool pool(file.get(), kPage * 16);
  uint64_t next = 0;
  for (auto _ : state) {
    auto ref = std::move(pool.Get(next, /*create_new=*/true).value());
    ref.MarkDirty();
    benchmark::DoNotOptimize(ref.data());
    next = (next + 1) % 64;
  }
}
BENCHMARK(BM_PoolDirtyEvictionWriteback);

void BM_PoolChainLink(benchmark::State& state) {
  auto file = MakeMemPageFile(kPage);
  BufferPool pool(file.get(), kPage * 64);
  auto primary = std::move(pool.Get(0, true).value());
  auto ovfl = std::move(pool.Get(1, true).value());
  for (auto _ : state) {
    pool.LinkOverflow(primary, ovfl);
    benchmark::DoNotOptimize(&pool);
  }
}
BENCHMARK(BM_PoolChainLink);

void BM_PoolPinUnpin(benchmark::State& state) {
  auto file = MakeMemPageFile(kPage);
  BufferPool pool(file.get(), kPage * 64);
  { auto warm = std::move(pool.Get(3, true).value()); }
  for (auto _ : state) {
    auto ref = std::move(pool.Get(3).value());
    ref.Release();
  }
}
BENCHMARK(BM_PoolPinUnpin);

}  // namespace
}  // namespace hashkit

BENCHMARK_MAIN();
