# ctest smoke test for the hashkit-obs bench surface: runs tiny cells of
# net_throughput and concurrent_throughput and asserts the JSON results
# carry the latency-percentile fields downstream tooling consumes.  Driven
# as
#   cmake -DNET_BENCH=<bin> -DCONCURRENT_BENCH=<bin> -DWORK_DIR=<dir> \
#         -P bench_percentile_smoke.cmake
# and registered from bench/CMakeLists.txt.

if(NOT DEFINED NET_BENCH OR NOT DEFINED CONCURRENT_BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DNET_BENCH=<bin> -DCONCURRENT_BENCH=<bin> -DWORK_DIR=<dir> "
    "-P bench_percentile_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
file(REMOVE "${WORK_DIR}/BENCH_net.json" "${WORK_DIR}/BENCH_concurrent.json")

function(run_bench)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench failed (rc=${rc}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

function(expect_json_field file needle)
  file(READ "${file}" contents)
  string(FIND "${contents}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "expected ${file} to contain '${needle}', got:\n${contents}")
  endif()
endfunction()

# Tiny cells: the point is the output schema, not the numbers.
run_bench("${NET_BENCH}" --ops=400 --max_threads=2 --workers=1 --shards=2)
foreach(field "\"mean_us\"" "\"p50_us\"" "\"p90_us\"" "\"p99_us\"" "\"p999_us\"")
  expect_json_field("${WORK_DIR}/BENCH_net.json" "${field}")
endforeach()

run_bench("${CONCURRENT_BENCH}" --ops=2000 --max_threads=2)
foreach(field "\"mean_us\"" "\"p50_us\"" "\"p90_us\"" "\"p99_us\"" "\"p999_us\"")
  expect_json_field("${WORK_DIR}/BENCH_concurrent.json" "${field}")
endforeach()
