# ctest smoke test for the page-format bench: runs a tiny micro_page sweep
# and asserts BENCH_page.json carries the per-cell schema downstream tooling
# consumes, and that the v2 cells actually exercised the tag filter (nonzero
# skip counters).  Driven as
#   cmake -DPAGE_BENCH=<bin> -DWORK_DIR=<dir> -P bench_page_smoke.cmake
# and registered from bench/CMakeLists.txt.

if(NOT DEFINED PAGE_BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DPAGE_BENCH=<bin> -DWORK_DIR=<dir> -P bench_page_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
file(REMOVE "${WORK_DIR}/BENCH_page.json")

execute_process(COMMAND "${PAGE_BENCH}" --sweep_only --ops=4000 --keys=2000 --max_threads=1
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "micro_page sweep failed (rc=${rc}):\n${out}\n${err}")
endif()

file(READ "${WORK_DIR}/BENCH_page.json" contents)
foreach(field "\"format\"" "\"threads\"" "\"ffactor\"" "\"hit_pct\"" "\"ops_per_sec\""
        "\"tag_filter_skips\"" "\"tag_filter_candidates\"" "\"tag_filter_false_hits\""
        "\"tag_scan\"")
  string(FIND "${contents}" "${field}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "expected BENCH_page.json to contain ${field}, got:\n${contents}")
  endif()
endforeach()

# Both formats must be present, and the v2 cells must have filtered
# something: at least one record with format 2 and a nonzero skip count.
string(FIND "${contents}" "\"format\": 1" v1_at)
if(v1_at EQUAL -1)
  message(FATAL_ERROR "expected v1 cells in BENCH_page.json, got:\n${contents}")
endif()
string(REGEX MATCH "\"format\": 2[^}]*\"tag_filter_skips\": [1-9]" v2_active "${contents}")
if(v2_active STREQUAL "")
  message(FATAL_ERROR
    "expected a v2 cell with nonzero tag_filter_skips in BENCH_page.json, got:\n${contents}")
endif()
