# ctest smoke test for the overload sweep (hashkit-tpc): runs a tiny
# --overload cell and asserts BENCH_server.json carries the schema
# downstream tooling consumes, with nonzero server-side batch counters —
# i.e. the cross-connection batching path actually executed.  Driven as
#   cmake -DNET_BENCH=<bin> -DWORK_DIR=<dir> -P bench_server_smoke.cmake
# and registered from bench/CMakeLists.txt.

if(NOT DEFINED NET_BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DNET_BENCH=<bin> -DWORK_DIR=<dir> -P bench_server_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
file(REMOVE "${WORK_DIR}/BENCH_server.json")

execute_process(COMMAND "${NET_BENCH}" --overload=3 --ops=4000 --workers=2
                        --max_threads=4 --max-inflight=32
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "overload bench failed (rc=${rc}):\n${out}\n${err}")
endif()

if(NOT EXISTS "${WORK_DIR}/BENCH_server.json")
  message(FATAL_ERROR "overload bench wrote no BENCH_server.json:\n${out}")
endif()
file(READ "${WORK_DIR}/BENCH_server.json" contents)

# Schema: every row field the sweep promises.
foreach(field "\"mult\"" "\"offered_rps\"" "\"achieved_rps\"" "\"ok_rps\""
        "\"shed_rate\"" "\"p50_us\"" "\"p99_us\"" "\"batches\"" "\"batched_ops\"")
  string(FIND "${contents}" "${field}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
      "expected BENCH_server.json to contain ${field}, got:\n${contents}")
  endif()
endforeach()

# The batching path must have run: some row's batch counters are nonzero.
if(NOT contents MATCHES "\"batches\": [1-9]")
  message(FATAL_ERROR "no row with nonzero batches:\n${contents}")
endif()
if(NOT contents MATCHES "\"batched_ops\": [1-9]")
  message(FATAL_ERROR "no row with nonzero batched_ops:\n${contents}")
endif()

# And the sweep must cover the requested top multiple.
if(NOT contents MATCHES "\"mult\": 3.0")
  message(FATAL_ERROR "missing mult=3.0 row:\n${contents}")
endif()
