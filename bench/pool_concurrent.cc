// Multithreaded scaling sweep for the striped buffer pool.
//
// The pool's redesign claims a lock-free hit path (stripe-shared lookup +
// atomic pin) and miss I/O outside the bookkeeping locks.  This bench
// measures both directly, below the kv layer: N threads issue uniform
// random Gets against a memory-backed page file, with the pool budget set
// to a fraction of the working set so the target hit ratio emerges from
// the replacement policy itself (100% = everything resident, 90% / 50% =
// constant eviction traffic mixed into the hit stream).
//
// Reports per cell: aggregate ops/sec, the measured hit rate, and the
// pool's own hit-latency percentiles (from BufferPoolStats::get_hit_ns, so
// the bench exercises the same per-stripe histograms servers snapshot).
// Results go to BENCH_pool.json; the headline number is the 8-thread vs
// 1-thread speedup on the 90%-hit cell.
//
// Flags: --ops=N operations per cell (default 1000000),
//        --max_threads=N cap on the thread sweep (default 16).

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/page_file.h"
#include "src/util/histogram.h"
#include "src/util/random.h"
#include "src/workload/timing.h"

namespace hashkit {
namespace bench {
namespace {

constexpr size_t kPageSize = 1024;
constexpr uint64_t kWorkingSet = 4096;  // pages touched by the access stream

struct Cell {
  int threads;
  int hit_pct;  // target: pool frames as % of working set
  size_t ops;
  double elapsed_sec;
  double ops_per_sec;
  double hit_rate;            // measured
  PercentileSummary hit_ns;   // pool-side hit latency
};

long FlagFromArgs(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

Cell RunCell(int nthreads, int hit_pct, size_t total_ops) {
  auto file = MakeMemPageFile(kPageSize);
  std::vector<uint8_t> page(kPageSize, 0x42);
  for (uint64_t p = 0; p < kWorkingSet; ++p) {
    page[0] = static_cast<uint8_t>(p);
    (void)file->WritePage(p, page);
  }
  // 100% gets slack above the working set so startup misses never evict;
  // lower ratios get exactly the fraction, and the clock does the rest.
  const uint64_t frames =
      hit_pct >= 100 ? kWorkingSet + 64 : kWorkingSet * static_cast<uint64_t>(hit_pct) / 100;
  BufferPool pool(file.get(), frames * kPageSize);

  // Warm the pool so the measured window sees steady-state hit rates.
  {
    Rng rng(1);
    for (uint64_t i = 0; i < kWorkingSet * 2; ++i) {
      auto ref = pool.Get(rng.Uniform(kWorkingSet));
      if (!ref.ok()) {
        std::fprintf(stderr, "warmup get failed: %s\n", ref.status().ToString().c_str());
        return {nthreads, hit_pct, 0, 0.0, 0.0, 0.0, {}};
      }
    }
  }
  const BufferPoolStats warm = pool.StatsSnapshot();

  std::atomic<bool> go{false};
  std::atomic<uint64_t> checksum{0};  // defeats dead-code elimination
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    const size_t begin = total_ops * t / nthreads;
    const size_t end = total_ops * (t + 1) / nthreads;
    threads.emplace_back([&, t, begin, end] {
      Rng rng(0x9e3779b9u + static_cast<uint64_t>(t));
      uint64_t local = 0;
      while (!go.load(std::memory_order_acquire)) {
      }
      for (size_t i = begin; i < end; ++i) {
        auto ref = pool.Get(rng.Uniform(kWorkingSet));
        if (ref.ok()) {
          local += ref.value().data()[0];
        }
      }
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }

  double elapsed = 0.0;
  {
    const auto sample = workload::MeasureOnce([&] {
      go.store(true, std::memory_order_release);
      for (auto& thread : threads) {
        thread.join();
      }
    });
    elapsed = sample.elapsed_sec;
  }

  const BufferPoolStats stats = pool.StatsSnapshot();
  const uint64_t hits = stats.hits - warm.hits;
  const uint64_t misses = stats.misses - warm.misses;
  const double hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / static_cast<double>(hits + misses) : 0.0;
  const double ops_per_sec = elapsed > 0 ? static_cast<double>(total_ops) / elapsed : 0.0;
  // Warmup samples are in the histogram too; at ops >> working set the
  // skew is negligible and the percentiles stay comparable across cells.
  return {nthreads, hit_pct, total_ops, elapsed, ops_per_sec, hit_rate,
          Summarize(stats.get_hit_ns)};
}

void WriteJson(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "  {\"threads\": %d, \"hit_pct_target\": %d, \"ops\": %zu, "
                 "\"elapsed_sec\": %.6f, \"ops_per_sec\": %.0f, \"hit_rate\": %.4f, "
                 "\"hit_p50_ns\": %llu, \"hit_p90_ns\": %llu, \"hit_p99_ns\": %llu}%s\n",
                 c.threads, c.hit_pct, c.ops, c.elapsed_sec, c.ops_per_sec, c.hit_rate,
                 static_cast<unsigned long long>(c.hit_ns.p50),
                 static_cast<unsigned long long>(c.hit_ns.p90),
                 static_cast<unsigned long long>(c.hit_ns.p99),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu cells to %s\n", cells.size(), path);
}

int Main(int argc, char** argv) {
  const size_t ops = static_cast<size_t>(FlagFromArgs(argc, argv, "ops", 1000000));
  const int max_threads = static_cast<int>(FlagFromArgs(argc, argv, "max_threads", 16));
  std::printf("Buffer pool scaling sweep: %zu ops/cell, %llu-page working set, "
              "uniform access, mem backend; hardware threads: %u\n\n",
              ops, static_cast<unsigned long long>(kWorkingSet),
              std::thread::hardware_concurrency());

  const int thread_counts[] = {1, 2, 4, 8, 16};
  const int hit_targets[] = {100, 90, 50};

  std::vector<Cell> cells;
  PrintCsvHeader("pool,hit_pct,threads,ops_per_sec,hit_rate");
  for (const int hit_pct : hit_targets) {
    std::printf("--- target hit ratio %d%% ---\n", hit_pct);
    std::printf("%8s %14s %9s %11s %11s\n", "threads", "ops/sec", "hit_rate", "p50_ns",
                "p99_ns");
    for (const int threads : thread_counts) {
      if (threads > max_threads) {
        continue;
      }
      const Cell cell = RunCell(threads, hit_pct, ops);
      std::printf("%8d %14.0f %9.4f %11llu %11llu\n", cell.threads, cell.ops_per_sec,
                  cell.hit_rate, static_cast<unsigned long long>(cell.hit_ns.p50),
                  static_cast<unsigned long long>(cell.hit_ns.p99));
      char csv[120];
      std::snprintf(csv, sizeof(csv), "pool,%d,%d,%.0f,%.4f", cell.hit_pct, cell.threads,
                    cell.ops_per_sec, cell.hit_rate);
      PrintCsv(csv);
      cells.push_back(cell);
    }
    std::printf("\n");
  }

  // The headline: hit-path scaling at 8 threads on the 90%-hit workload.
  double one = 0.0, eight = 0.0;
  for (const Cell& c : cells) {
    if (c.hit_pct == 90 && c.threads == 1) {
      one = c.ops_per_sec;
    } else if (c.hit_pct == 90 && c.threads == 8) {
      eight = c.ops_per_sec;
    }
  }
  if (one > 0 && eight > 0) {
    std::printf("90%%-hit workload @8 threads: %.2fx over 1 thread\n", eight / one);
  }

  WriteJson(cells, "BENCH_pool.json");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
