// Multithreaded throughput sweep for the concurrent kv front-ends.
//
// The paper stops at single-user access; this bench measures what the
// locking wrappers added on top are worth.  It sweeps reader/writer thread
// counts against shard counts (1 shard = the SynchronizedStore decorator,
// N shards = ShardedStore) across three operation mixes (read-only,
// read-heavy 95/5, write-heavy 50/50; all zipf-0.99 skewed) and reports
// aggregate ops/sec per cell, plus per-operation latency percentiles
// pulled from the wrappers' own StoreStats::latency histograms (so the
// bench exercises the same observability path servers use).  Results are
// written to BENCH_concurrent.json so later changes can be compared
// against the recorded scaling curve.
//
// Flags: --ops=N total operations per cell (default 120000),
//        --max_threads=N cap on the thread sweep (default 16).

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/kv/kv_store.h"
#include "src/kv/sharded.h"
#include "src/kv/synchronized.h"
#include "src/util/histogram.h"
#include "src/workload/mixes.h"
#include "src/workload/timing.h"

namespace hashkit {
namespace bench {
namespace {

struct Cell {
  int threads;
  int shards;  // 1 = SynchronizedStore baseline
  std::string mix;
  std::string store;
  size_t ops;
  double elapsed_sec;
  double ops_per_sec;
  PercentileSummary latency;  // all ops merged, end-to-end ns
};

long FlagFromArgs(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

Result<std::unique_ptr<kv::KvStore>> BuildStore(int shards, size_t expected_keys) {
  kv::StoreOptions options;
  options.page_size = 1024;
  options.ffactor = 16;
  options.nelem = static_cast<uint32_t>(expected_keys * 2);
  options.cachesize = 16 * 1024 * 1024;
  if (shards <= 1) {
    HASHKIT_ASSIGN_OR_RETURN(auto base, kv::OpenStore(kv::StoreKind::kHashMemory, options));
    return kv::MakeSynchronized(std::move(base));
  }
  options.shards = static_cast<uint32_t>(shards);
  return kv::OpenStore(kv::StoreKind::kHashMemory, options);
}

// Runs the trace's operations partitioned across `nthreads` threads and
// returns aggregate ops/sec.
Cell RunCell(int nthreads, int shards, const std::string& mix_name,
             const workload::Trace& trace) {
  auto opened = BuildStore(shards, trace.preload_keys.size());
  if (!opened.ok()) {
    std::fprintf(stderr, "store open failed: %s\n", opened.status().ToString().c_str());
    return {nthreads, shards, mix_name, "error", 0, 0.0, 0.0};
  }
  auto store = std::move(opened).value();
  for (const auto& key : trace.preload_keys) {
    (void)store->Put(key, trace.preload_value);
  }

  const size_t total_ops = trace.ops.size();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    const size_t begin = total_ops * t / nthreads;
    const size_t end = total_ops * (t + 1) / nthreads;
    threads.emplace_back([&, begin, end] {
      while (!go.load(std::memory_order_acquire)) {
      }
      std::string value;
      for (size_t i = begin; i < end; ++i) {
        const workload::Op& op = trace.ops[i];
        switch (op.type) {
          case workload::OpType::kRead:
            (void)store->Get(op.key, &value);
            break;
          case workload::OpType::kUpdate:
          case workload::OpType::kInsert:
            (void)store->Put(op.key, op.value);
            break;
          case workload::OpType::kDelete:
            (void)store->Delete(op.key);
            break;
        }
      }
    });
  }

  double elapsed = 0.0;
  {
    const auto sample = workload::MeasureOnce([&] {
      go.store(true, std::memory_order_release);
      for (auto& thread : threads) {
        thread.join();
      }
    });
    elapsed = sample.elapsed_sec;
  }
  const double ops_per_sec = elapsed > 0 ? static_cast<double>(total_ops) / elapsed : 0.0;

  // End-to-end latency distribution from the wrapper's histograms (the
  // preload Puts above are in there too, a known and negligible skew).
  PercentileSummary latency;
  kv::StoreStats stats;
  if (store->Stats(&stats)) {
    HistogramSnapshot all = stats.latency.get;
    all.MergeFrom(stats.latency.put);
    all.MergeFrom(stats.latency.del);
    latency = Summarize(all);
  }
  return {nthreads, shards, mix_name, store->Name(), total_ops, elapsed, ops_per_sec, latency};
}

void WriteJson(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "  {\"threads\": %d, \"shards\": %d, \"mix\": \"%s\", \"store\": \"%s\", "
                 "\"ops\": %zu, \"elapsed_sec\": %.6f, \"ops_per_sec\": %.0f, "
                 "\"mean_us\": %.2f, \"p50_us\": %.2f, \"p90_us\": %.2f, "
                 "\"p99_us\": %.2f, \"p999_us\": %.2f}%s\n",
                 c.threads, c.shards, c.mix.c_str(), c.store.c_str(), c.ops, c.elapsed_sec,
                 c.ops_per_sec, c.latency.mean / 1000.0,
                 static_cast<double>(c.latency.p50) / 1000.0,
                 static_cast<double>(c.latency.p90) / 1000.0,
                 static_cast<double>(c.latency.p99) / 1000.0,
                 static_cast<double>(c.latency.p999) / 1000.0,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu cells to %s\n", cells.size(), path);
}

int Main(int argc, char** argv) {
  const size_t ops = static_cast<size_t>(FlagFromArgs(argc, argv, "ops", 120000));
  const int max_threads = static_cast<int>(FlagFromArgs(argc, argv, "max_threads", 16));
  std::printf("Concurrent throughput sweep: %zu ops/cell, zipf 0.99, "
              "hash(mem) inner stores; hardware threads: %u\n\n",
              ops, std::thread::hardware_concurrency());

  struct Mix {
    const char* name;
    workload::MixSpec spec;
  };
  Mix mixes[] = {
      {"read_only", workload::MixC()},
      {"read_heavy_95_5", workload::MixB()},
      {"write_heavy_50_50", workload::MixA()},
  };
  const int thread_counts[] = {1, 2, 4, 8, 16};
  const int shard_counts[] = {1, 4, 8, 16};

  std::vector<Cell> cells;
  PrintCsvHeader("concurrent,mix,store,threads,shards,ops_per_sec");
  for (Mix& mix : mixes) {
    mix.spec.operations = ops;
    const workload::Trace trace = workload::GenerateTrace(mix.spec);
    std::printf("--- mix %s ---\n", mix.name);
    std::printf("%-26s %8s %8s %14s %9s %9s\n", "store", "threads", "shards", "ops/sec",
                "p50_us", "p99_us");
    for (const int shards : shard_counts) {
      for (const int threads : thread_counts) {
        if (threads > max_threads) {
          continue;
        }
        const Cell cell = RunCell(threads, shards, mix.name, trace);
        std::printf("%-26s %8d %8d %14.0f %9.2f %9.2f\n", cell.store.c_str(), cell.threads,
                    cell.shards, cell.ops_per_sec,
                    static_cast<double>(cell.latency.p50) / 1000.0,
                    static_cast<double>(cell.latency.p99) / 1000.0);
        char csv[200];
        std::snprintf(csv, sizeof(csv), "concurrent,%s,%s,%d,%d,%.0f", mix.name,
                      cell.store.c_str(), cell.threads, cell.shards, cell.ops_per_sec);
        PrintCsv(csv);
        cells.push_back(cell);
      }
    }
    std::printf("\n");
  }

  // The headline comparison: sharded-8 vs the single-lock wrapper at 8
  // reader threads on the read-only mix.
  double sync8 = 0.0, sharded8 = 0.0;
  for (const Cell& c : cells) {
    if (c.mix == "read_only" && c.threads == 8) {
      if (c.shards == 1) {
        sync8 = c.ops_per_sec;
      } else if (c.shards == 8) {
        sharded8 = c.ops_per_sec;
      }
    }
  }
  if (sync8 > 0) {
    std::printf("read_only @8 threads: sharded(8)/sync = %.2fx\n", sharded8 / sync8);
  }

  WriteJson(cells, "BENCH_concurrent.json");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
