// Ablation A2 (speed half): cycles/bytes per call for the hash-function
// suite — the criterion by which the paper's default function was chosen.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/util/hash_funcs.h"
#include "src/util/random.h"

namespace hashkit {
namespace {

std::vector<std::string> MakeKeys(size_t count, size_t length) {
  Rng rng(42);
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    keys.push_back(rng.AsciiString(length));
  }
  return keys;
}

void BM_HashFunction(benchmark::State& state) {
  const auto id = static_cast<HashFuncId>(state.range(0));
  const auto length = static_cast<size_t>(state.range(1));
  const HashFn fn = GetHashFunc(id);
  const auto keys = MakeKeys(256, length);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& key = keys[i++ & 255];
    benchmark::DoNotOptimize(fn(key.data(), key.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(length));
  state.SetLabel(std::string(HashFuncName(id)));
}

void RegisterAll() {
  for (const HashFuncId id : kAllHashFuncIds) {
    for (const int64_t length : {8, 32, 256}) {
      benchmark::RegisterBenchmark(
          ("BM_Hash/" + std::string(HashFuncName(id)) + "/len" + std::to_string(length))
              .c_str(),
          &BM_HashFunction)
          ->Args({static_cast<int64_t>(id), length});
    }
  }
}

}  // namespace
}  // namespace hashkit

int main(int argc, char** argv) {
  hashkit::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
