// hashkit-cache ablation: eviction policy × cache-capacity ratio × key
// skew, on the buffer pool the kv stores actually use.
//
// Each cell replays the same Zipf-skewed page-access trace through a
// BufferPool of the given policy and capacity, and reports the hit rate.
// The cells isolate exactly the question the pluggable policies exist to
// answer: when the working set exceeds the pool, does frequency-aware
// admission (TinyLFU) or scan-resistant staging (2Q) beat the original
// second-chance clock — and by how much, as a function of skew?
//
// Results land in BENCH_cache.json, one row per cell:
//   {policy, capacity_ratio, zipf_theta, pages, accesses, hits, misses,
//    hit_rate, evictions}
// plus a "verdict" summary per (ratio, theta) naming the winning policy.
// EXPERIMENTS.md documents the expected shape: TinyLFU >= clock on every
// skewed trace, with the gap widening as capacity shrinks.
//
// Flags: --pages=N (default 4096), --accesses=N (default 200000),
//        --quick (tiny grid for CI smoke).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/eviction.h"
#include "src/pagefile/page_file.h"
#include "src/util/random.h"

namespace hashkit {
namespace bench {
namespace {

constexpr size_t kPageSize = 1024;

struct Cell {
  EvictionPolicyKind policy;
  double capacity_ratio = 0;
  double zipf_theta = 0;
  uint64_t pages = 0;
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  double hit_rate = 0;
};

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

Cell RunCell(EvictionPolicyKind policy, double ratio, double theta, uint64_t pages,
             uint64_t accesses) {
  auto file = MakeMemPageFile(kPageSize);
  // Materialize every page once so the trace never counts cold-fill misses
  // differently across policies.
  {
    std::vector<uint8_t> zero(kPageSize, 0);
    for (uint64_t p = 0; p < pages; ++p) {
      (void)file->WritePage(p, zero);
    }
  }
  const size_t pool_bytes = static_cast<size_t>(ratio * static_cast<double>(pages)) * kPageSize;
  BufferPool pool(file.get(), pool_bytes, policy);

  // Same seed per cell: every policy replays an identical trace.
  Rng rng(0x5eed * (static_cast<uint64_t>(theta * 100) + 1));
  for (uint64_t i = 0; i < accesses; ++i) {
    const uint64_t page = theta > 0 ? rng.Zipf(pages, theta) : rng.Next() % pages;
    auto ref = pool.Get(page);
    if (!ref.ok()) {
      std::fprintf(stderr, "Get(%llu) failed: %s\n",
                   static_cast<unsigned long long>(page),
                   ref.status().ToString().c_str());
      break;
    }
  }

  const BufferPoolStats stats = pool.StatsSnapshot();
  Cell cell;
  cell.policy = policy;
  cell.capacity_ratio = ratio;
  cell.zipf_theta = theta;
  cell.pages = pages;
  cell.accesses = accesses;
  cell.hits = stats.hits;
  cell.misses = stats.misses;
  cell.evictions = stats.evictions;
  cell.hit_rate = stats.hits + stats.misses > 0
                      ? static_cast<double>(stats.hits) /
                            static_cast<double>(stats.hits + stats.misses)
                      : 0.0;
  return cell;
}

int Main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "quick");
  const uint64_t pages = FlagU64(argc, argv, "pages", quick ? 512 : 4096);
  const uint64_t accesses = FlagU64(argc, argv, "accesses", quick ? 20'000 : 200'000);

  const std::vector<double> ratios = quick ? std::vector<double>{0.10}
                                           : std::vector<double>{0.05, 0.10, 0.25};
  const std::vector<double> thetas = quick ? std::vector<double>{0.99}
                                           : std::vector<double>{0.0, 0.60, 0.99, 1.20};
  const EvictionPolicyKind policies[] = {EvictionPolicyKind::kClock,
                                         EvictionPolicyKind::kTwoQ,
                                         EvictionPolicyKind::kTinyLfu};

  std::vector<Cell> cells;
  PrintCsvHeader("policy,capacity_ratio,zipf_theta,hit_rate,evictions");
  std::printf("%-8s %8s %6s %9s %10s\n", "policy", "ratio", "theta", "hit_rate",
              "evictions");
  for (const double ratio : ratios) {
    for (const double theta : thetas) {
      for (const EvictionPolicyKind policy : policies) {
        const Cell cell = RunCell(policy, ratio, theta, pages, accesses);
        cells.push_back(cell);
        const std::string name(EvictionPolicyName(policy));
        std::printf("%-8s %8.2f %6.2f %8.1f%% %10llu\n", name.c_str(), ratio, theta,
                    cell.hit_rate * 100.0, static_cast<unsigned long long>(cell.evictions));
        char row[160];
        std::snprintf(row, sizeof(row), "%s,%.2f,%.2f,%.4f,%llu", name.c_str(), ratio,
                      theta, cell.hit_rate,
                      static_cast<unsigned long long>(cell.evictions));
        PrintCsv(row);
      }
    }
  }

  // Per-trace verdicts: the headline regression check (TinyLFU >= clock on
  // skewed traces) reads these rather than re-deriving them.
  bool tinylfu_beats_clock_on_skew = true;
  for (size_t i = 0; i + 2 < cells.size(); i += 3) {
    const Cell& clock = cells[i];
    const Cell& tinylfu = cells[i + 2];
    if (clock.zipf_theta > 0 && tinylfu.hit_rate + 1e-9 < clock.hit_rate) {
      tinylfu_beats_clock_on_skew = false;
    }
  }
  std::printf("verdict: tinylfu_ge_clock_on_skew=%s\n",
              tinylfu_beats_clock_on_skew ? "true" : "false");

  std::FILE* f = std::fopen("BENCH_cache.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cache.json\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "  {\"policy\": \"%s\", \"capacity_ratio\": %.2f, "
                 "\"zipf_theta\": %.2f, \"pages\": %llu, \"accesses\": %llu, "
                 "\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.4f, "
                 "\"evictions\": %llu}%s\n",
                 std::string(EvictionPolicyName(c.policy)).c_str(), c.capacity_ratio,
                 c.zipf_theta, static_cast<unsigned long long>(c.pages),
                 static_cast<unsigned long long>(c.accesses),
                 static_cast<unsigned long long>(c.hits),
                 static_cast<unsigned long long>(c.misses), c.hit_rate,
                 static_cast<unsigned long long>(c.evictions),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu cells to BENCH_cache.json\n", cells.size());
  return tinylfu_beats_clock_on_skew ? 0 : 2;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
