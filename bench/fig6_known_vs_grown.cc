// Figure 6: building the dictionary table when the ultimate size is known
// in advance (nelem hint; the table is created pre-sized) versus grown
// from a single bucket, across fill factors 4..64 at bsize 256.
//
// Expected shape: once the fill factor is sufficiently high for the page
// size (8), growing the table dynamically does little to degrade
// performance; below that, the grown table pays for its splits.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const int runs = RunsFromArgs(argc, argv, 3);
  const auto records = DictionaryRecords();

  std::printf("Figure 6: known final size (left) vs grown from one bucket (right),\n"
              "dictionary data set, bsize 256, %d-run averages\n\n", runs);
  PrintCsvHeader("fig6,ffactor,mode,user_sec,sys_sec,elapsed_sec,splits");

  std::printf("%8s  %-7s %10s %10s %10s %9s\n", "ffactor", "mode", "user", "sys", "elapsed",
              "splits");
  for (const uint32_t ffactor : {4u, 8u, 16u, 32u, 64u}) {
    for (const bool known : {true, false}) {
      const std::string path = BenchPath("fig6");
      HashOptions opts;
      opts.bsize = 256;
      opts.ffactor = ffactor;
      opts.nelem = known ? static_cast<uint32_t>(records.size()) : 0;
      opts.cachesize = 1024 * 1024;

      uint64_t splits = 0;
      const auto sample = workload::MeasureAveraged(
          runs, [&] { RemoveBenchFiles(path); },
          [&] {
            auto table = std::move(HashTable::Open(path, opts, /*truncate=*/true).value());
            for (const auto& r : records) {
              (void)table->Put(r.key, r.value);
            }
            (void)table->Sync();
            splits = table->stats().splits;
          });

      std::printf("%8u  %-7s %10.3f %10.3f %10.3f %9llu\n", ffactor, known ? "known" : "grown",
                  sample.user_sec, sample.sys_sec, sample.elapsed_sec,
                  static_cast<unsigned long long>(splits));
      char csv[160];
      std::snprintf(csv, sizeof(csv), "fig6,%u,%s,%.4f,%.4f,%.4f,%llu", ffactor,
                    known ? "known" : "grown", sample.user_sec, sample.sys_sec,
                    sample.elapsed_sec, static_cast<unsigned long long>(splits));
      PrintCsv(csv);
      RemoveBenchFiles(path);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
