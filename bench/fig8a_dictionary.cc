// Figure 8a: timing results for the dictionary database — the new package
// against ndbm (disk suite) and hsearch (memory-resident suite).
//
// Paper's headline results for this table: ~50-80% improvement nearly
// everywhere; ndbm wins only the keys-only sequential user time (because
// it does not return data); the READ/VERIFY system-time improvement
// (~90%) comes from the buffer pool removing per-access file I/O.

#include "bench/fig8_suite.h"

int main(int argc, char** argv) {
  const int runs = hashkit::bench::RunsFromArgs(argc, argv, 3);
  const auto records = hashkit::bench::DictionaryRecords();
  hashkit::bench::RunFig8("Figure 8a: dictionary database", records, runs, "fig8a");
  return 0;
}
