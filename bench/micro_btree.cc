// Btree microbenchmarks: point ops, ordered iteration, split costs.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/btree/btree.h"
#include "src/util/random.h"

namespace hashkit {
namespace {

std::unique_ptr<btree::BTree> MakeTree(size_t nkeys, uint32_t page_size) {
  btree::BtOptions options;
  options.page_size = page_size;
  options.cachesize = 16 * 1024 * 1024;
  auto tree = std::move(btree::BTree::OpenInMemory(options).value());
  char key[16];
  for (size_t i = 0; i < nkeys; ++i) {
    std::snprintf(key, sizeof(key), "k%010zu", i);
    (void)tree->Put(key, "value-payload-bytes");
  }
  return tree;
}

void BM_BtreeGet(benchmark::State& state) {
  const auto nkeys = static_cast<size_t>(state.range(0));
  auto tree = MakeTree(nkeys, 4096);
  Rng rng(1);
  char key[16];
  std::string value;
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "k%010zu", static_cast<size_t>(rng.Uniform(nkeys)));
    benchmark::DoNotOptimize(tree->Get(key, &value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BtreeGet)->Arg(1000)->Arg(100000);

void BM_BtreeInsertAscending(benchmark::State& state) {
  btree::BtOptions options;
  options.page_size = 4096;
  options.cachesize = 64 * 1024 * 1024;
  auto tree = std::move(btree::BTree::OpenInMemory(options).value());
  size_t i = 0;
  char key[16];
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "k%010zu", i++);
    benchmark::DoNotOptimize(tree->Put(key, "value-payload-bytes"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BtreeInsertAscending);

void BM_BtreeInsertRandom(benchmark::State& state) {
  btree::BtOptions options;
  options.page_size = 4096;
  options.cachesize = 64 * 1024 * 1024;
  auto tree = std::move(btree::BTree::OpenInMemory(options).value());
  Rng rng(2);
  char key[24];
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "k%016llx",
                  static_cast<unsigned long long>(rng.Next()));
    benchmark::DoNotOptimize(tree->Put(key, "value-payload-bytes"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BtreeInsertRandom);

void BM_BtreeScan(benchmark::State& state) {
  auto tree = MakeTree(100000, 4096);
  std::string key;
  std::string value;
  for (auto _ : state) {
    btree::BtCursor cursor = tree->NewCursor();
    size_t count = 0;
    while (cursor.Next(&key, &value).ok()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_BtreeScan);

void BM_BtreeRangeQuery25(benchmark::State& state) {
  auto tree = MakeTree(100000, 4096);
  Rng rng(3);
  char key[16];
  std::string k, v;
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "k%010zu", static_cast<size_t>(rng.Uniform(99000)));
    btree::BtCursor cursor = tree->NewCursor();
    (void)cursor.Seek(key);
    for (int i = 0; i < 25 && cursor.Next(&k, &v).ok(); ++i) {
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 25);
}
BENCHMARK(BM_BtreeRangeQuery25);

}  // namespace
}  // namespace hashkit

BENCHMARK_MAIN();
