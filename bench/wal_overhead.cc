// WAL overhead sweep: what does each durability mode cost on the insert
// path, and how much does group commit buy back?
//
// Modes: durability=none (no log — the baseline every other row is
// normalized against), async (log appends, no per-op fsync), and sync with
// group commit 1 / 8 / 32.  Workload: sequential Puts of ~40-byte pairs
// into a fresh disk table (bsize 256 / ffactor 8, splits included), the
// configuration the paper's Figure 5 sweep lands on.
//
// Results go to BENCH_wal.json.  Expected shape: async rides close to the
// baseline (appends are buffered writes absorbed by the page cache), sync
// g=1 pays one fsync per Put and is order(s) of magnitude slower on real
// disks, and raising the group-commit window amortizes the fsyncs nearly
// linearly until the append cost dominates.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/hash_table.h"
#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/workload/timing.h"

namespace hashkit {
namespace bench {
namespace {

struct Mode {
  const char* name;
  Durability durability;
  uint32_t group_commit;
};

struct Cell {
  const char* name = nullptr;
  size_t ops = 0;
  workload::TimingSample time;
  double puts_per_sec = 0.0;
  uint64_t wal_syncs = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_checkpoints = 0;
  uint64_t snapshots = 0;  // scan-under-load rows: snapshot drains completed
};

long FlagFromArgs(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

Cell RunMode(const Mode& mode, size_t ops) {
  const std::string path = BenchPath("wal_overhead");
  RemoveBenchFiles(path);
  std::remove((path + ".wal").c_str());

  HashOptions options;
  options.bsize = 256;
  options.ffactor = 8;
  options.durability = mode.durability;
  options.wal_group_commit = mode.group_commit;

  Cell cell;
  cell.name = mode.name;
  cell.ops = ops;
  auto opened = HashTable::Open(path, options, /*truncate=*/true);
  if (!opened.ok()) {
    std::fprintf(stderr, "open %s: %s\n", mode.name, opened.status().ToString().c_str());
    return cell;
  }
  auto& table = *opened.value();
  cell.time = workload::MeasureOnce([&] {
    char key[24];
    char value[40];
    for (size_t i = 0; i < ops; ++i) {
      std::snprintf(key, sizeof(key), "key%08zu", i);
      std::snprintf(value, sizeof(value), "value-%08zu-padpadpadpad", i);
      if (!table.Put(key, value).ok()) {
        std::fprintf(stderr, "put failed in %s\n", mode.name);
        return;
      }
    }
  });
  cell.puts_per_sec =
      cell.time.elapsed_sec > 0 ? static_cast<double>(ops) / cell.time.elapsed_sec : 0.0;
  const wal::WalStats stats = table.WalStatsSnapshot();
  cell.wal_syncs = stats.syncs;
  cell.wal_bytes = stats.bytes;
  cell.wal_checkpoints = stats.checkpoints;

  RemoveBenchFiles(path);
  std::remove((path + ".wal").c_str());
  return cell;
}

void WriteJson(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "  {\"mode\": \"%s\", \"ops\": %zu, \"elapsed_sec\": %.6f, "
                 "\"user_sec\": %.6f, \"sys_sec\": %.6f, \"puts_per_sec\": %.0f, "
                 "\"wal_syncs\": %llu, \"wal_bytes\": %llu, \"wal_checkpoints\": %llu, "
                 "\"snapshots\": %llu}%s\n",
                 c.name, c.ops, c.time.elapsed_sec, c.time.user_sec, c.time.sys_sec,
                 c.puts_per_sec, static_cast<unsigned long long>(c.wal_syncs),
                 static_cast<unsigned long long>(c.wal_bytes),
                 static_cast<unsigned long long>(c.wal_checkpoints),
                 static_cast<unsigned long long>(c.snapshots),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu cells to %s\n", cells.size(), path);
}

// Scan-under-writer-load: the MVCC claim is that a long snapshot scan
// never blocks the writer.  Measured the way it is deployed — over the
// wire: one client streams pipelined Puts at a server backed by a
// synchronized disk table (async WAL) while a second connection streams
// SCAN requests, which the server serves from that connection's private
// snapshot cursor.  Writer throughput with the scanner live vs idle is
// the headline ratio; the acceptance bar (EXPERIMENTS.md) is within 20%.
enum class SideLoad { kNone, kGets, kScans };

Cell RunWriterWithScans(const char* name, size_t ops, SideLoad side) {
  const std::string path = BenchPath("wal_scanload");
  RemoveBenchFiles(path);
  std::remove((path + ".wal").c_str());

  Cell cell;
  cell.name = name;
  cell.ops = ops;

  kv::StoreOptions options;
  options.path = path;
  options.truncate = true;
  options.page_size = 256;
  options.ffactor = 8;
  options.durability = Durability::kAsync;
  auto opened = kv::OpenStore(kv::StoreKind::kHashDisk, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open %s: %s\n", name, opened.status().ToString().c_str());
    return cell;
  }
  auto store = kv::MakeSynchronized(std::move(opened).value());

  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  net::Server server(store.get(), server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed in %s\n", name);
    return cell;
  }

  // Seed so every snapshot scan walks a real table.
  {
    auto seeder = net::Client::Connect("127.0.0.1", server.port());
    if (!seeder.ok()) {
      return cell;
    }
    char key[24];
    for (size_t i = 0; i < 5000; ++i) {
      std::snprintf(key, sizeof(key), "seed%08zu", i);
      (void)seeder.value()->Put(key, "seed-value-padpadpadpadpad");
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_drained{0};
  std::thread scanner;
  if (side != SideLoad::kNone) {
    scanner = std::thread([&, side] {
      auto conn = net::Client::Connect("127.0.0.1", server.port());
      if (!conn.ok()) {
        return;
      }
      std::vector<net::Request> batch(8);
      std::vector<net::Response> responses;
      bool first = true;
      size_t get_i = 0;
      char get_key[24];
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t i = 0; i < batch.size(); ++i) {
          batch[i] = net::Request();
          if (side == SideLoad::kScans) {
            batch[i].op = net::Opcode::kScan;
            batch[i].flags = (first && i == 0) ? net::kFlagScanFirst : 0;
          } else {
            batch[i].op = net::Opcode::kGet;
            std::snprintf(get_key, sizeof(get_key), "seed%08zu", get_i++ % 5000);
            batch[i].key = get_key;
          }
        }
        first = false;
        if (!conn.value()->Pipeline(batch, &responses).ok()) {
          return;
        }
        if (side == SideLoad::kScans) {
          for (const net::Response& resp : responses) {
            if (resp.status == StatusCode::kNotFound) {
              first = true;  // stream drained: start the next snapshot
              snapshots_drained.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        }
      }
    });
  }

  auto writer = net::Client::Connect("127.0.0.1", server.port());
  if (!writer.ok()) {
    server.Stop();
    return cell;
  }
  cell.time = workload::MeasureOnce([&] {
    char key[24];
    char value[40];
    std::vector<net::Request> batch;
    std::vector<net::Response> responses;
    for (size_t i = 0; i < ops;) {
      batch.clear();
      while (batch.size() < 8 && i < ops) {
        net::Request req;
        req.op = net::Opcode::kPut;
        std::snprintf(key, sizeof(key), "key%08zu", i);
        std::snprintf(value, sizeof(value), "value-%08zu-padpadpadpad", i);
        req.key = key;
        req.value = value;
        batch.push_back(std::move(req));
        ++i;
      }
      if (!writer.value()->Pipeline(batch, &responses).ok()) {
        std::fprintf(stderr, "put batch failed in %s\n", name);
        return;
      }
    }
  });
  stop.store(true);
  if (scanner.joinable()) {
    scanner.join();
  }
  server.Stop();
  cell.puts_per_sec =
      cell.time.elapsed_sec > 0 ? static_cast<double>(ops) / cell.time.elapsed_sec : 0.0;
  cell.snapshots = snapshots_drained.load();
  store.reset();
  RemoveBenchFiles(path);
  std::remove((path + ".wal").c_str());
  return cell;
}

int Main(int argc, char** argv) {
  const size_t ops = static_cast<size_t>(FlagFromArgs(argc, argv, "ops", 20000));
  const Mode modes[] = {
      {"none", Durability::kNone, 1},      {"async", Durability::kAsync, 1},
      {"sync_g1", Durability::kSync, 1},   {"sync_g8", Durability::kSync, 8},
      {"sync_g32", Durability::kSync, 32},
  };

  std::printf("WAL overhead sweep: %zu Puts, bsize 256 / ffactor 8, disk table\n\n", ops);
  std::printf("%10s %14s %10s %12s %12s %9s\n", "mode", "puts/sec", "vs none", "elapsed_s",
              "wal_syncs", "ckpts");
  PrintCsvHeader("wal,mode,puts_per_sec,elapsed_sec,wal_syncs,wal_checkpoints");

  std::vector<Cell> cells;
  double baseline = 0.0;
  for (const Mode& mode : modes) {
    const Cell cell = RunMode(mode, ops);
    if (baseline == 0.0) {
      baseline = cell.puts_per_sec;
    }
    std::printf("%10s %14.0f %9.2fx %12.3f %12llu %9llu\n", cell.name, cell.puts_per_sec,
                baseline > 0 ? cell.puts_per_sec / baseline : 0.0, cell.time.elapsed_sec,
                static_cast<unsigned long long>(cell.wal_syncs),
                static_cast<unsigned long long>(cell.wal_checkpoints));
    char csv[160];
    std::snprintf(csv, sizeof(csv), "wal,%s,%.0f,%.6f,%llu,%llu", cell.name,
                  cell.puts_per_sec, cell.time.elapsed_sec,
                  static_cast<unsigned long long>(cell.wal_syncs),
                  static_cast<unsigned long long>(cell.wal_checkpoints));
    PrintCsv(csv);
    cells.push_back(cell);
  }

  std::printf("\nScan-under-writer-load: %zu Puts via synchronized store, async WAL\n\n", ops);
  std::printf("%18s %14s %12s %12s %10s\n", "mode", "puts/sec", "vs alone", "elapsed_s",
              "snapshots");
  double writer_alone = 0.0;
  const struct {
    const char* name;
    SideLoad side;
  } scan_rows[] = {
      {"writer_alone", SideLoad::kNone},
      // The CPU-fair control: a second connection at the same request rate
      // doing plain GETs.  On few-core machines the writer must share the
      // machine with ANY side load; the MVCC claim is that snapshot scans
      // cost no more than that (they hold no lock the writer waits out).
      {"writer_vs_get_load", SideLoad::kGets},
      {"scan_under_load", SideLoad::kScans},
  };
  for (const auto& row : scan_rows) {
    const Cell cell = RunWriterWithScans(row.name, ops, row.side);
    if (row.side == SideLoad::kNone) {
      writer_alone = cell.puts_per_sec;
    }
    std::printf("%18s %14.0f %11.2fx %12.3f %10llu\n", cell.name, cell.puts_per_sec,
                writer_alone > 0 ? cell.puts_per_sec / writer_alone : 0.0,
                cell.time.elapsed_sec, static_cast<unsigned long long>(cell.snapshots));
    char csv[160];
    std::snprintf(csv, sizeof(csv), "wal,%s,%.0f,%.6f,0,0", cell.name, cell.puts_per_sec,
                  cell.time.elapsed_sec);
    PrintCsv(csv);
    cells.push_back(cell);
  }

  WriteJson(cells, "BENCH_wal.json");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
