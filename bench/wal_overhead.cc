// WAL overhead sweep: what does each durability mode cost on the insert
// path, and how much does group commit buy back?
//
// Modes: durability=none (no log — the baseline every other row is
// normalized against), async (log appends, no per-op fsync), and sync with
// group commit 1 / 8 / 32.  Workload: sequential Puts of ~40-byte pairs
// into a fresh disk table (bsize 256 / ffactor 8, splits included), the
// configuration the paper's Figure 5 sweep lands on.
//
// Results go to BENCH_wal.json.  Expected shape: async rides close to the
// baseline (appends are buffered writes absorbed by the page cache), sync
// g=1 pays one fsync per Put and is order(s) of magnitude slower on real
// disks, and raising the group-commit window amortizes the fsyncs nearly
// linearly until the append cost dominates.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/hash_table.h"
#include "src/workload/timing.h"

namespace hashkit {
namespace bench {
namespace {

struct Mode {
  const char* name;
  Durability durability;
  uint32_t group_commit;
};

struct Cell {
  const char* name = nullptr;
  size_t ops = 0;
  workload::TimingSample time;
  double puts_per_sec = 0.0;
  uint64_t wal_syncs = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_checkpoints = 0;
};

long FlagFromArgs(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

Cell RunMode(const Mode& mode, size_t ops) {
  const std::string path = BenchPath("wal_overhead");
  RemoveBenchFiles(path);
  std::remove((path + ".wal").c_str());

  HashOptions options;
  options.bsize = 256;
  options.ffactor = 8;
  options.durability = mode.durability;
  options.wal_group_commit = mode.group_commit;

  Cell cell;
  cell.name = mode.name;
  cell.ops = ops;
  auto opened = HashTable::Open(path, options, /*truncate=*/true);
  if (!opened.ok()) {
    std::fprintf(stderr, "open %s: %s\n", mode.name, opened.status().ToString().c_str());
    return cell;
  }
  auto& table = *opened.value();
  cell.time = workload::MeasureOnce([&] {
    char key[24];
    char value[40];
    for (size_t i = 0; i < ops; ++i) {
      std::snprintf(key, sizeof(key), "key%08zu", i);
      std::snprintf(value, sizeof(value), "value-%08zu-padpadpadpad", i);
      if (!table.Put(key, value).ok()) {
        std::fprintf(stderr, "put failed in %s\n", mode.name);
        return;
      }
    }
  });
  cell.puts_per_sec =
      cell.time.elapsed_sec > 0 ? static_cast<double>(ops) / cell.time.elapsed_sec : 0.0;
  const wal::WalStats stats = table.WalStatsSnapshot();
  cell.wal_syncs = stats.syncs;
  cell.wal_bytes = stats.bytes;
  cell.wal_checkpoints = stats.checkpoints;

  RemoveBenchFiles(path);
  std::remove((path + ".wal").c_str());
  return cell;
}

void WriteJson(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "  {\"mode\": \"%s\", \"ops\": %zu, \"elapsed_sec\": %.6f, "
                 "\"user_sec\": %.6f, \"sys_sec\": %.6f, \"puts_per_sec\": %.0f, "
                 "\"wal_syncs\": %llu, \"wal_bytes\": %llu, \"wal_checkpoints\": %llu}%s\n",
                 c.name, c.ops, c.time.elapsed_sec, c.time.user_sec, c.time.sys_sec,
                 c.puts_per_sec, static_cast<unsigned long long>(c.wal_syncs),
                 static_cast<unsigned long long>(c.wal_bytes),
                 static_cast<unsigned long long>(c.wal_checkpoints),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu cells to %s\n", cells.size(), path);
}

int Main(int argc, char** argv) {
  const size_t ops = static_cast<size_t>(FlagFromArgs(argc, argv, "ops", 20000));
  const Mode modes[] = {
      {"none", Durability::kNone, 1},      {"async", Durability::kAsync, 1},
      {"sync_g1", Durability::kSync, 1},   {"sync_g8", Durability::kSync, 8},
      {"sync_g32", Durability::kSync, 32},
  };

  std::printf("WAL overhead sweep: %zu Puts, bsize 256 / ffactor 8, disk table\n\n", ops);
  std::printf("%10s %14s %10s %12s %12s %9s\n", "mode", "puts/sec", "vs none", "elapsed_s",
              "wal_syncs", "ckpts");
  PrintCsvHeader("wal,mode,puts_per_sec,elapsed_sec,wal_syncs,wal_checkpoints");

  std::vector<Cell> cells;
  double baseline = 0.0;
  for (const Mode& mode : modes) {
    const Cell cell = RunMode(mode, ops);
    if (baseline == 0.0) {
      baseline = cell.puts_per_sec;
    }
    std::printf("%10s %14.0f %9.2fx %12.3f %12llu %9llu\n", cell.name, cell.puts_per_sec,
                baseline > 0 ? cell.puts_per_sec / baseline : 0.0, cell.time.elapsed_sec,
                static_cast<unsigned long long>(cell.wal_syncs),
                static_cast<unsigned long long>(cell.wal_checkpoints));
    char csv[160];
    std::snprintf(csv, sizeof(csv), "wal,%s,%.0f,%.6f,%llu,%llu", cell.name,
                  cell.puts_per_sec, cell.time.elapsed_sec,
                  static_cast<unsigned long long>(cell.wal_syncs),
                  static_cast<unsigned long long>(cell.wal_checkpoints));
    PrintCsv(csv);
    cells.push_back(cell);
  }

  WriteJson(cells, "BENCH_wal.json");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
