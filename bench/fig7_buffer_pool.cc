// Figure 7: sensitivity to buffer pool size — dictionary data set, bsize
// 256, ffactor 16, pool swept from 0 (the minimum resident pages) to 1 MB.
//
// Expected shape: user time is virtually insensitive to the pool size;
// system time and elapsed time are inversely proportional to it, and with
// 1 MB the package performs no I/O for this data set.  We additionally
// report backend page reads/writes, the quantity the 1991 system-time
// argument rests on.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const int runs = RunsFromArgs(argc, argv, 3);
  const auto records = DictionaryRecords();

  std::printf("Figure 7: buffer pool size sweep, dictionary data set, bsize 256, "
              "ffactor 16, create+read, %d-run averages\n\n", runs);
  PrintCsvHeader("fig7,pool_kb,user_sec,sys_sec,elapsed_sec,page_reads,page_writes");

  std::printf("%9s %10s %10s %10s %12s %12s\n", "pool(KB)", "user", "sys", "elapsed",
              "page reads", "page writes");
  for (const uint64_t pool_kb : {0ull, 32ull, 64ull, 128ull, 256ull, 384ull, 512ull, 768ull,
                                 1024ull}) {
    const std::string path = BenchPath("fig7");
    HashOptions opts;
    opts.bsize = 256;
    opts.ffactor = 16;
    opts.nelem = static_cast<uint32_t>(records.size());
    opts.cachesize = pool_kb * 1024;

    uint64_t reads = 0;
    uint64_t writes = 0;
    const auto sample = workload::MeasureAveraged(
        runs, [&] { RemoveBenchFiles(path); },
        [&] {
          auto table = std::move(HashTable::Open(path, opts, /*truncate=*/true).value());
          for (const auto& r : records) {
            (void)table->Put(r.key, r.value);
          }
          std::string value;
          for (const auto& r : records) {
            (void)table->Get(r.key, &value);
          }
          (void)table->Sync();
          reads = table->file_stats().reads;
          writes = table->file_stats().writes;
        });

    std::printf("%9llu %10.3f %10.3f %10.3f %12llu %12llu\n",
                static_cast<unsigned long long>(pool_kb), sample.user_sec, sample.sys_sec,
                sample.elapsed_sec, static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes));
    char csv[160];
    std::snprintf(csv, sizeof(csv), "fig7,%llu,%.4f,%.4f,%.4f,%llu,%llu",
                  static_cast<unsigned long long>(pool_kb), sample.user_sec, sample.sys_sec,
                  sample.elapsed_sec, static_cast<unsigned long long>(reads),
                  static_cast<unsigned long long>(writes));
    PrintCsv(csv);
    RemoveBenchFiles(path);
  }
  std::printf("\n(With a large enough pool the create+read run performs no page reads\n"
              "beyond the flush writes -- the paper's \"no I/O for this data set\".)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
