# ctest smoke test for the cache stack (hashkit-cache): runs a tiny
# eviction-ablation cell and the bundled memcached text-protocol driver.
# Asserts BENCH_cache.json carries the documented row schema, TinyLFU's
# hit rate is at least clock's on the skewed trace (the bench exits 2
# otherwise), and the driver's get/set run finishes with zero protocol
# errors.  Driven as
#   cmake -DABLATION_BENCH=<bin> -DMC_DRIVER=<bin> -DWORK_DIR=<dir> \
#         -P bench_cache_smoke.cmake
# and registered from bench/CMakeLists.txt.

if(NOT DEFINED ABLATION_BENCH OR NOT DEFINED MC_DRIVER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DABLATION_BENCH=<bin> -DMC_DRIVER=<bin> -DWORK_DIR=<dir> -P bench_cache_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
file(REMOVE "${WORK_DIR}/BENCH_cache.json")

execute_process(COMMAND "${ABLATION_BENCH}" --quick
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cache ablation failed (rc=${rc}):\n${out}\n${err}")
endif()

if(NOT EXISTS "${WORK_DIR}/BENCH_cache.json")
  message(FATAL_ERROR "cache ablation wrote no BENCH_cache.json:\n${out}")
endif()
file(READ "${WORK_DIR}/BENCH_cache.json" contents)

# Schema: every cell field EXPERIMENTS.md documents.
foreach(field "\"policy\"" "\"capacity_ratio\"" "\"zipf_theta\"" "\"pages\""
        "\"accesses\"" "\"hits\"" "\"misses\"" "\"hit_rate\"" "\"evictions\"")
  string(FIND "${contents}" "${field}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
      "expected BENCH_cache.json to contain ${field}, got:\n${contents}")
  endif()
endforeach()

# All three policies must appear.
foreach(policy "\"clock\"" "\"2q\"" "\"tinylfu\"")
  string(FIND "${contents}" "${policy}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "missing ${policy} cells:\n${contents}")
  endif()
endforeach()

# The bench prints (and enforces by exit code) the headline comparison.
if(NOT out MATCHES "tinylfu_ge_clock_on_skew=true")
  message(FATAL_ERROR "TinyLFU lost to clock on the skewed trace:\n${out}")
endif()

# The text-protocol driver must complete get/set with zero protocol errors.
execute_process(COMMAND "${MC_DRIVER}" --quick
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "memcached driver failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "protocol_errors=0")
  message(FATAL_ERROR "driver reported protocol errors:\n${out}")
endif()
