// Access-method comparison: hash vs btree vs recno on the same data — the
// classic trade the paper's closing "generic database access package"
// sets up.  Hashing wins point lookups; the btree pays log-height page
// touches per probe but is the only method with ordered range scans;
// recno turns record-number access into direct addressing.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/btree/btree.h"
#include "src/core/hash_table.h"
#include "src/recno/recno.h"
#include "src/util/random.h"

namespace hashkit {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const int runs = RunsFromArgs(argc, argv, 1);
  (void)runs;
  const auto records = DictionaryRecords();
  std::printf("Access methods on %zu dictionary records (user seconds)\n\n", records.size());
  PrintCsvHeader("access_methods,method,load_user,point_user,scan_user,range_user");

  struct Row {
    const char* name;
    workload::TimingSample load, point, scan, range;
    bool has_range = false;
  };
  std::vector<Row> rows;

  Rng rng(12);
  std::vector<size_t> probe_order(records.size());
  for (size_t i = 0; i < probe_order.size(); ++i) {
    probe_order[i] = rng.Uniform(records.size());
  }

  // --- hash ---
  {
    Row row{"hash", {}, {}, {}, {}};
    HashOptions opts;
    opts.bsize = 1024;
    opts.ffactor = 32;
    opts.cachesize = 4 * 1024 * 1024;
    auto table = std::move(HashTable::OpenInMemory(opts).value());
    row.load = workload::MeasureOnce([&] {
      for (const auto& r : records) {
        (void)table->Put(r.key, r.value);
      }
    });
    std::string v;
    row.point = workload::MeasureOnce([&] {
      for (const size_t i : probe_order) {
        (void)table->Get(records[i].key, &v);
      }
    });
    std::string k;
    row.scan = workload::MeasureOnce([&] {
      Status st = table->Seq(&k, &v, true);
      while (st.ok()) {
        st = table->Seq(&k, &v, false);
      }
    });
    rows.push_back(row);
  }

  // --- btree ---
  {
    Row row{"btree", {}, {}, {}, {}, true};
    btree::BtOptions opts;
    opts.page_size = 4096;
    opts.cachesize = 4 * 1024 * 1024;
    auto tree = std::move(btree::BTree::OpenInMemory(opts).value());
    row.load = workload::MeasureOnce([&] {
      for (const auto& r : records) {
        (void)tree->Put(r.key, r.value);
      }
    });
    std::string v;
    row.point = workload::MeasureOnce([&] {
      for (const size_t i : probe_order) {
        (void)tree->Get(records[i].key, &v);
      }
    });
    std::string k;
    row.scan = workload::MeasureOnce([&] {
      btree::BtCursor cursor = tree->NewCursor();
      while (cursor.Next(&k, &v).ok()) {
      }
    });
    // 1000 range queries of ~25 keys each: the btree-only operation.
    row.range = workload::MeasureOnce([&] {
      for (int q = 0; q < 1000; ++q) {
        btree::BtCursor cursor = tree->NewCursor();
        (void)cursor.Seek(records[probe_order[q]].key);
        for (int j = 0; j < 25 && cursor.Next(&k, &v).ok(); ++j) {
        }
      }
    });
    rows.push_back(row);
  }

  // --- recno (variable-length) ---
  {
    Row row{"recno", {}, {}, {}, {}};
    btree::BtOptions opts;
    opts.page_size = 4096;
    opts.cachesize = 4 * 1024 * 1024;
    auto store = std::move(recno::VarRecno::OpenInMemory(opts).value());
    row.load = workload::MeasureOnce([&] {
      for (const auto& r : records) {
        (void)store->Append(r.value);
      }
    });
    std::string v;
    row.point = workload::MeasureOnce([&] {
      for (const size_t i : probe_order) {
        (void)store->Get(i, &v);
      }
    });
    uint64_t recno_out = 0;
    row.scan = workload::MeasureOnce([&] {
      Status st = store->Scan(&recno_out, &v, true);
      while (st.ok()) {
        st = store->Scan(&recno_out, &v, false);
      }
    });
    rows.push_back(row);
  }

  // --- recno (fixed-length) ---
  {
    Row row{"recno_fixed", {}, {}, {}, {}};
    recno::FixedRecnoOptions opts;
    opts.record_size = 16;
    opts.page_size = 4096;
    opts.cachesize = 4 * 1024 * 1024;
    auto store = std::move(recno::FixedRecno::OpenInMemory(opts).value());
    row.load = workload::MeasureOnce([&] {
      for (const auto& r : records) {
        (void)store->Append(r.value);
      }
    });
    std::string v;
    row.point = workload::MeasureOnce([&] {
      for (const size_t i : probe_order) {
        (void)store->Get(i, &v);
      }
    });
    row.scan = workload::MeasureOnce([&] {
      for (uint64_t i = 0; i < store->Count(); ++i) {
        (void)store->Get(i, &v);
      }
    });
    rows.push_back(row);
  }

  std::printf("%-12s %10s %12s %10s %12s\n", "method", "load(u)", "point(u)", "scan(u)",
              "range(u)");
  for (const Row& row : rows) {
    if (row.has_range) {
      std::printf("%-12s %10.3f %12.3f %10.3f %12.3f\n", row.name, row.load.user_sec,
                  row.point.user_sec, row.scan.user_sec, row.range.user_sec);
    } else {
      std::printf("%-12s %10.3f %12.3f %10.3f %12s\n", row.name, row.load.user_sec,
                  row.point.user_sec, row.scan.user_sec, "n/a");
    }
    char csv[160];
    std::snprintf(csv, sizeof(csv), "access_methods,%s,%.4f,%.4f,%.4f,%.4f", row.name,
                  row.load.user_sec, row.point.user_sec, row.scan.user_sec,
                  row.has_range ? row.range.user_sec : -1.0);
    PrintCsv(csv);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
