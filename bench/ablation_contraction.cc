// Ablation A5: the table-contraction extension.  The paper's footnote —
// "the file does not contract when keys are deleted" — means a table that
// once held N keys keeps N/ffactor buckets forever.  This bench loads the
// dictionary, deletes 95% of it, and compares scan cost and table shape
// with and without auto-contraction.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const auto records = DictionaryRecords();
  std::printf("Ablation A5: auto-contraction after deleting 95%% of %zu keys "
              "(bsize 256, ffactor 8)\n\n", records.size());
  PrintCsvHeader("ablation_contract,mode,buckets,scan_user_sec,contractions");

  std::printf("%-12s %10s %14s %14s\n", "mode", "buckets", "scan(u)", "contractions");
  for (const bool contract : {false, true}) {
    HashOptions opts;
    opts.bsize = 256;
    opts.ffactor = 8;
    opts.cachesize = 4 * 1024 * 1024;
    opts.auto_contract = contract;
    auto table = std::move(HashTable::OpenInMemory(opts).value());
    for (const auto& r : records) {
      (void)table->Put(r.key, r.value);
    }
    const size_t keep = records.size() / 20;
    for (size_t i = keep; i < records.size(); ++i) {
      (void)table->Delete(records[i].key);
    }

    // Scanning the survivors: without contraction the cursor crawls the
    // high-water-mark bucket array; with it, a table sized to the
    // population.
    std::string k, v;
    const auto scan = workload::MeasureOnce([&] {
      for (int round = 0; round < 20; ++round) {
        Status st = table->Seq(&k, &v, true);
        while (st.ok()) {
          st = table->Seq(&k, &v, false);
        }
      }
    });
    std::printf("%-12s %10u %14.4f %14llu\n", contract ? "contracting" : "high-water",
                table->bucket_count(), scan.user_sec,
                static_cast<unsigned long long>(table->stats().contractions));
    char csv[128];
    std::snprintf(csv, sizeof(csv), "ablation_contract,%s,%u,%.4f,%llu",
                  contract ? "contracting" : "high_water", table->bucket_count(),
                  scan.user_sec,
                  static_cast<unsigned long long>(table->stats().contractions));
    PrintCsv(csv);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
