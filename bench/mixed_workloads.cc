// Mixed-workload shootout: YCSB-style operation mixes over the uniform
// KvStore interface — a modern complement to the paper's create/read
// suites, showing how the 1991 designs hold up under update-heavy,
// skewed-popularity traffic.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/kv/kv_store.h"
#include "src/workload/mixes.h"

namespace hashkit {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("Mixed workloads (YCSB-style), 10k preloaded keys, 100k ops, "
              "zipf 0.99; user seconds\n\n");
  PrintCsvHeader("mixed,mix,store,preload_user,run_user,ops_per_sec");

  struct Mix {
    const char* name;
    workload::MixSpec spec;
  };
  const Mix mixes[] = {
      {"A_50r_50u", workload::MixA()},
      {"B_95r_5u", workload::MixB()},
      {"C_read_only", workload::MixC()},
      {"D_90r_10i", workload::MixD()},
  };

  // Each entry names a registered store variant: a plain kind, or the same
  // kind partitioned across shards (StoreOptions::shards routes through
  // the sharded front-end).
  struct StoreEntry {
    kv::StoreKind kind;
    uint32_t shards;  // 0 = unsharded
  };
  const StoreEntry stores[] = {
      {kv::StoreKind::kHashDisk, 0}, {kv::StoreKind::kHashMemory, 0},
      {kv::StoreKind::kBtree, 0},    {kv::StoreKind::kNdbm, 0},
      {kv::StoreKind::kGdbm, 0},     {kv::StoreKind::kDynahash, 0},
      {kv::StoreKind::kHashMemory, 8}, {kv::StoreKind::kHashDisk, 8},
  };

  for (const Mix& mix : mixes) {
    std::printf("--- mix %s ---\n", mix.name);
    std::printf("%-20s %12s %12s %14s\n", "store", "preload(u)", "run(u)", "ops/sec");
    const workload::Trace trace = workload::GenerateTrace(mix.spec);
    for (const StoreEntry& entry : stores) {
      const kv::StoreKind kind = entry.kind;
      kv::StoreOptions options;
      options.path = BenchPath("mixed");
      options.page_size = 1024;
      options.ffactor = 16;
      options.nelem = 32768;
      options.cachesize = 8 * 1024 * 1024;
      options.shards = entry.shards;
      auto opened = kv::OpenStore(kind, options);
      if (!opened.ok()) {
        continue;
      }
      auto store = std::move(opened).value();

      const auto preload = workload::MeasureOnce([&] {
        for (const auto& key : trace.preload_keys) {
          (void)store->Put(key, trace.preload_value);
        }
      });
      std::string value;
      const auto run = workload::MeasureOnce([&] {
        for (const auto& op : trace.ops) {
          switch (op.type) {
            case workload::OpType::kRead:
              (void)store->Get(op.key, &value);
              break;
            case workload::OpType::kUpdate:
            case workload::OpType::kInsert:
              (void)store->Put(op.key, op.value);
              break;
            case workload::OpType::kDelete:
              (void)store->Delete(op.key);
              break;
          }
        }
      });
      const double ops_per_sec =
          run.elapsed_sec > 0 ? static_cast<double>(trace.ops.size()) / run.elapsed_sec : 0;
      std::printf("%-12s %12.3f %12.3f %14.0f\n", store->Name().c_str(), preload.user_sec,
                  run.user_sec, ops_per_sec);
      char csv[160];
      std::snprintf(csv, sizeof(csv), "mixed,%s,%s,%.4f,%.4f,%.0f", mix.name,
                    store->Name().c_str(), preload.user_sec, run.user_sec, ops_per_sec);
      PrintCsv(csv);
      RemoveBenchFiles(options.path);
      for (uint32_t s = 0; s < entry.shards; ++s) {
        RemoveBenchFiles(options.path + ".s" + std::to_string(s));
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hashkit

int main(int argc, char** argv) { return hashkit::bench::Main(argc, argv); }
